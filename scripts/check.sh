#!/usr/bin/env bash
# Tier-1 gate: unit/property tests plus the quick speed smoke.
#
# Usage: scripts/check.sh
#
# The speed smoke (benchmarks/bench_speed.py --quick) runs tiny versions of
# the three benchmark scenarios and verifies the fixed-seed behavior
# fingerprint against the recorded baseline in BENCH_speed.json, so both
# functional and performance regressions fail loudly.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== speed smoke (quick) =="
python benchmarks/bench_speed.py --quick

echo
echo "check.sh: all good"
