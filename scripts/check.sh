#!/usr/bin/env bash
# Tier-1 gate: unit/property tests, the quick speed smoke, a quick
# checked-run smoke (isolation oracle in the loop) and an examples smoke.
#
# Usage: scripts/check.sh [--quick]
#
#   --quick   skip the examples run smoke (compile-only) for the fastest
#             useful gate; everything else always runs.
#
# The speed smoke (benchmarks/bench_speed.py --quick) runs tiny versions of
# the three benchmark scenarios and verifies the fixed-seed behavior
# fingerprint against the recorded baseline in BENCH_speed.json, so both
# functional and performance regressions fail loudly.  The checked-run
# smoke gates micro and SmallBank runs under two CC trees each — plus the
# deterministic-batch YCSB cells (zipfian + scan-heavy) — on the Adya
# isolation oracle (python -m repro.harness --quick); its independent
# cells fan out across --workers processes (WORKERS env var overrides;
# results are identical whatever the worker count).  The crash-recovery
# smoke additionally crashes the queue cells at a seeded fault point and
# checks the stitched pre-crash + post-recovery history as one.  The
# network-chaos smoke runs the queue cells through a seeded drop and a
# partition-and-heal window (timeouts, retries, commit-ticket dedup, the
# admission valve) and checks the whole degraded run as a single history.

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
  QUICK=1
fi

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# PYTEST_MARKERS lets CI lanes filter the suite by marker expression
# (fast lane: "not slow"); the default runs everything.
echo "== tier-1 tests =="
PYTEST_FILTER=()
if [[ -n "${PYTEST_MARKERS:-}" ]]; then
  PYTEST_FILTER=(-m "${PYTEST_MARKERS}")
fi
python -m pytest -x -q "${PYTEST_FILTER[@]}"

echo
echo "== speed smoke (quick) =="
python benchmarks/bench_speed.py --quick

echo
echo "== checked-run smoke (isolation oracle) =="
WORKERS="${WORKERS:-$(python -c 'import os; print(os.cpu_count() or 1)')}"
python -m repro.harness --workload micro --config 2pl --config 2layer --quick --workers "$WORKERS"
python -m repro.harness --workload smallbank --config ssi --config 3layer --quick --workers "$WORKERS"
# Deterministic batch cells: monolithic on the zipfian mix, 2-layer on the
# scan-heavy profile (declared ranges carry the phantom story).
python -m repro.harness --workload ycsb-zipf --config batch --config batch-2layer --quick --workers "$WORKERS"
python -m repro.harness --workload ycsb-scan --config batch --config batch-2layer --quick --workers "$WORKERS"

echo
echo "== crash-recovery smoke (cross-crash oracle) =="
python -m repro.harness --workload queue --config 2layer --config 3layer --faults 1 --quick --workers "$WORKERS"

echo
echo "== network-chaos smoke (degraded-mode oracle) =="
python -m repro.harness --workload queue --config 2layer --config 3layer --net-faults 2 --quick --workers "$WORKERS"

echo
echo "== examples smoke =="
python -m compileall -q examples
if [[ "$QUICK" == "0" ]]; then
  python examples/quickstart.py > /dev/null
  echo "examples/quickstart.py ran clean"
else
  echo "(compile-only: --quick)"
fi

echo
echo "check.sh: all good"
