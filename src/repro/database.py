"""High-level facade: a single-process Tebaldi database you can call directly.

The benchmark harness drives the engine with closed-loop simulated clients;
this facade instead lets applications (the examples, the tests, interactive
exploration) execute individual transactions synchronously: each call runs
the simulation until that transaction finishes and returns its result.
"""

from repro.core.engine import EngineOptions, TebaldiEngine
from repro.errors import TransactionAborted
from repro.sim.environment import Environment
from repro.storage.mvstore import MultiVersionStore


class Database:
    """A Tebaldi instance bound to a workload and a CC-tree configuration."""

    def __init__(self, workload, configuration, options=None, profiler=None):
        self.workload = workload
        self.configuration = configuration
        self.env = Environment()
        self.store = MultiVersionStore()
        self.workload.populate(self.store)
        self.options = options or EngineOptions()
        self.engine = TebaldiEngine(
            self.env,
            configuration,
            self.workload.transaction_types(),
            store=self.store,
            options=self.options,
            profiler=profiler,
        )

    # -- synchronous single-transaction API ----------------------------------------

    def execute(self, txn_type, retries=3, **args):
        """Run one transaction to completion; returns the procedure's result.

        Aborted transactions are retried up to ``retries`` times; the final
        :class:`~repro.errors.TransactionAborted` is re-raised if they all fail.
        """
        last_error = None
        for _attempt in range(retries + 1):
            process = self.env.process(
                self.engine.execute_transaction(txn_type, args),
                name=f"execute-{txn_type}",
            )
            try:
                txn = self.env.run(until=process)
            except TransactionAborted as aborted:
                last_error = aborted
                continue
            return getattr(txn, "result", None)
        raise last_error

    def read_row(self, table, *parts):
        """Convenience: read a single row through a read-only transaction path."""
        from repro.storage.tables import composite_key

        version = self.store.latest_committed(composite_key(table, *parts))
        return None if version is None else version.value

    # -- introspection -----------------------------------------------------------------

    @property
    def stats(self):
        return self.engine.stats

    def describe_configuration(self):
        return self.configuration.describe()

    def check_serializability(self):
        """Run the Adya isolation checker over the committed history."""
        from repro.isolation import check_engine

        return check_engine(self.engine)

    def reconfigure(self, new_configuration, protocol="online"):
        """Switch the live database to a new configuration."""
        if protocol == "online":
            coroutine = self.engine.reconfigure_online(new_configuration)
        else:
            coroutine = self.engine.reconfigure_partial_restart(new_configuration)
        process = self.env.process(coroutine, name="reconfigure")
        self.env.run(until=process)
        return self.engine.configuration
