"""Tebaldi: hierarchical Modular Concurrency Control — reproduction library.

Public entry points:

* :class:`repro.database.Database` — run individual transactions against a
  workload under any CC-tree configuration.
* :class:`repro.harness.BenchmarkRunner` — closed-loop benchmark runs over the
  simulated cluster (the paper's evaluation methodology).
* :mod:`repro.harness.configs` — the named configurations from the paper
  (Callas-1/2, Tebaldi 2-/3-layer, SEATS trees, the initial configuration).
* :class:`repro.autoconf.AutoConfigurator` — the automatic configuration
  algorithm of Chapter 5.
"""

from repro.core.config import CCSpec, Configuration, leaf, monolithic, node
from repro.core.engine import EngineOptions, TebaldiEngine
from repro.database import Database
from repro.errors import (
    ConfigurationError,
    IsolationViolation,
    ReproError,
    TransactionAborted,
)

__version__ = "1.0.0"

__all__ = [
    "CCSpec",
    "Configuration",
    "leaf",
    "node",
    "monolithic",
    "EngineOptions",
    "TebaldiEngine",
    "Database",
    "ReproError",
    "TransactionAborted",
    "ConfigurationError",
    "IsolationViolation",
    "__version__",
]
