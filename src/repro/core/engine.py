"""The Tebaldi engine: transaction lifecycle over the hierarchical CC tree.

The engine implements the four-phase execution protocol of Section 4.3.1:

* **start** — top-down: every CC on the transaction's path allocates metadata
  (timestamps, batches); bottom-up dependency reporting is implicit in the
  shared dependency set.
* **execution** — per operation, top-down constraining (locks, pipeline
  steps, snapshot write checks), then bottom-up version selection: the leaf
  proposes a candidate version and ancestors may amend it (Figure 4.5).
* **validation** — bottom-up: each CC enforces consistent ordering, typically
  by waiting for the transaction's in-subtree dependencies to commit.
* **commit** — chained, uninterrupted: versions become visible atomically and
  every CC releases its resources.

The engine also hosts the shared services: multi-version storage, timestamp
oracle, garbage collection, durability and the contention profiler.

Hot-path design notes: the CC path and its cost constants are resolved once
per transaction in :meth:`begin` (pinned on the transaction as
``cc_path``/``charges``), transitive-dependency queries are memoized against
a dependency-graph generation counter, and finished-transaction bookkeeping
is O(1) amortized.
"""

import random
from collections import deque
from dataclasses import dataclass, field
from itertools import count

from repro.cc.timestamps import TimestampOracle
from repro.core.config import Configuration
from repro.core.context import TransactionContext
from repro.core.stats import StatsCollector
from repro.core.transaction import ReadRecord, ScanRecord, Transaction, TransactionStatus
from repro.core.tree import build_routes, build_tree
from repro.errors import ConfigurationError, TransactionAborted
from repro.sim.events import Event, Timeout, any_of
from repro.sim.network import TIMESTAMP_SERVER, ClusterModel
from repro.sim.resources import Condition
from repro.storage.durability import DurabilityConfig, DurabilityManager
from repro.storage.gc import GarbageCollector
from repro.storage.mvstore import MultiVersionStore

_ACTIVE = TransactionStatus.ACTIVE
_VALIDATING = TransactionStatus.VALIDATING


@dataclass
class EngineOptions:
    """Tunables of the engine (virtual-time costs, timeouts, features)."""

    lock_timeout: float = 0.5
    commit_wait_timeout: float = 1.0
    retry_backoff: float = 0.005
    charge_costs: bool = True
    model_cpu: bool = False
    cpu_slots: int = 64
    gc_epoch_length: float = 0.5
    keep_history: bool = True
    history_limit: int = 200_000
    durability: DurabilityConfig = field(default_factory=DurabilityConfig)
    # Degraded-mode (message fault) tunables.  All inert unless a
    # MessageFaultInjector with a non-empty plan is attached to the cluster:
    # per-phase reply timeout, bounded retry budget for never-applied
    # requests, and capped exponential backoff with seeded deterministic
    # randomization.  ``net_park_threshold`` is the admission valve: once
    # that many exchanges are backed up in retry, new transactions park
    # until the backlog drains to half the threshold.
    net_phase_timeout: float = 0.002
    net_retry_limit: int = 8
    net_backoff_base: float = 0.0004
    net_backoff_cap: float = 0.0064
    net_backoff_seed: int = 0
    net_park_threshold: int = 12


class TebaldiEngine:
    """A single Tebaldi database instance (simulated cluster)."""

    def __init__(
        self,
        env,
        configuration,
        transaction_types,
        store=None,
        options=None,
        profiler=None,
        cluster=None,
        durability=None,
        txn_id_start=1,
    ):
        if not isinstance(configuration, Configuration):
            raise ConfigurationError("configuration must be a Configuration instance")
        self.env = env
        self.options = options or EngineOptions()
        self.transaction_types = dict(transaction_types)
        self._check_configuration(configuration)
        self.configuration = configuration
        self.store = store if store is not None else MultiVersionStore()
        self.cluster = cluster or ClusterModel(env, cpu_slots=self.options.cpu_slots)
        self.oracle = TimestampOracle()
        self.profiler = profiler
        self.stats = StatsCollector(env)
        self.gc = GarbageCollector(self.store, epoch_length=self.options.gc_epoch_length)
        # The crash harness injects a shared manager that survives engine
        # rebuilds across simulated crashes; ``txn_id_start`` likewise keeps
        # transaction ids unique across incarnations.
        self.durability = (
            durability
            if durability is not None
            else DurabilityManager(self.options.durability)
        )
        # Static for the engine's lifetime; cached off the property chain.
        self._durable = self.durability.enabled
        self.commit_condition = Condition(env, name="commit")
        self.admission_condition = Condition(env, name="admission")

        self._txn_ids = count(txn_id_start)
        self.active = {}
        self.finished = {}
        self._finished_order = deque()
        self.committed_ids = set()
        self.aborted_ids = set()
        self.committed_history = deque(maxlen=self.options.history_limit)
        # Optional streaming isolation recorder (see repro.isolation.history):
        # notified with every commit's installed versions and every abort, so
        # checked runs observe the authoritative version order even after GC.
        self.history_recorder = None
        self._paused_types = set()
        self._draining = False

        # Degraded-mode state: retry backlog and the admission valve.  The
        # backoff RNG is seeded (integers only) so retry schedules — and
        # therefore whole degraded runs — reproduce byte-identically.
        self._net_rng = random.Random((int(self.options.net_backoff_seed) << 8) ^ 0xB0FF)
        self._net_backlog = 0
        self._net_degraded = False
        self.net_stats = {
            "retries": 0,
            "duplicate_deliveries": 0,
            "retransmit_applies": 0,
            "unreachable_aborts": 0,
            "parked": 0,
            "degraded_windows": 0,
        }

        # Memoized transitive-dependency reachability, invalidated whenever
        # the dependency graph changes shape (new edge, transaction retired).
        self._dep_generation = 0
        self._reach_cache = {}
        self._reach_cache_generation = -1

        self.root, self.nodes, self._leaf_by_type = build_tree(self, configuration)
        self._routes = build_routes(
            self._leaf_by_type, self.cluster, self.transaction_types
        )

    # -- configuration helpers ------------------------------------------------

    def _check_configuration(self, configuration):
        missing = configuration.transaction_types - set(self.transaction_types)
        if missing:
            raise ConfigurationError(
                f"configuration references unknown transaction types: {sorted(missing)}"
            )
        unassigned = set(self.transaction_types) - configuration.transaction_types
        if unassigned:
            raise ConfigurationError(
                f"transaction types missing from configuration: {sorted(unassigned)}"
            )

    def profile_of(self, txn_type):
        return self.transaction_types[txn_type].profile

    def profiles_for(self, txn_types):
        return [self.profile_of(name) for name in txn_types]

    def is_read_only_type(self, txn_type):
        return self.transaction_types[txn_type].read_only

    def path_for(self, txn):
        path = txn.path_nodes
        if path is not None:
            return path
        return self._routes[txn.txn_type].nodes

    def cc_path(self, txn):
        ccs = txn.cc_path
        if ccs is not None:
            return ccs
        return self._routes[txn.txn_type].ccs

    def find_transaction(self, txn_id):
        txn = self.active.get(txn_id)
        if txn is not None:
            return txn
        return self.finished.get(txn_id)

    # -- lifecycle --------------------------------------------------------------

    def begin(self, txn_type, args=None, client_id=-1):
        """Create and register a new transaction instance."""
        route = self._routes.get(txn_type)
        if route is None:
            raise ConfigurationError(f"unknown transaction type {txn_type!r}")
        args = dict(args or {})
        txn = Transaction(
            txn_id=next(self._txn_ids),
            txn_type=txn_type,
            args=args,
            client_id=client_id,
            read_only=route.read_only,
            begin_time=self.env._now,
        )
        txn.leaf_node_id = route.leaf_node_id
        if route.instance_key is not None:
            txn.partition_value = route.instance_key(args)
        # Pin the runtime path and its precomputed cost constants so that
        # in-flight transactions are unaffected by online reconfigurations
        # swapping parts of the tree, and the hot path never rebuilds them.
        path = route.nodes
        txn.path_nodes = path
        txn.cc_path = route.ccs
        txn.charges = route
        txn.dep_listener = self._on_new_dependency
        if route.static_group_tokens is not None:
            # Immutable token map shared by every transaction of this type.
            txn.group_tokens = route.static_group_tokens
        else:
            for parent, child in zip(path, path[1:]):
                token = child.node_id
                if child.spec.instance_key is not None:
                    token = (child.node_id, txn.partition_value)
                txn.group_tokens[parent.node_id] = token
            # A leaf with per-instance partitioning also distinguishes its
            # own partitions, which matters when it is the direct child of
            # the root.
            leaf_node_id = route.leaf_node_id
            txn.group_tokens[leaf_node_id] = (leaf_node_id, txn.partition_value)
        txn.finish_event = Event(self.env, "finish")
        self.gc.register_transaction(txn)
        self.active[txn.txn_id] = txn
        return txn

    def execute_transaction(self, txn_type, args=None, client_id=-1):
        """Coroutine: run one transaction attempt end-to-end.

        Returns the committed :class:`Transaction`; raises
        :class:`TransactionAborted` if the attempt aborts (the caller decides
        whether to retry).
        """
        if self._draining or self._net_degraded or txn_type in self._paused_types:
            yield from self._wait_for_admission(txn_type)
        route = self._routes.get(txn_type)
        if route is not None and route.admission_hooks:
            # Batched-admission path: mechanisms that admit work in waves
            # (deterministic batch execution) park arriving requests here,
            # before begin(), so a full backlog never inflates the active
            # set or the dependency graph.
            for admit_hook in route.admission_hooks:
                step = admit_hook(txn_type, args)
                if step is not None:
                    yield from step
        txn = self.begin(txn_type, args, client_id)
        try:
            result = yield from self._run(txn)
        except TransactionAborted as abort:
            self._finish_abort(txn, abort.reason)
            raise
        txn.result = result
        return txn

    def _wait_for_admission(self, txn_type):
        if self._net_degraded:
            # The admission valve: retry queues backed up past the
            # threshold, so new work parks instead of piling onto a
            # partitioned link.  Parked transactions resume when the
            # backlog drains (partition healed, retries succeeded).
            self.net_stats["parked"] += 1
        while self._draining or self._net_degraded or txn_type in self._paused_types:
            yield from self.admission_condition.wait()

    def _run(self, txn):
        charges = txn.charges
        charge_costs = self.options.charge_costs
        # Degraded mode: with a non-empty message fault plan attached to the
        # cluster, every protocol round-trip routes through the message
        # layer's send() with timeout/retry/backoff.  An absent injector or
        # an empty plan keeps the historical constant-delay path, event for
        # event — pinned byte-identical by the chaos suite.
        faults = self.cluster.message_faults
        chaos = faults is not None and faults.enabled
        # Start phase -------------------------------------------------------
        if chaos:
            yield from self._chaos_start_phase(txn, charges, charge_costs)
        elif charge_costs:
            if self.options.model_cpu:
                yield from self._charge_start_phase(charges)
            else:
                yield Timeout(self.env, charges.start_delay)
        for start_hook in charges.start_hooks:
            step = start_hook(txn)
            if step is not None:
                yield from step
        # Execution phase (driven by the stored procedure) -------------------
        procedure = charges.procedure
        context = TransactionContext(self, txn)
        result = yield from procedure(context, **txn.args)
        # Validation phase ----------------------------------------------------
        txn.status = TransactionStatus.VALIDATING
        if chaos:
            yield from self._chaos_phase(txn, charges, charge_costs, "validate")
        elif charge_costs:
            if self.options.model_cpu:
                yield from self._charge_phase(charges)
            else:
                yield Timeout(self.env, charges.phase_delay)
        for validate_hook in charges.validate_hooks:
            step = validate_hook(txn)
            if step is not None:
                yield from step
        self._check_cascading_abort(txn)
        # Commit phase ---------------------------------------------------------
        if chaos:
            yield from self._chaos_commit(txn, charges, charge_costs)
        else:
            if charge_costs:
                if self.options.model_cpu:
                    yield from self._charge_phase(charges)
                else:
                    yield Timeout(self.env, charges.phase_delay)
            for pre_commit_hook in charges.pre_commit_hooks:
                step = pre_commit_hook(txn)
                if step is not None:
                    yield from step
            if self._durable:
                # Durable precommit and epoch propagation run *before* the
                # versions become visible: any transaction that reads this
                # one therefore precommits in the same or a later GCP epoch,
                # so a durable reader can never survive recovery while its
                # writer vanishes (cross-crash recoverability of the DSG).
                self._durable_precommit(txn)
                if self.durability.halted:
                    # An injected crash fired inside the precommit: the
                    # machine is down and this commit never becomes visible.
                    # Park the process on an event that never triggers — if
                    # the full precommit set made it to disk first, recovery
                    # resurrects the transaction as a *ghost* (durable,
                    # unacknowledged).
                    yield Event(self.env, "crashed")
            self._commit(txn)
        if self._durable:
            delay = self.durability.flush_delay()
            if delay:
                yield self.env.timeout(delay)
        for finish_hook in charges.finish_hooks:
            finish_hook(txn, committed=True)
        self.commit_condition.notify_all()
        return result

    def _commit(self, txn):
        versions = self.store.commit_transaction(txn, timestamp=txn.commit_timestamp)
        txn.status = TransactionStatus.COMMITTED
        txn.end_time = self.env.now
        self.committed_ids.add(txn.txn_id)
        if not txn.finish_event.triggered:
            txn.finish_event.succeed(True)
        self._retire(txn)
        self.stats.record_commit(txn)
        if self.options.keep_history:
            self.committed_history.append(txn)
        if self.history_recorder is not None:
            self.history_recorder.on_commit(txn, versions)
        self.gc.finish_transaction(txn)
        return versions

    def _durable_precommit(self, txn):
        writes = [(key, txn.writes[key]) for key in txn.write_order]
        global_epoch = self.durability.precommit(txn, writes)
        txn.global_gcp_epoch = global_epoch
        self.durability.commit_notification(txn, global_epoch)

    # -- degraded mode (message faults) ---------------------------------------

    def _robust_exchange(self, txn, phase, dsts=(0,), round_trips=1,
                         apply_fn=None, retransmit_fn=None):
        """Coroutine: one protocol exchange with timeout/retry/backoff.

        ``apply_fn`` runs exactly once, synchronously, the first time the
        request reaches the servers; duplicated deliveries and retransmits
        after a lost reply invoke ``retransmit_fn`` instead — the
        receiver-side dedup path (commit-ticket dedup at the durability
        layer, idempotent allocation at the timestamp server).  The
        exchange returns ``apply_fn``'s result once a reply arrives.

        A request that was never applied aborts the transaction after
        ``net_retry_limit`` failed attempts.  Once applied, the TC retries
        without bound — the effect may be durable, so abandoning it would
        manufacture a phantom commit — which terminates because fault
        plans are finite and partitions heal by time.  Failed attempts
        enter the retry backlog that drives the admission valve.
        """
        options = self.options
        stats = self.net_stats
        applied = False
        result = None
        attempts = 0
        backlogged = False
        try:
            while True:
                attempts += 1
                outcome = yield from self.cluster.send(
                    dsts=dsts,
                    phase=phase,
                    txn_id=txn.txn_id,
                    round_trips=round_trips,
                    timeout=options.net_phase_timeout,
                )
                if outcome.request_reached:
                    if not applied:
                        result = apply_fn() if apply_fn is not None else None
                        applied = True
                        if outcome.duplicated:
                            stats["duplicate_deliveries"] += 1
                            if retransmit_fn is not None:
                                retransmit_fn()
                    else:
                        stats["retransmit_applies"] += 1
                        if retransmit_fn is not None:
                            retransmit_fn()
                if outcome.delivered:
                    return result
                stats["retries"] += 1
                if not applied and attempts > options.net_retry_limit:
                    stats["unreachable_aborts"] += 1
                    raise TransactionAborted(txn.txn_id, f"net-unreachable-{phase}")
                if not backlogged:
                    backlogged = True
                    self._net_backlog += 1
                    if (
                        not self._net_degraded
                        and self._net_backlog >= options.net_park_threshold
                    ):
                        self._net_degraded = True
                        stats["degraded_windows"] += 1
                delay = min(
                    options.net_backoff_base * (2 ** min(attempts - 1, 6)),
                    options.net_backoff_cap,
                )
                # Seeded deterministic "randomization": spreads concurrent
                # retries apart without forfeiting reproducibility.
                delay *= 0.5 + self._net_rng.random()
                yield Timeout(self.env, delay)
        finally:
            if backlogged:
                self._net_backlog -= 1
                if (
                    self._net_degraded
                    and self._net_backlog <= options.net_park_threshold // 2
                ):
                    # Hysteresis: reopen admission only once the backlog
                    # drained to half the threshold, not at the first lull.
                    self._net_degraded = False
                    self.admission_condition.notify_all()

    def _chaos_start_phase(self, txn, charges, charge_costs):
        """Start phase over the message layer: one TC/DS round-trip plus,
        for CCs that use the centralized timestamp server (SSI, TSO), the
        timestamp request — idempotent at the server, so a duplicated or
        retransmitted request cannot burn a second timestamp."""
        if charge_costs:
            if self.options.model_cpu:
                yield from self.cluster.compute(charges.phase_cost)
            else:
                yield Timeout(self.env, charges.phase_cost)
        yield from self._robust_exchange(txn, "start")
        if charges.start_rtts:
            token = ("timestamp", txn.txn_id)
            allocate = lambda: self.oracle.next_for(token)
            yield from self._robust_exchange(
                txn,
                "timestamp",
                dsts=(TIMESTAMP_SERVER,),
                round_trips=charges.start_rtts,
                apply_fn=allocate,
                retransmit_fn=allocate,
            )
            self.oracle.release(token)

    def _chaos_phase(self, txn, charges, charge_costs, phase):
        """A non-commit phase (validation) over the message layer."""
        if charge_costs:
            if self.options.model_cpu:
                yield from self.cluster.compute(charges.phase_cost)
            else:
                yield Timeout(self.env, charges.phase_cost)
        yield from self._robust_exchange(txn, phase)

    def _chaos_commit(self, txn, charges, charge_costs):
        """Commit phase over the message layer.

        The commit request is one robust exchange whose server-side apply
        — cascading-abort check, pre-commit validation hooks, durable
        precommit and the installation of the versions — runs synchronously
        at delivery, preserving the no-interleaving guarantee OCC's
        backward validation relies on.  Retransmits after a lost reply and
        duplicated deliveries re-enter only the durability layer, whose
        commit-ticket dedup must absorb them (apply exactly once).
        """
        if charge_costs:
            if self.options.model_cpu:
                yield from self.cluster.compute(charges.phase_cost)
            else:
                yield Timeout(self.env, charges.phase_cost)
        durable = self._durable
        if durable:
            writes = [(key, txn.writes[key]) for key in txn.write_order]
            participants = self.durability.participants_for(writes)
            retransmit = lambda: self.durability.precommit(txn, writes)
        else:
            writes = None
            participants = (0,)
            retransmit = None

        def apply():
            self._check_cascading_abort(txn)
            for pre_commit_hook in charges.pre_commit_hooks:
                step = pre_commit_hook(txn)
                if step is not None:
                    raise ConfigurationError(
                        "degraded mode requires synchronous pre_commit hooks"
                    )
            if durable:
                global_epoch = self.durability.precommit(txn, writes)
                txn.global_gcp_epoch = global_epoch
                self.durability.commit_notification(txn, global_epoch)
                if self.durability.halted:
                    return
            self._commit(txn)

        yield from self._robust_exchange(
            txn,
            "precommit",
            dsts=participants,
            apply_fn=apply,
            retransmit_fn=retransmit,
        )
        if durable and self.durability.halted:
            # A crash fired inside the precommit: the machine is down and
            # this commit never became visible (see the plain path above).
            yield Event(self.env, "crashed")

    def _finish_abort(self, txn, reason):
        txn.status = TransactionStatus.ABORTED
        txn.abort_reason = reason
        txn.end_time = self.env.now
        if not txn.finish_event.triggered:
            txn.finish_event.succeed(False)
        self.store.abort_transaction(txn)
        for finish_hook in txn.charges.finish_hooks:
            finish_hook(txn, committed=False)
        self.aborted_ids.add(txn.txn_id)
        self._retire(txn)
        if self.history_recorder is not None:
            self.history_recorder.on_abort(txn)
        self.stats.record_abort(txn, reason)
        self.gc.finish_transaction(txn)
        self.commit_condition.notify_all()

    def _retire(self, txn):
        self.active.pop(txn.txn_id, None)
        # Retiring removes the transaction's outgoing edges from the active
        # dependency graph, so memoized reachability must be invalidated.
        self._dep_generation += 1
        if txn.txn_id not in self.finished:
            self._finished_order.append(txn.txn_id)
        self.finished[txn.txn_id] = txn
        limit = self.options.history_limit
        # O(1) amortized trimming: pop the oldest finished ids from the front
        # of the insertion-ordered deque instead of materialising the dict.
        while len(self.finished) > limit:
            oldest = self._finished_order.popleft()
            self.finished.pop(oldest, None)

    def user_abort(self, txn, reason="user-abort"):
        raise TransactionAborted(txn.txn_id, reason)

    def _check_cascading_abort(self, txn):
        for dep_id in txn.read_from:
            if dep_id in self.aborted_ids:
                raise TransactionAborted(txn.txn_id, "cascading-abort")

    # -- operations ---------------------------------------------------------------

    def perform_read(self, txn, key, for_update=False):
        """Coroutine implementing one read of the execution phase."""
        status = txn.status
        if status is not _ACTIVE and status is not _VALIDATING:
            raise TransactionAborted(txn.txn_id, txn.abort_reason or "not-active")
        charges = txn.charges
        options = self.options
        if options.charge_costs:
            if options.model_cpu:
                yield from self._charge_operation(charges)
            else:
                yield Timeout(self.env, charges.op_delay)
        hooks = charges.update_read_hooks if for_update else charges.read_hooks
        for hook in hooks:
            step = hook(txn, key)
            if step is not None:
                yield from step
        # Multi-versioned CCs may treat "read for update" differently (the
        # subsequent write-write check covers the conflict, so registering an
        # anti-dependency would double-count it).
        txn.current_read_for_update = for_update
        candidate = charges.select_version(txn, key)
        for amend_hook in charges.amend_hooks:
            candidate = amend_hook(txn, key, candidate)
        txn.current_read_for_update = False
        if (
            candidate is not None
            and not candidate.committed
            and candidate.writer != txn.txn_id
            and self.depends_transitively(candidate.writer, txn.txn_id)
        ):
            # Reading this exposed value would order us after a transaction
            # that is already ordered after us — an ordering cycle.
            if self.profiler is not None:
                self.profiler.record_abort(
                    txn, "order-conflict", self.active.get(candidate.writer)
                )
            raise TransactionAborted(txn.txn_id, "order-conflict")
        txn.reads.append(ReadRecord(key, candidate, self.env._now))
        if candidate is None:
            return None
        if candidate.writer != txn.txn_id and (
            not candidate.committed or candidate.writer in self.active
        ):
            # Only still-active writers matter for ordering waits; committed
            # writers impose no further constraint on this transaction.
            txn.add_dependency(candidate.writer, read_from=not candidate.committed)
        value = candidate.value
        return dict(value) if isinstance(value, dict) else value

    def perform_write(self, txn, key, value):
        """Coroutine implementing one write of the execution phase."""
        status = txn.status
        if status is not _ACTIVE and status is not _VALIDATING:
            raise TransactionAborted(txn.txn_id, txn.abort_reason or "not-active")
        charges = txn.charges
        options = self.options
        if options.charge_costs:
            if options.model_cpu:
                yield from self._charge_operation(charges)
            else:
                yield Timeout(self.env, charges.op_delay)
        for hook in charges.write_hooks:
            step = hook(txn, key, value)
            if step is not None:
                yield from step
        # Order this write after existing writers of the key (only active
        # writers can still constrain ordering decisions).  If an existing
        # writer is already ordered after this transaction, installing on top
        # of it would create an ordering cycle — abort instead.
        latest = self.store.latest_committed(key)
        if latest is not None and latest.writer in self.active:
            txn.add_dependency(latest.writer)
        pending_map = self.store.uncommitted_map(key)
        if pending_map:
            for pending_writer in pending_map:
                if pending_writer == txn.txn_id:
                    continue
                if self.depends_transitively(pending_writer, txn.txn_id):
                    raise TransactionAborted(txn.txn_id, "order-conflict")
                txn.add_dependency(pending_writer)
        version = self.store.install(key, value, txn)
        txn.record_write(key, value)
        if self._durable:
            self.durability.log_operation(txn, key, value)
        for after_write_hook in charges.after_write_hooks:
            after_write_hook(txn, key, version)
        return version

    def perform_scan(self, txn, key_range, limit=None, for_update=False):
        """Coroutine implementing one ordered range scan of the execution phase.

        The scan first runs the top-down ``before_scan`` hooks with the
        :class:`~repro.storage.ranges.KeyRange` predicate (range locks,
        snapshot range registration, timestamp range reads), then enumerates
        the matching keys from the store's ordered index — including
        in-flight inserts — and drives every key through the ordinary
        per-key read path, so CC hooks constrain each key exactly as they
        would a point read.  Returns ``[(pk, row), ...]`` in key order,
        skipping missing/deleted rows; ``limit`` bounds the number of rows
        returned (not keys examined).

        The scan is recorded on the transaction (``txn.scans``) with its
        *effective* range — truncated to the last enumerated key when the
        limit stopped it early — which is what the isolation oracle uses to
        derive phantom anti-dependencies.
        """
        status = txn.status
        if status is not _ACTIVE and status is not _VALIDATING:
            raise TransactionAborted(txn.txn_id, txn.abort_reason or "not-active")
        charges = txn.charges
        options = self.options
        if options.charge_costs:
            # One operation charge for the index probe; every enumerated key
            # then pays the normal per-read charge in perform_read.
            if options.model_cpu:
                yield from self._charge_operation(charges)
            else:
                yield Timeout(self.env, charges.op_delay)
        for hook in charges.scan_hooks:
            step = hook(txn, key_range)
            if step is not None:
                yield from step
        candidates = self.store.range_keys(key_range.table, key_range.lo, key_range.hi)
        rows = []
        last_key = None
        truncated = False
        for key in candidates:
            value = yield from self.perform_read(txn, key, for_update=for_update)
            last_key = key
            if value is not None:
                rows.append((key[1], value))
                if limit is not None and len(rows) >= limit:
                    truncated = True
                    break
        effective = key_range
        if truncated and last_key is not None:
            effective = key_range.truncated(last_key[1])
        txn.scans.append(ScanRecord(effective, self.env._now))
        return rows

    def wait_would_deadlock(self, txn, blocker_id):
        """True if blocking on ``blocker_id`` closes a wait-for cycle.

        Uses the ``current_wait`` annotations every wait site maintains, so a
        cycle is detected the moment its final edge is about to be added and
        can be broken immediately (by aborting the requester) instead of
        stalling until a timeout fires.
        """
        seen = set()
        current = blocker_id
        while current is not None and current not in seen:
            if current == txn.txn_id:
                return True
            seen.add(current)
            other = self.active.get(current)
            if other is None or other.current_wait is None:
                return False
            current = other.current_wait[1]
        return False

    def abort_if_wait_deadlock(self, txn, blocker_id, reason="wait-deadlock"):
        """Raise :class:`TransactionAborted` if waiting would deadlock."""
        if blocker_id is not None and self.wait_would_deadlock(txn, blocker_id):
            if self.profiler is not None:
                self.profiler.record_abort(txn, reason, self.active.get(blocker_id))
            raise TransactionAborted(txn.txn_id, reason)

    def _on_new_dependency(self, txn, other_id):
        """Maintain reverse dependency edges and invalidate reachability."""
        self._dep_generation += 1
        other = self.active.get(other_id)
        if other is None:
            other = self.finished.get(other_id)
        if other is not None:
            other.dependents.add(txn.txn_id)

    def _ordered_after(self, target):
        """Set of active txn ids transitively ordered after ``target``.

        Walks the engine-maintained reverse dependency edges; only active
        transactions can relay an ordering constraint, exactly mirroring the
        forward walk the engine used to do per query.  The result is memoized
        until the dependency graph changes shape (edge added / txn retired).
        """
        active = self.active
        closure = set()
        frontier = [target]
        while frontier:
            node = frontier.pop()
            for dep_id in node.dependents:
                if dep_id in closure:
                    continue
                dependent = active.get(dep_id)
                if dependent is None:
                    continue
                closure.add(dep_id)
                frontier.append(dependent)
        return closure

    def depends_transitively(self, source_id, target_id):
        """True if active transaction ``source_id`` is ordered after ``target_id``.

        Used to detect (and break, by aborting) ordering cycles before they
        can cause unserializable pipelining or wait-for deadlocks.  The query
        is answered from the reverse-reachability closure of ``target_id``
        (typically a handful of transactions), which is memoized against a
        dependency-graph generation counter bumped on every new edge and
        every retire — so bursts of queries against the same transaction
        (lock conflict scans, pipeline-entry checks) share one walk.
        """
        if source_id == target_id:
            return True
        cache = self._reach_cache
        if self._reach_cache_generation != self._dep_generation:
            cache.clear()
            self._reach_cache_generation = self._dep_generation
        closure = cache.get(target_id)
        if closure is None:
            target = self.active.get(target_id)
            if target is None:
                target = self.finished.get(target_id)
            if target is None:
                return False
            closure = cache[target_id] = self._ordered_after(target)
        return source_id in closure

    # -- waiting helpers ------------------------------------------------------------

    def wait_for_transactions(self, txn, dep_ids, timeout=None):
        """Coroutine: block until every id in ``dep_ids`` has finished.

        Used by CC validate hooks to enforce consistent ordering (adoption).
        Aborts the waiting transaction if it read from a dependency that
        aborted (cascading abort) or if the wait times out (cycle relief).
        """
        timeout = timeout if timeout is not None else self.options.commit_wait_timeout
        timeout_event = None
        while True:
            pending = [
                dep_id
                for dep_id in dep_ids
                if dep_id != txn.txn_id and dep_id in self.active
            ]
            if not pending:
                break
            blocker = self.active.get(pending[0])
            wait_start = self.env.now
            if timeout_event is None:
                timeout_event = self.env.timeout(timeout)
            elif timeout_event._processed:
                if self.profiler is not None:
                    self.profiler.record_abort(txn, "commit-order-timeout", blocker)
                raise TransactionAborted(txn.txn_id, "commit-order-timeout")
            for dep_id in pending:
                self.abort_if_wait_deadlock(txn, dep_id)
            # Wait directly on the blocking transaction's finish event so
            # that only its dependents wake up when it commits or aborts.
            txn.current_wait = ("commit-order", blocker.txn_id)
            yield any_of(self.env, [blocker.finish_event, timeout_event])
            txn.current_wait = None
            if self.profiler is not None and blocker is not None:
                self.profiler.record_wait(
                    txn, blocker, wait_start, self.env.now, kind="commit-order"
                )
        self._check_cascading_abort(txn)

    def wait_for_progress(self, txn, blockers_fn, event_fn, timeout=None, reason="wait"):
        """Coroutine: wait until ``blockers_fn()`` returns an empty list.

        Unlike :meth:`wait_until`, the wait is *targeted*: the transaction
        subscribes to events specific to the first blocking transaction
        (``event_fn(blocker)``), so unrelated progress does not wake it.
        """
        timeout = timeout if timeout is not None else self.options.commit_wait_timeout
        timeout_event = None
        while True:
            blockers = blockers_fn()
            if not blockers:
                return
            blocker = blockers[0]
            wait_start = self.env.now
            if timeout_event is None:
                timeout_event = self.env.timeout(timeout)
            elif timeout_event._processed:
                if self.profiler is not None:
                    self.profiler.record_abort(txn, f"{reason}-timeout", blocker)
                raise TransactionAborted(txn.txn_id, f"{reason}-timeout")
            self.abort_if_wait_deadlock(txn, blocker.txn_id, reason=f"{reason}-deadlock")
            events = [event for event in event_fn(blocker) if event is not None]
            txn.current_wait = (reason, blocker.txn_id)
            yield any_of(self.env, events + [timeout_event])
            txn.current_wait = None
            if self.profiler is not None and blocker is not None:
                self.profiler.record_wait(txn, blocker, wait_start, self.env.now, kind=reason)

    def wait_until(self, txn, predicate, condition, blocker_fn=None, timeout=None, reason="wait"):
        """Coroutine: wait on ``condition`` until ``predicate()`` is true.

        ``blocker_fn`` (optional) names the transaction currently responsible
        for the wait so the profiler can attribute the blocking time.
        """
        timeout = timeout if timeout is not None else self.options.commit_wait_timeout
        timeout_event = None
        while not predicate():
            blocker = blocker_fn() if blocker_fn is not None else None
            wait_start = self.env.now
            if timeout_event is None:
                timeout_event = self.env.timeout(timeout)
            elif timeout_event._processed:
                if self.profiler is not None:
                    self.profiler.record_abort(txn, f"{reason}-timeout", blocker)
                raise TransactionAborted(txn.txn_id, f"{reason}-timeout")
            yield any_of(self.env, [condition._event, timeout_event])
            if self.profiler is not None and blocker is not None:
                self.profiler.record_wait(txn, blocker, wait_start, self.env.now, kind=reason)

    # -- cost model --------------------------------------------------------------------

    # The cheap path (model_cpu off) charges a single precomputed Timeout
    # inline at every call site; these helpers cover only the CPU-modelled
    # variant with its bounded compute pool.

    def _charge_operation(self, charges):
        yield from self.cluster.compute(charges.op_cost)
        yield from self.cluster.network_delay(charges.op_rtts)

    def _charge_phase(self, charges):
        yield from self.cluster.compute(charges.phase_cost)
        yield from self.cluster.network_delay(1)

    def _charge_start_phase(self, charges):
        yield from self.cluster.compute(charges.phase_cost)
        yield from self.cluster.network_delay(1 + charges.start_rtts)

    # -- background services --------------------------------------------------------------

    def start_services(self, stop_event=None):
        """Spawn garbage collection and durability flusher processes."""
        processes = [
            self.env.process(
                self.gc.run(self.env, lambda: [node.cc for node in self.nodes], stop_event),
                name="gc",
            )
        ]
        if self.durability.enabled and self.durability.config.asynchronous:
            processes.append(
                self.env.process(
                    self.durability.run_flusher(self.env, stop_event), name="gcp-flusher"
                )
            )
        return processes

    # -- reconfiguration (Section 5.5) -------------------------------------------------------

    def reconfigure_partial_restart(self, new_configuration, force_abort_after=None):
        """Coroutine: the partial-restart protocol.

        Clean-up phase: stop admitting transactions and wait for ongoing ones
        to finish (optionally force-aborting after a timeout).  Prepare phase:
        rebuild the CC module with the new configuration (storage untouched).
        Apply phase: resume admission.

        The drain is event-driven: the engine waits on the commit condition
        (notified on every commit and abort) plus, when a force-abort window
        is set, a single deadline timeout — no polling.
        """
        self._draining = True
        self.gc.pause()
        deadline_event = None
        if force_abort_after is not None:
            deadline_event = self.env.timeout(force_abort_after)
        while self.active:
            if deadline_event is not None and deadline_event._processed:
                for txn in list(self.active.values()):
                    txn.status = TransactionStatus.ABORTED
                    txn.abort_reason = "forced-reconfiguration"
                break
            if deadline_event is not None:
                yield any_of(self.env, [self.commit_condition._event, deadline_event])
            else:
                yield from self.commit_condition.wait()
        self._swap_configuration(new_configuration)
        self.gc.resume()
        self._draining = False
        self.admission_condition.notify_all()

    def reconfigure_online(self, new_configuration):
        """Coroutine: the online-update protocol.

        The lowest subtree containing every change is identified; only the
        transaction types assigned to that subtree are paused and drained,
        then the runtime subtree is replaced in place.  Every other type
        keeps executing during the switch, so the throughput dip is much
        smaller than with the partial restart (Figure 5.19).  If the change
        reaches the root, the protocol falls back to the partial restart.
        """
        change_path = self._lowest_changed_subtree(new_configuration)
        if change_path is None:
            # Nothing structural changed; just adopt the new configuration.
            self.configuration = new_configuration
            return
        if not change_path:
            yield from self.reconfigure_partial_restart(new_configuration)
            return
        affected = self._affected_types(new_configuration)
        self._paused_types |= affected
        while any(txn.txn_type in affected for txn in self.active.values()):
            # Event-driven drain: every commit/abort notifies the condition.
            yield from self.commit_condition.wait()
        self._splice_subtree(new_configuration, change_path)
        self._paused_types -= affected
        self.admission_condition.notify_all()

    def _lowest_changed_subtree(self, new_configuration):
        """Child-index path to the lowest subtree containing all changes.

        Returns ``None`` if the configurations are structurally identical and
        ``[]`` (the root) when the change cannot be localised below the root.
        """
        old_spec, new_spec = self.configuration.root, new_configuration.root
        if old_spec.signature() == new_spec.signature():
            return None
        path = []
        while True:
            if (
                old_spec.cc != new_spec.cc
                or old_spec.is_leaf
                or new_spec.is_leaf
                or len(old_spec.children) != len(new_spec.children)
            ):
                return path
            diffs = [
                index
                for index, (old_child, new_child) in enumerate(
                    zip(old_spec.children, new_spec.children)
                )
                if old_child.signature() != new_child.signature()
            ]
            if len(diffs) != 1:
                return path
            index = diffs[0]
            path.append(index)
            old_spec = old_spec.children[index]
            new_spec = new_spec.children[index]

    def _splice_subtree(self, new_configuration, change_path):
        """Replace the runtime subtree at ``change_path`` with fresh nodes."""
        self._check_configuration(new_configuration)
        old_node = self.root
        for index in change_path:
            old_node = old_node.children[index]
        new_spec = new_configuration.root
        for index in change_path:
            new_spec = new_spec.children[index]
        sub_config = Configuration(new_spec, name=f"{new_configuration.name}-subtree")
        sub_root, sub_nodes, _sub_leaves = build_tree(self, sub_config)
        # Renumber the spliced nodes to occupy the replaced position.
        prefix = old_node.node_id
        for node in sub_nodes:
            node.node_id = prefix + node.node_id[1:]
        sub_root.parent = old_node.parent
        if old_node.parent is not None:
            position = old_node.parent.children.index(old_node)
            old_node.parent.children[position] = sub_root
        else:
            self.root = sub_root
        # Refresh subtree membership up the ancestor chain.
        ancestor = sub_root.parent
        while ancestor is not None:
            ancestor.subtree_types = frozenset(
                txn_type
                for child in ancestor.children
                for txn_type in child.subtree_types
            )
            ancestor = ancestor.parent
        self.configuration = new_configuration
        self.nodes = list(self.root.iter_subtree())
        self._leaf_by_type = {}
        for node in self.nodes:
            if node.is_leaf:
                for txn_type in node.spec.transactions:
                    self._leaf_by_type[txn_type] = node
        self._routes = build_routes(
            self._leaf_by_type, self.cluster, self.transaction_types
        )

    def _affected_types(self, new_configuration):
        """Transaction types whose leaf group or path changes."""
        affected = set()
        for txn_type in self.configuration.transaction_types:
            old_leaf = self.configuration.leaf_for(txn_type)
            try:
                new_leaf = new_configuration.leaf_for(txn_type)
            except ConfigurationError:
                affected.add(txn_type)
                continue
            if old_leaf.signature() != new_leaf.signature():
                affected.add(txn_type)
        affected |= new_configuration.transaction_types - self.configuration.transaction_types
        return affected

    def _swap_configuration(self, new_configuration):
        self._check_configuration(new_configuration)
        self.configuration = new_configuration
        self.root, self.nodes, self._leaf_by_type = build_tree(self, new_configuration)
        self._routes = build_routes(
            self._leaf_by_type, self.cluster, self.transaction_types
        )
