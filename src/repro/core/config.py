"""Declarative CC-tree configurations (the paper's Figures 4.2, 4.6, 5.2...).

A configuration is a tree of :class:`CCSpec` nodes.  Leaves list the static
transaction types they regulate; internal nodes regulate conflicts between
their child subtrees.  The engine compiles a configuration into runtime
:class:`~repro.core.engine.TreeNode` objects with actual CC instances.
"""

import copy
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ConfigurationError


@dataclass
class CCSpec:
    """One node of a CC-tree configuration.

    Attributes
    ----------
    cc:
        Registry name of the CC mechanism (``"2pl"``, ``"rp"``, ``"ssi"``,
        ``"tso"``, ``"occ"``, ``"none"``).
    transactions:
        For leaves, the static transaction types assigned to this group.
    children:
        For internal nodes, the child subtrees.
    params:
        Mechanism-specific parameters (e.g. ``{"batching": False}``).
    instance_key:
        Optional partition-by-instance function ``args -> hashable`` for
        leaves: the runtime creates one CC instance per distinct value and
        the parent treats the instances as separate groups (Section 5.4.2).
    label:
        Optional human-readable label used in reports.
    """

    cc: str
    transactions: tuple = ()
    children: list = field(default_factory=list)
    params: dict = field(default_factory=dict)
    instance_key: Optional[Callable] = None
    label: str = ""

    @property
    def is_leaf(self):
        return not self.children

    def clone(self):
        """Deep copy of the subtree (instance_key callables are shared)."""
        return CCSpec(
            cc=self.cc,
            transactions=tuple(self.transactions),
            children=[child.clone() for child in self.children],
            params=copy.deepcopy(self.params),
            instance_key=self.instance_key,
            label=self.label,
        )

    def all_transactions(self):
        """Every transaction type assigned in this subtree (document order)."""
        if self.is_leaf:
            return list(self.transactions)
        found = []
        for child in self.children:
            found.extend(child.all_transactions())
        return found

    def iter_nodes(self):
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def depth(self):
        """Number of levels in the subtree (a single leaf has depth 1)."""
        if self.is_leaf:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def find_leaf_of(self, txn_type):
        """The leaf spec that contains ``txn_type`` or ``None``."""
        if self.is_leaf:
            return self if txn_type in self.transactions else None
        for child in self.children:
            leaf = child.find_leaf_of(txn_type)
            if leaf is not None:
                return leaf
        return None

    def describe(self, indent=0):
        """Readable multi-line description (used in reports and examples)."""
        pad = "  " * indent
        name = self.label or self.cc.upper()
        if self.is_leaf:
            txns = ", ".join(self.transactions) or "(empty)"
            suffix = " [per-instance]" if self.instance_key else ""
            lines = [f"{pad}{name}: {txns}{suffix}"]
        else:
            lines = [f"{pad}{name}"]
            for child in self.children:
                lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def signature(self):
        """Hashable structural signature (used to deduplicate candidates)."""
        if self.is_leaf:
            return (self.cc, tuple(sorted(self.transactions)), self.instance_key is not None)
        return (self.cc, tuple(child.signature() for child in self.children))


def leaf(cc, *transactions, params=None, instance_key=None, label=""):
    """Convenience constructor for a leaf spec."""
    return CCSpec(
        cc=cc,
        transactions=tuple(transactions),
        params=dict(params or {}),
        instance_key=instance_key,
        label=label,
    )


def node(cc, *children, params=None, label=""):
    """Convenience constructor for an internal spec."""
    return CCSpec(cc=cc, children=list(children), params=dict(params or {}), label=label)


class Configuration:
    """A validated CC-tree configuration for a known set of transaction types."""

    def __init__(self, root, name=""):
        self.root = root
        self.name = name or root.label or "configuration"
        self._validate()

    def _validate(self):
        seen = {}
        for spec in self.root.iter_nodes():
            if spec.is_leaf:
                for txn_type in spec.transactions:
                    if txn_type in seen:
                        raise ConfigurationError(
                            f"transaction type {txn_type!r} assigned to more than "
                            "one leaf group"
                        )
                    seen[txn_type] = spec
            elif spec.transactions:
                raise ConfigurationError(
                    "internal CC nodes must not list transactions directly"
                )
        if not seen:
            raise ConfigurationError("configuration assigns no transactions")
        self._leaf_by_type = seen

    @property
    def transaction_types(self):
        return set(self._leaf_by_type)

    def leaf_for(self, txn_type):
        try:
            return self._leaf_by_type[txn_type]
        except KeyError:
            raise ConfigurationError(
                f"no CC group assigned for transaction type {txn_type!r}"
            ) from None

    def depth(self):
        return self.root.depth()

    def clone(self, name=None):
        return Configuration(self.root.clone(), name=name or self.name)

    def describe(self):
        return f"[{self.name}]\n{self.root.describe()}"

    def signature(self):
        return self.root.signature()

    def __repr__(self):
        return f"<Configuration {self.name!r} depth={self.depth()}>"


def monolithic(cc, transaction_types, params=None, name=None):
    """A single-group configuration running one CC over every transaction."""
    root = leaf(cc, *transaction_types, params=params, label=f"monolithic-{cc}")
    return Configuration(root, name=name or f"monolithic-{cc}")
