"""The transaction object shared by the engine and every CC mechanism."""

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, NamedTuple, Optional


class TransactionStatus(Enum):
    """Lifecycle states of a transaction."""

    ACTIVE = "active"
    VALIDATING = "validating"
    COMMITTED = "committed"
    ABORTED = "aborted"


class ReadRecord(NamedTuple):
    """One read performed by a transaction: the key and the version observed.

    A named tuple (not a dataclass): one record is allocated per read, and
    tuple construction is measurably cheaper on that path.
    """

    key: Any
    version: Any
    at: float = 0.0


class ScanRecord(NamedTuple):
    """One range scan performed by a transaction.

    ``key_range`` is the *effective* predicate — a limited scan that stopped
    early is truncated to the last key it enumerated, because the
    transaction only depended on the key space up to that point.  The keys
    the scan actually observed are in ``txn.reads`` (one
    :class:`ReadRecord` per enumerated key); the isolation oracle derives
    phantom rw anti-dependencies from the difference.
    """

    key_range: Any
    at: float = 0.0


@dataclass(slots=True)
class Transaction:
    """Runtime state of one transaction instance.

    The transaction carries both generic state (read/write sets, direct
    dependency set, status) and per-CC scratch space (``cc_state``), so that
    CC mechanisms along the tree path can keep their metadata without being
    aware of each other — mirroring the paper's separation between the
    framework and individual CC protocols.
    """

    txn_id: int
    txn_type: str
    args: dict = field(default_factory=dict)
    client_id: int = -1
    status: TransactionStatus = TransactionStatus.ACTIVE
    read_only: bool = False

    # Routing through the CC tree.  ``path_nodes`` / ``cc_path`` / ``charges``
    # are resolved once in ``engine.begin()`` and pinned here, so in-flight
    # transactions are unaffected by online reconfigurations and the per
    # operation hot path never rebuilds them.
    leaf_node_id: str = ""
    group_tokens: dict = field(default_factory=dict)
    partition_value: Any = None
    path_nodes: Any = None
    cc_path: Any = None
    charges: Any = None

    # Data accesses.
    reads: list = field(default_factory=list)
    writes: dict = field(default_factory=dict)
    write_order: list = field(default_factory=list)
    # Range scans (ScanRecord per ctx.scan call); empty for point workloads.
    scans: list = field(default_factory=list)

    # Direct dependencies (txn ids this transaction must be ordered after)
    # and the reverse edges (txn ids ordered after this transaction), which
    # the engine maintains for fast transitive-ordering queries.
    dependencies: set = field(default_factory=set)
    dependents: set = field(default_factory=set)
    read_from: set = field(default_factory=set)
    # Invoked with (txn, other_txn_id) whenever a *new* dependency edge is
    # recorded; the engine uses it to maintain reverse edges and invalidate
    # its memoized reachability (``depends_transitively``).
    dep_listener: Any = None

    # CC-specific metadata.
    cc_state: dict = field(default_factory=dict)
    cc_timestamp: Optional[int] = None
    start_timestamp: Optional[int] = None
    commit_timestamp: Optional[int] = None
    batch_id: Optional[int] = None
    promises: frozenset = frozenset()

    # Durability / garbage collection.
    gc_epoch: int = 0
    global_gcp_epoch: int = 0
    # Guards GarbageCollector.finish_transaction against double finishes
    # (abort-during-commit cleanup paths).
    gc_finished: bool = False

    # Set by the engine at begin time: a one-shot event triggered when the
    # transaction commits or aborts (used for targeted dependency waits).
    finish_event: Any = None
    # Diagnostic: what the transaction is currently blocked on, as a
    # (reason, blocking transaction id) pair, or None when running.
    current_wait: Any = None
    # Transient flag set around version selection of a read-for-update.
    current_read_for_update: bool = False

    # Timing (virtual seconds) and outcome.
    begin_time: float = 0.0
    end_time: float = 0.0
    abort_reason: str = ""
    retries: int = 0
    result: Any = None

    @property
    def is_active(self):
        return self.status in (TransactionStatus.ACTIVE, TransactionStatus.VALIDATING)

    @property
    def committed(self):
        return self.status is TransactionStatus.COMMITTED

    @property
    def aborted(self):
        return self.status is TransactionStatus.ABORTED

    def state_for(self, node_id, factory=dict):
        """Per-CC-node scratch space (created on first access)."""
        state = self.cc_state.get(node_id)
        if state is None:
            state = self.cc_state[node_id] = factory()
        return state

    def add_dependency(self, other_txn_id, read_from=False):
        """Record that this transaction directly depends on ``other_txn_id``.

        Returns True when a new edge was recorded (and notifies
        ``dep_listener`` so reachability caches can be invalidated).
        """
        if other_txn_id == self.txn_id or other_txn_id == 0:
            return False
        added = other_txn_id not in self.dependencies
        if added:
            self.dependencies.add(other_txn_id)
            if self.dep_listener is not None:
                self.dep_listener(self, other_txn_id)
        if read_from:
            self.read_from.add(other_txn_id)
        return added

    def record_write(self, key, value):
        if key not in self.writes:
            self.write_order.append(key)
        self.writes[key] = value

    def group_token(self, node_id):
        """The child-subtree token of this transaction beneath ``node_id``."""
        return self.group_tokens.get(node_id)

    def __hash__(self):
        # txn_id is already a unique small int; avoid re-hashing it.
        return self.txn_id

    def __repr__(self):
        return (
            f"<Txn {self.txn_id} {self.txn_type} {self.status.value}"
            f" leaf={self.leaf_node_id}>"
        )
