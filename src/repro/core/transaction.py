"""The transaction object shared by the engine and every CC mechanism."""

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional


class TransactionStatus(Enum):
    """Lifecycle states of a transaction."""

    ACTIVE = "active"
    VALIDATING = "validating"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class ReadRecord:
    """One read performed by a transaction: the key and the version observed."""

    key: Any
    version: Any
    at: float = 0.0


@dataclass
class Transaction:
    """Runtime state of one transaction instance.

    The transaction carries both generic state (read/write sets, direct
    dependency set, status) and per-CC scratch space (``cc_state``), so that
    CC mechanisms along the tree path can keep their metadata without being
    aware of each other — mirroring the paper's separation between the
    framework and individual CC protocols.
    """

    txn_id: int
    txn_type: str
    args: dict = field(default_factory=dict)
    client_id: int = -1
    status: TransactionStatus = TransactionStatus.ACTIVE
    read_only: bool = False

    # Routing through the CC tree.
    leaf_node_id: str = ""
    group_tokens: dict = field(default_factory=dict)
    partition_value: Any = None

    # Data accesses.
    reads: list = field(default_factory=list)
    writes: dict = field(default_factory=dict)
    write_order: list = field(default_factory=list)

    # Direct dependencies (txn ids this transaction must be ordered after).
    dependencies: set = field(default_factory=set)
    read_from: set = field(default_factory=set)

    # CC-specific metadata.
    cc_state: dict = field(default_factory=dict)
    cc_timestamp: Optional[int] = None
    start_timestamp: Optional[int] = None
    commit_timestamp: Optional[int] = None
    batch_id: Optional[int] = None
    promises: frozenset = frozenset()

    # Durability / garbage collection.
    gc_epoch: int = 0
    global_gcp_epoch: int = 0

    # Set by the engine at begin time: a one-shot event triggered when the
    # transaction commits or aborts (used for targeted dependency waits).
    finish_event: Any = None
    # Diagnostic: what the transaction is currently blocked on, as a
    # (reason, blocking transaction id) pair, or None when running.
    current_wait: Any = None

    # Timing (virtual seconds).
    begin_time: float = 0.0
    end_time: float = 0.0
    abort_reason: str = ""
    retries: int = 0

    @property
    def is_active(self):
        return self.status in (TransactionStatus.ACTIVE, TransactionStatus.VALIDATING)

    @property
    def committed(self):
        return self.status is TransactionStatus.COMMITTED

    @property
    def aborted(self):
        return self.status is TransactionStatus.ABORTED

    def state_for(self, node_id, factory=dict):
        """Per-CC-node scratch space (created on first access)."""
        if node_id not in self.cc_state:
            self.cc_state[node_id] = factory()
        return self.cc_state[node_id]

    def add_dependency(self, other_txn_id, read_from=False):
        """Record that this transaction directly depends on ``other_txn_id``."""
        if other_txn_id == self.txn_id or other_txn_id == 0:
            return
        self.dependencies.add(other_txn_id)
        if read_from:
            self.read_from.add(other_txn_id)

    def record_read(self, key, version, at=0.0):
        self.reads.append(ReadRecord(key=key, version=version, at=at))

    def record_write(self, key, value):
        if key not in self.writes:
            self.write_order.append(key)
        self.writes[key] = value

    def group_token(self, node_id):
        """The child-subtree token of this transaction beneath ``node_id``."""
        return self.group_tokens.get(node_id)

    def __hash__(self):
        return hash(self.txn_id)

    def __repr__(self):
        return (
            f"<Txn {self.txn_id} {self.txn_type} {self.status.value}"
            f" leaf={self.leaf_node_id}>"
        )
