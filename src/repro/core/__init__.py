"""Core of the reproduction: transactions, CC-tree configuration, engine."""

from repro.core.config import CCSpec, Configuration, leaf, monolithic, node
from repro.core.context import TransactionContext
from repro.core.engine import EngineOptions, TebaldiEngine
from repro.core.stats import StatsCollector
from repro.core.transaction import Transaction, TransactionStatus
from repro.core.tree import TreeNode, build_tree

__all__ = [
    "CCSpec",
    "Configuration",
    "leaf",
    "node",
    "monolithic",
    "TransactionContext",
    "EngineOptions",
    "TebaldiEngine",
    "StatsCollector",
    "Transaction",
    "TransactionStatus",
    "TreeNode",
    "build_tree",
]
