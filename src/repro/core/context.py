"""The transaction context handed to stored procedures.

Stored procedures are generator functions ``def proc(ctx, **args)`` that use
``yield from ctx.read(...)`` / ``yield from ctx.write(...)`` for every data
access, so that the engine can block them (locks, pipeline steps) in virtual
time.  The context also offers small conveniences (read-modify-write,
existence checks) used by the TPC-C and SEATS implementations.
"""

from repro.storage.ranges import bounded_range, prefix_range
from repro.storage.tables import composite_key


class TransactionContext:
    """Data-access API available inside a stored procedure."""

    __slots__ = ("_engine", "_txn")

    def __init__(self, engine, txn):
        self._engine = engine
        self._txn = txn

    @property
    def txn(self):
        return self._txn

    @property
    def txn_id(self):
        return self._txn.txn_id

    @property
    def now(self):
        return self._engine.env.now

    def key(self, table, *parts):
        return composite_key(table, *parts)

    # -- data accesses ------------------------------------------------------

    def read(self, table, *parts, for_update=False):
        """Read a row; returns the row dict or ``None`` if it does not exist.

        ``for_update=True`` declares that the row will be written later in
        the transaction, letting lock-based CCs take the exclusive lock up
        front instead of upgrading (which would invite deadlocks).

        Returns the engine coroutine directly (callers ``yield from`` it), so
        the per-read hot path carries no extra generator frame.
        """
        return self._engine.perform_read(
            self._txn, composite_key(table, *parts), for_update=for_update
        )

    def write(self, table, *parts, row):
        """Write (insert or replace) a row.

        Returns the engine coroutine directly (callers ``yield from`` it), so
        the per-write hot path carries no extra generator frame; the
        coroutine's value is the installed version.
        """
        return self._engine.perform_write(
            self._txn, composite_key(table, *parts), dict(row)
        )

    def scan(self, table, *, lo=None, hi=None, prefix=None, limit=None,
             for_update=False):
        """Ordered range scan; returns ``[(pk, row), ...]`` in key order.

        The predicate is either an inclusive ``[lo, hi]`` primary-key range
        or a ``prefix`` tuple over a composite key (all keys starting with
        the prefix).  Missing/deleted rows are skipped; ``limit`` bounds the
        rows returned.  The scan is a first-class access: CC mechanisms see
        the predicate (range locks, snapshot range read sets) and every
        enumerated key goes through the normal per-key read path, so the
        isolation oracle can hold scans to the same standard as point reads.

        Returns the engine coroutine directly (callers ``yield from`` it).
        """
        if prefix is not None:
            if lo is not None or hi is not None:
                raise ValueError("scan() takes either prefix or lo/hi, not both")
            key_range = prefix_range(table, *prefix)
        else:
            key_range = bounded_range(table, lo, hi)
        return self._engine.perform_scan(
            self._txn, key_range, limit=limit, for_update=for_update
        )

    def update(self, table, *parts, updates):
        """Read-modify-write convenience: merge ``updates`` into the row."""
        key = composite_key(table, *parts)
        current = yield from self._engine.perform_read(self._txn, key, for_update=True)
        # perform_read returns a fresh per-read copy, so it is ours to mutate.
        row = current if current is not None else {}
        for column, value in updates.items():
            if callable(value):
                row[column] = value(row.get(column))
            else:
                row[column] = value
        yield from self._engine.perform_write(self._txn, key, row)
        return row

    def delete(self, table, *parts):
        """Delete a row (writes a ``None`` tombstone)."""
        return self._engine.perform_write(
            self._txn, composite_key(table, *parts), None
        )

    def exists(self, table, *parts):
        value = yield from self.read(table, *parts)
        return value is not None

    # -- misc ----------------------------------------------------------------

    def abort(self, reason="user-abort"):
        """Explicitly abort the transaction from application logic."""
        self._engine.user_abort(self._txn, reason)

    def think(self, duration):
        """Spend ``duration`` virtual seconds of application compute time."""
        if duration > 0:
            yield self._engine.env.timeout(duration)
