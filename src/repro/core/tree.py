"""Runtime CC tree: compiled form of a :class:`~repro.core.config.Configuration`.

Each :class:`TreeNode` owns one CC mechanism instance (or a
:class:`PartitionedCC` family for partition-by-instance leaves) and knows the
transaction types of its subtree, which is how membership and child-group
tokens are resolved.
"""

from repro.cc.base import create_cc
from repro.errors import ConfigurationError


class TreeNode:
    """One runtime node of the compiled CC tree."""

    def __init__(self, spec, node_id, parent=None):
        self.spec = spec
        self.node_id = node_id
        self.parent = parent
        self.children = []
        self.cc = None
        self.subtree_types = frozenset(spec.all_transactions())

    @property
    def is_leaf(self):
        return not self.children

    @property
    def is_root(self):
        return self.parent is None

    def is_member(self, txn):
        """Whether ``txn`` is assigned to this subtree."""
        return txn.txn_type in self.subtree_types

    def path_from_root(self):
        path = []
        node = self
        while node is not None:
            path.append(node)
            node = node.parent
        path.reverse()
        return path

    def iter_subtree(self):
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def describe(self):
        label = self.spec.label or self.spec.cc.upper()
        return f"{label}@{self.node_id}"

    def __repr__(self):
        return f"<TreeNode {self.describe()} leaf={self.is_leaf}>"


class PartitionedCC:
    """Partition-by-instance wrapper: one CC instance per partition value.

    The wrapper exposes the full CC interface and routes every call to the
    per-partition instance selected by ``txn.partition_value`` (computed at
    begin time from the leaf spec's ``instance_key``).  Each instance keeps
    its own metadata (lock tables, timestamp ordering, batches), which is the
    whole point of the optimization (Section 5.4.2, Table 5.1).
    """

    def __init__(self, engine, node, factory):
        self.engine = engine
        self.node = node
        self._factory = factory
        self._instances = {}
        self._sample = None

    @property
    def name(self):
        return f"partitioned-{self.node.spec.cc}"

    def instance_for(self, txn):
        value = txn.partition_value
        if value not in self._instances:
            self._instances[value] = self._factory()
        return self._instances[value]

    def instances(self):
        return list(self._instances.values())

    # The four-phase interface simply dispatches on the partition value.

    def start(self, txn):
        return self.instance_for(txn).start(txn)

    def before_read(self, txn, key):
        return self.instance_for(txn).before_read(txn, key)

    def before_update_read(self, txn, key):
        return self.instance_for(txn).before_update_read(txn, key)

    def before_write(self, txn, key, value):
        return self.instance_for(txn).before_write(txn, key, value)

    def select_version(self, txn, key):
        return self.instance_for(txn).select_version(txn, key)

    def amend_read(self, txn, key, candidate):
        return self.instance_for(txn).amend_read(txn, key, candidate)

    def after_write(self, txn, key, version):
        return self.instance_for(txn).after_write(txn, key, version)

    def validate(self, txn):
        return self.instance_for(txn).validate(txn)

    def pre_commit(self, txn):
        return self.instance_for(txn).pre_commit(txn)

    def finish(self, txn, committed):
        return self.instance_for(txn).finish(txn, committed)

    def can_garbage_collect(self, epoch):
        return all(cc.can_garbage_collect(epoch) for cc in self._instances.values())

    def describe(self):
        return f"{self.name}@{self.node.node_id} ({len(self._instances)} instances)"

    def _sample_instance(self):
        """A representative instance used only for static attributes."""
        if self._instances:
            return next(iter(self._instances.values()))
        if self._sample is None:
            self._sample = self._factory()
        return self._sample

    @property
    def extra_operation_rtts(self):
        return getattr(self._sample_instance(), "extra_operation_rtts", 0)

    @property
    def extra_start_rtts(self):
        return getattr(self._sample_instance(), "extra_start_rtts", 0)


def build_tree(engine, configuration):
    """Compile a configuration into runtime nodes with CC instances."""
    nodes = []

    def _build(spec, node_id, parent):
        node = TreeNode(spec, node_id, parent)
        nodes.append(node)
        for index, child_spec in enumerate(spec.children):
            child = _build(child_spec, f"{node_id}.{index}", node)
            node.children.append(child)
        return node

    root = _build(configuration.root, "0", None)
    for node in nodes:
        if node.spec.instance_key is not None:
            if not node.is_leaf:
                raise ConfigurationError(
                    "partition-by-instance is only supported on leaf groups"
                )
            node.cc = PartitionedCC(
                engine,
                node,
                factory=lambda n=node: create_cc(
                    n.spec.cc, engine, n, params=n.spec.params
                ),
            )
        else:
            node.cc = create_cc(node.spec.cc, engine, node, params=node.spec.params)
    leaf_by_type = {}
    for node in nodes:
        if node.is_leaf:
            for txn_type in node.spec.transactions:
                leaf_by_type[txn_type] = node
    return root, nodes, leaf_by_type
