"""Runtime CC tree: compiled form of a :class:`~repro.core.config.Configuration`.

Each :class:`TreeNode` owns one CC mechanism instance (or a
:class:`PartitionedCC` family for partition-by-instance leaves) and knows the
transaction types of its subtree, which is how membership and child-group
tokens are resolved.
"""

from repro.cc.base import CC_REGISTRY, ConcurrencyControl, create_cc
from repro.errors import ConfigurationError


def _overrides(cc, hook_name):
    """Whether ``cc`` implements ``hook_name`` beyond the no-op base default.

    Non-subclass mechanisms (e.g. :class:`PartitionedCC`) define every hook
    themselves and therefore always count as overriding.
    """
    return getattr(type(cc), hook_name, None) is not getattr(
        ConcurrencyControl, hook_name
    )


class TreeNode:
    """One runtime node of the compiled CC tree."""

    def __init__(self, spec, node_id, parent=None):
        self.spec = spec
        self.node_id = node_id
        self.parent = parent
        self.children = []
        self.cc = None
        self.subtree_types = frozenset(spec.all_transactions())

    @property
    def is_leaf(self):
        return not self.children

    @property
    def is_root(self):
        return self.parent is None

    def is_member(self, txn):
        """Whether ``txn`` is assigned to this subtree."""
        return txn.txn_type in self.subtree_types

    def path_from_root(self):
        path = []
        node = self
        while node is not None:
            path.append(node)
            node = node.parent
        path.reverse()
        return path

    def iter_subtree(self):
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def describe(self):
        label = self.spec.label or self.spec.cc.upper()
        return f"{label}@{self.node_id}"

    def __repr__(self):
        return f"<TreeNode {self.describe()} leaf={self.is_leaf}>"


class PartitionedCC:
    """Partition-by-instance wrapper: one CC instance per partition value.

    The wrapper exposes the full CC interface and routes every call to the
    per-partition instance selected by ``txn.partition_value`` (computed at
    begin time from the leaf spec's ``instance_key``).  Each instance keeps
    its own metadata (lock tables, timestamp ordering, batches), which is the
    whole point of the optimization (Section 5.4.2, Table 5.1).
    """

    def __init__(self, engine, node, factory):
        self.engine = engine
        self.node = node
        self._factory = factory
        self._instances = {}
        self._sample = None

    @property
    def name(self):
        return f"partitioned-{self.node.spec.cc}"

    def instance_for(self, txn):
        value = txn.partition_value
        if value not in self._instances:
            self._instances[value] = self._factory()
        return self._instances[value]

    def instances(self):
        return list(self._instances.values())

    # The four-phase interface simply dispatches on the partition value.

    # Mechanisms that gate admission do not support partitioning (checked at
    # build time), so the base no-op is shared — and, being identical to the
    # base hook, keeps partitioned leaves out of the admission hook table.
    admit = ConcurrencyControl.admit

    def start(self, txn):
        return self.instance_for(txn).start(txn)

    def before_read(self, txn, key):
        return self.instance_for(txn).before_read(txn, key)

    def before_update_read(self, txn, key):
        return self.instance_for(txn).before_update_read(txn, key)

    def before_write(self, txn, key, value):
        return self.instance_for(txn).before_write(txn, key, value)

    def before_scan(self, txn, key_range):
        return self.instance_for(txn).before_scan(txn, key_range)

    def select_version(self, txn, key):
        return self.instance_for(txn).select_version(txn, key)

    def amend_read(self, txn, key, candidate):
        return self.instance_for(txn).amend_read(txn, key, candidate)

    def after_write(self, txn, key, version):
        return self.instance_for(txn).after_write(txn, key, version)

    def validate(self, txn):
        return self.instance_for(txn).validate(txn)

    def pre_commit(self, txn):
        return self.instance_for(txn).pre_commit(txn)

    def finish(self, txn, committed):
        return self.instance_for(txn).finish(txn, committed)

    def can_garbage_collect(self, epoch):
        return all(cc.can_garbage_collect(epoch) for cc in self._instances.values())

    def describe(self):
        return f"{self.name}@{self.node.node_id} ({len(self._instances)} instances)"

    def _sample_instance(self):
        """A representative instance used only for static attributes."""
        if self._instances:
            return next(iter(self._instances.values()))
        if self._sample is None:
            self._sample = self._factory()
        return self._sample

    @property
    def extra_operation_rtts(self):
        return getattr(self._sample_instance(), "extra_operation_rtts", 0)

    @property
    def extra_start_rtts(self):
        return getattr(self._sample_instance(), "extra_start_rtts", 0)


class Route:
    """Precomputed per-transaction-type runtime path and cost constants.

    Resolved once at tree-build (or subtree-splice) time so the per-operation
    hot path does not rebuild the CC list or re-sum per-layer cost attributes
    (``extra_operation_rtts`` / ``extra_start_rtts``) on every read, write and
    phase.  ``op_delay``/``phase_delay``/``start_delay`` are the cheap-path
    virtual-time charges (CPU cost plus network round-trips at the cluster's
    fixed RTT); the ``model_cpu`` path uses the cost/RTT components directly.
    """

    __slots__ = (
        "nodes",
        "ccs",
        "op_cost",
        "op_rtts",
        "phase_cost",
        "start_rtts",
        "op_delay",
        "phase_delay",
        "start_delay",
        "admission_hooks",
        "read_hooks",
        "update_read_hooks",
        "write_hooks",
        "scan_hooks",
        "select_version",
        "amend_hooks",
        "after_write_hooks",
        "start_hooks",
        "validate_hooks",
        "pre_commit_hooks",
        "finish_hooks",
        "static_group_tokens",
        "partitioned",
        "procedure",
        "read_only",
        "instance_key",
        "leaf_node_id",
    )

    def __init__(self, nodes, costs, rtt, txn_type_def=None):
        self.nodes = nodes
        ccs = self.ccs = [node.cc for node in nodes]
        layers = len(nodes)
        self.op_cost = costs.operation_cost(layers)
        self.op_rtts = 1 + sum(getattr(cc, "extra_operation_rtts", 0) for cc in ccs)
        self.phase_cost = costs.phase_cost(layers)
        self.start_rtts = sum(getattr(cc, "extra_start_rtts", 0) for cc in ccs)
        self.op_delay = self.op_cost + self.op_rtts * rtt
        self.phase_delay = self.phase_cost + rtt
        self.start_delay = self.phase_cost + (1 + self.start_rtts) * rtt
        # Specialised hook tables: only CCs that actually implement a hook
        # appear (as pre-bound methods), so the per-operation loops never
        # dispatch into the base-class no-ops.  Hook order is preserved:
        # top-down for the constraining hooks, bottom-up for the rest.
        down = ccs
        up = list(reversed(ccs))
        # Batched-admission gates run in execute_transaction before begin();
        # almost every tree has none, so the engine skips an empty tuple.
        self.admission_hooks = tuple(
            cc.admit for cc in down if _overrides(cc, "admit")
        )
        self.read_hooks = tuple(
            cc.before_read for cc in down if _overrides(cc, "before_read")
        )
        # ``before_update_read`` falls back to ``before_read`` in the base
        # class, so overriding either one makes the hook observable.
        self.update_read_hooks = tuple(
            cc.before_update_read
            for cc in down
            if _overrides(cc, "before_update_read") or _overrides(cc, "before_read")
        )
        self.write_hooks = tuple(
            cc.before_write for cc in down if _overrides(cc, "before_write")
        )
        self.scan_hooks = tuple(
            cc.before_scan for cc in down if _overrides(cc, "before_scan")
        )
        self.select_version = ccs[-1].select_version
        self.amend_hooks = tuple(
            cc.amend_read for cc in up[1:] if _overrides(cc, "amend_read")
        )
        self.after_write_hooks = tuple(
            cc.after_write for cc in up if _overrides(cc, "after_write")
        )
        self.start_hooks = tuple(cc.start for cc in down if _overrides(cc, "start"))
        # The base validate() is a real implementation (consistent-ordering
        # wait), so every CC stays in the validation pass.
        self.validate_hooks = tuple(cc.validate for cc in up)
        self.pre_commit_hooks = tuple(
            cc.pre_commit for cc in up if _overrides(cc, "pre_commit")
        )
        self.finish_hooks = tuple(cc.finish for cc in up if _overrides(cc, "finish"))
        # Without partition-by-instance anywhere on the path, every
        # transaction of this type shares one immutable token map; the
        # engine then skips rebuilding it per begin().
        self.partitioned = any(node.spec.instance_key is not None for node in nodes)
        if self.partitioned:
            self.static_group_tokens = None
        else:
            tokens = {}
            for parent, child in zip(nodes, nodes[1:]):
                tokens[parent.node_id] = child.node_id
            tokens[nodes[-1].node_id] = (nodes[-1].node_id, None)
            self.static_group_tokens = tokens
        # Per-type lookups resolved once so begin()/_run() skip the dicts.
        leaf = nodes[-1]
        self.instance_key = leaf.spec.instance_key
        self.leaf_node_id = leaf.node_id
        if txn_type_def is not None:
            self.procedure = txn_type_def.procedure
            self.read_only = txn_type_def.read_only
        else:
            self.procedure = None
            self.read_only = False


def build_routes(leaf_by_type, cluster, transaction_types=None):
    """Compile the per-type :class:`Route` table for a runtime tree."""
    costs = cluster.costs
    # The base rtt, not a round_trip() sample: routes precompute per-phase
    # delay constants, and a jitter draw taken here would be frozen into
    # every transaction of the type instead of varying per message.
    rtt = cluster.network.rtt
    transaction_types = transaction_types or {}
    return {
        txn_type: Route(
            leaf.path_from_root(), costs, rtt, transaction_types.get(txn_type)
        )
        for txn_type, leaf in leaf_by_type.items()
    }


def build_tree(engine, configuration):
    """Compile a configuration into runtime nodes with CC instances."""
    nodes = []

    def _build(spec, node_id, parent):
        node = TreeNode(spec, node_id, parent)
        nodes.append(node)
        for index, child_spec in enumerate(spec.children):
            child = _build(child_spec, f"{node_id}.{index}", node)
            node.children.append(child)
        return node

    root = _build(configuration.root, "0", None)
    for node in nodes:
        if node.spec.instance_key is not None:
            if not node.is_leaf:
                raise ConfigurationError(
                    "partition-by-instance is only supported on leaf groups"
                )
            cls = CC_REGISTRY.get(node.spec.cc)
            if cls is not None and not cls.supports_partitioning:
                raise ConfigurationError(
                    f"{node.spec.cc!r} does not support partition-by-instance "
                    "(the mechanism sequences one total order per group)"
                )
            node.cc = PartitionedCC(
                engine,
                node,
                factory=lambda n=node: create_cc(
                    n.spec.cc, engine, n, params=n.spec.params
                ),
            )
        else:
            node.cc = create_cc(node.spec.cc, engine, node, params=node.spec.params)
    leaf_by_type = {}
    for node in nodes:
        if node.is_leaf:
            for txn_type in node.spec.transactions:
                leaf_by_type[txn_type] = node
    return root, nodes, leaf_by_type
