"""Runtime statistics collected by the engine and reported by the harness."""

from collections import Counter, defaultdict
from dataclasses import dataclass, field


@dataclass
class TypeStats:
    """Per-transaction-type counters."""

    commits: int = 0
    aborts: int = 0
    total_latency: float = 0.0
    max_latency: float = 0.0

    @property
    def mean_latency(self):
        return self.total_latency / self.commits if self.commits else 0.0


class StatsCollector:
    """Counts commits/aborts and latencies, with warm-up reset support."""

    def __init__(self, env, bucket_width=0.5):
        self.env = env
        self.bucket_width = bucket_width
        self.reset(at=env.now)

    def reset(self, at=None):
        """Forget everything measured so far (used after warm-up)."""
        self.started_at = self.env.now if at is None else at
        self.commits = 0
        self.aborts = 0
        self.retries = 0
        self.abort_reasons = Counter()
        self.by_type = defaultdict(TypeStats)
        self.commit_buckets = Counter()
        self.abort_edges = Counter()

    # -- recording ---------------------------------------------------------

    def record_commit(self, txn):
        latency = self.env.now - txn.begin_time
        self.commits += 1
        stats = self.by_type[txn.txn_type]
        stats.commits += 1
        stats.total_latency += latency
        stats.max_latency = max(stats.max_latency, latency)
        bucket = int((self.env.now - self.started_at) / self.bucket_width)
        self.commit_buckets[bucket] += 1

    def record_abort(self, txn, reason, conflicting_type=None):
        self.aborts += 1
        self.abort_reasons[reason] += 1
        self.by_type[txn.txn_type].aborts += 1
        if conflicting_type:
            edge = tuple(sorted((txn.txn_type, conflicting_type)))
            self.abort_edges[edge] += 1

    def record_retry(self, txn):
        self.retries += 1

    # -- reporting ----------------------------------------------------------

    @property
    def elapsed(self):
        return max(self.env.now - self.started_at, 1e-9)

    def throughput(self):
        """Committed transactions per virtual second since the last reset."""
        return self.commits / self.elapsed

    def abort_rate(self):
        attempts = self.commits + self.aborts
        return self.aborts / attempts if attempts else 0.0

    def mean_latency(self, txn_type=None):
        if txn_type is not None:
            return self.by_type[txn_type].mean_latency
        total = sum(s.total_latency for s in self.by_type.values())
        commits = sum(s.commits for s in self.by_type.values())
        return total / commits if commits else 0.0

    def throughput_series(self):
        """Commits per bucket, as a list of (bucket_start_time, txn/sec)."""
        if not self.commit_buckets:
            return []
        series = []
        for bucket in range(max(self.commit_buckets) + 1):
            start = self.started_at + bucket * self.bucket_width
            rate = self.commit_buckets.get(bucket, 0) / self.bucket_width
            series.append((start, rate))
        return series

    def summary(self):
        """Plain-dict summary used by the harness and the benchmarks."""
        return {
            "elapsed": self.elapsed,
            "commits": self.commits,
            "aborts": self.aborts,
            "retries": self.retries,
            "throughput": self.throughput(),
            "abort_rate": self.abort_rate(),
            "mean_latency": self.mean_latency(),
            "abort_reasons": dict(self.abort_reasons),
            "per_type": {
                name: {
                    "commits": stats.commits,
                    "aborts": stats.aborts,
                    "mean_latency": stats.mean_latency,
                }
                for name, stats in sorted(self.by_type.items())
            },
        }
