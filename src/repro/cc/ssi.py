"""Serializable snapshot isolation (Section 4.4.3).

Transactions read from a snapshot defined by their start timestamp and become
visible at their commit timestamp; write-write conflicts abort the later
updater; serializability is protected by aborting *pivots* — transactions (or
batches) with both an incoming and an outgoing read-write anti-dependency.

As an internal node of the CC tree SSI must respect consistent ordering: it
*procrastinates* by batching, i.e. every transaction of the same child group
admitted into the same batch shares one start timestamp, so their relative
order stays with the child CC.  When the node has at most one update child
group (the common "read-only group at the root" configuration, Figure 5.2)
batching and pivot tracking are unnecessary and are switched off, which is
the optimisation described at the end of Section 4.4.3.
"""

from collections import deque

from repro.cc.base import ConcurrencyControl, register_cc
from repro.cc.timestamps import BatchManager
from repro.errors import TransactionAborted


@register_cc
class SerializableSnapshotIsolation(ConcurrencyControl):
    """Distributed SSI with batching for consistent ordering."""

    name = "ssi"
    handles_contention = True
    efficient_internal = True
    read_optimized = True
    extra_start_rtts = 1  # centralized timestamp server

    def __init__(self, engine, node, batching=None, batch_size=16, abort_backoff=0.005):
        super().__init__(engine, node)
        self.batch_size = batch_size
        self.abort_backoff = abort_backoff
        self.batches = BatchManager(engine.oracle, batch_size=batch_size)
        self._readers = {}
        # table -> {txn_id: (txn, [KeyRange, ...])}: the range read sets of
        # active scanners.  A write into a concurrent scanner's range is an
        # rw anti-dependency even when the key did not exist at scan time —
        # the phantom edge item-level reader tracking cannot see.
        self._range_readers = {}
        # key -> {txn_id: txn}: writes *announced* via before_write whose
        # versions are not necessarily installed yet (a child CC may block
        # the writer on a lock between the hook and the install).  Readers
        # and scanners must see these intents — the SSI analogue of reads
        # checking the write-lock table — or an rw edge formed in the
        # announce-to-install window is silently missed.
        self._write_intents = {}
        self._in_antidep = set()
        self._out_antidep = set()
        self._doomed = set()
        self._commit_ts = {}
        self._active_members = set()
        # SIREAD-style retention (Ports & Grittner): a *committed* reader
        # keeps constraining concurrent writers — its rw anti-dependency
        # into a later write is exactly the edge that closes write-skew
        # cycles after the reader has gone.  Entries are kept keyed by the
        # reader's commit timestamp and drained once no active member's
        # snapshot predates them.
        self._member_starts = {}
        self._committed_readers = deque()
        if batching is None:
            batching = self._needs_batching()
        self.batching = batching
        # Read-only optimisation (end of Section 4.4.3): with at most one
        # update child group, update transactions never observe read-only
        # writes, so they keep their child CC's reads untouched and SSI only
        # provides consistent snapshots to the read-only group.
        self.read_only_optimization = (not node.is_leaf) and not batching

    def _needs_batching(self):
        """Batching is needed only with two or more update child groups."""
        if self.node.is_leaf:
            return False
        update_children = 0
        for child in self.node.children:
            child_types = child.subtree_types
            if any(not self.engine.is_read_only_type(t) for t in child_types):
                update_children += 1
        return update_children > 1

    # -- helpers ---------------------------------------------------------------

    def _entity(self, txn):
        """The unit of pivot tracking: the batch when batching, else the txn."""
        state = self.state(txn)
        if self.batching and state.get("batch_id") is not None:
            return ("batch", state["batch_id"])
        return ("txn", txn.txn_id)

    def _start_ts(self, txn):
        return self.state(txn).get("start_ts", 0)

    def _delegated(self, txn, other):
        """Whether a conflict between ``txn`` and ``other`` is the child's job."""
        if other is None or other.txn_id == txn.txn_id:
            return True
        if not self.same_child_group(txn, other):
            return False
        if not self.batching:
            return True
        return self.state(txn).get("batch_id") == self.state(other).get("batch_id")

    def _writer_commit_ts(self, version):
        if version.timestamp is not None:
            return version.timestamp
        return self._commit_ts.get(version.writer, 0)

    def _mark_antidependency(self, reader, writer):
        """Record the rw edge reader --> writer and doom detected pivots.

        When the rw edge turns ``writer`` into a pivot (both an incoming and
        an outgoing anti-dependency) *after* it already committed, the pivot
        itself can no longer be aborted — the only way to break the dangerous
        structure is to abort the reader that just discovered it (the
        committed-pivot rule of Ports & Grittner's SSI; this is how the
        read-only anomaly is stopped once the pivot has won the race).  The
        mirror case — a *committed reader* becoming a pivot through a
        retained SIREAD entry — aborts the writer that discovered it.
        """
        reader_entity = self._entity(reader)
        writer_entity = self._entity(writer) if writer is not None else None
        self._out_antidep.add(reader_entity)
        if writer_entity is not None:
            self._in_antidep.add(writer_entity)
            if writer_entity in self._out_antidep:
                self._doomed.add(writer_entity)
                if writer.committed:
                    self._abort(reader, "ssi-committed-pivot", writer)
        if reader_entity in self._in_antidep:
            self._doomed.add(reader_entity)
            if reader.committed and writer is not None and writer.is_active:
                self._abort(writer, "ssi-committed-pivot", reader)

    def _abort(self, txn, reason, other=None):
        if self.engine.profiler is not None:
            self.engine.profiler.record_abort(txn, reason, other)
        raise TransactionAborted(txn.txn_id, reason)

    # -- start phase ---------------------------------------------------------------

    def start(self, txn):
        state = self.state(txn)
        state["read_keys"] = set()
        self._active_members.add(txn.txn_id)
        member_starts = self._member_starts
        if self.batching and not txn.read_only:
            token = txn.group_token(self.node.node_id) or txn.txn_id
            batch_id, start_ts = self.batches.admit(token)
            self.batches.register(batch_id, txn.txn_id)
            state["batch_id"] = batch_id
            state["start_ts"] = start_ts
        else:
            state["batch_id"] = None
            state["start_ts"] = self.engine.oracle.next()
        member_starts[txn.txn_id] = state["start_ts"]
        if txn.start_timestamp is None:
            txn.start_timestamp = state["start_ts"]

    # -- execution phase ---------------------------------------------------------------

    def before_scan(self, txn, key_range):
        """Register the scan's predicate as part of the snapshot read set.

        The per-key snapshot reads of the enumerated keys are handled by the
        ordinary read path; the predicate registration covers the keys that
        do *not* exist yet, so a concurrent insert into the range marks the
        phantom rw anti-dependency (and dooms pivots) exactly like a missed
        item-level write.
        """
        if self.read_only_optimization and not txn.read_only:
            # Update-group scans are fully regulated by the child CC, and
            # read-only snapshots cannot observe phantoms (their whole scan
            # is evaluated against one consistent snapshot).
            return
        per_table = self._range_readers.get(key_range.table)
        if per_table is None:
            per_table = self._range_readers[key_range.table] = {}
        entry = per_table.get(txn.txn_id)
        if entry is None:
            per_table[txn.txn_id] = (txn, [key_range])
        else:
            entry[1].append(key_range)
        state = self.state(txn)
        tables = state.get("scan_tables")
        if tables is None:
            tables = state["scan_tables"] = set()
        tables.add(key_range.table)
        # Announced-but-uninstalled writes inside the range are phantoms
        # this scan's snapshot will miss.
        for key, intents in list(self._write_intents.items()):
            table = key[0] if isinstance(key, tuple) and len(key) == 2 else key
            if table != key_range.table:
                continue
            pk = key[1] if isinstance(key, tuple) and len(key) == 2 else key
            if not key_range.contains_pk(pk):
                continue
            for writer_id, writer in list(intents.items()):
                if writer_id == txn.txn_id or not writer.is_active:
                    continue
                if not self._delegated(txn, writer):
                    self._mark_antidependency(txn, writer)

    def before_write(self, txn, key, value):
        if self.read_only_optimization and not txn.read_only:
            # Update-group writes are fully regulated by the child CC.
            return
        state = self.state(txn)
        intents = self._write_intents.get(key)
        if intents is None:
            intents = self._write_intents[key] = {}
        intents[txn.txn_id] = txn
        write_keys = state.get("write_keys")
        if write_keys is None:
            write_keys = state["write_keys"] = set()
        write_keys.add(key)
        start_ts = self._start_ts(txn)
        latest = self.engine.store.latest_committed(key)
        if latest is not None and self._writer_commit_ts(latest) > start_ts:
            writer = self.engine.find_transaction(latest.writer)
            if not self._delegated(txn, writer):
                self._abort(txn, "ssi-ww-conflict", writer)
        for pending in self.engine.store.uncommitted_versions(key):
            if pending.writer == txn.txn_id:
                continue
            writer = self.engine.find_transaction(pending.writer)
            if writer is not None and not writer.is_active:
                continue
            if not self._delegated(txn, writer):
                self._abort(txn, "ssi-ww-conflict", writer)
        # Readers that already missed this write form rw anti-dependencies.
        # Committed readers stay relevant while concurrent (their commit
        # falls after this transaction's snapshot) — the SIREAD retention.
        readers = self._readers.get(key)
        if readers:
            for reader_id, (reader, reader_ts) in list(readers.items()):
                if reader_id == txn.txn_id or not self._concurrent_reader(
                    reader, start_ts
                ):
                    continue
                if self._delegated(txn, reader):
                    continue
                self._mark_antidependency(reader, txn)
        # Scanners whose predicate covers this key missed it too (phantom):
        # this write commits after their snapshot, so the rw edge holds even
        # when the key did not exist when they scanned.
        table = key[0] if isinstance(key, tuple) and len(key) == 2 else key
        range_readers = self._range_readers.get(table)
        if range_readers:
            pk = key[1] if isinstance(key, tuple) and len(key) == 2 else key
            for reader_id, (reader, ranges) in list(range_readers.items()):
                if reader_id == txn.txn_id or not self._concurrent_reader(
                    reader, start_ts
                ):
                    continue
                if self._delegated(txn, reader):
                    continue
                if any(key_range.contains_pk(pk) for key_range in ranges):
                    self._mark_antidependency(reader, txn)
        if self._entity(txn) in self._doomed:
            self._abort(txn, "ssi-pivot")

    def _concurrent_reader(self, reader, writer_start_ts):
        """Whether ``reader``'s read set still constrains a writer's snapshot.

        Active readers always do; committed readers only while concurrent
        (their commit timestamp falls after the writer's snapshot — an
        earlier-committed reader is serialized safely before the writer).
        """
        if reader.is_active:
            return True
        if not reader.committed:
            return False
        return self._commit_ts.get(reader.txn_id, 0) > writer_start_ts

    def _snapshot_read(self, txn, key, candidate):
        """Shared read logic for select_version (leaf) and amend_read (internal)."""
        if self.read_only_optimization and not txn.read_only:
            # Update-group reads keep the child CC's choice (MV2PL behaviour).
            return candidate
        state = self.state(txn)
        start_ts = self._start_ts(txn)
        chosen = None
        if candidate is not None and not candidate.committed:
            writer = self.engine.find_transaction(candidate.writer)
            if candidate.writer == txn.txn_id or self._delegated(txn, writer):
                chosen = candidate
        if chosen is None:
            chosen = self.engine.store.latest_committed_before(key, start_ts, strict=False)
            if candidate is not None and candidate.committed:
                writer = self.engine.find_transaction(candidate.writer)
                visible = self._writer_commit_ts(candidate) <= start_ts or self._delegated(
                    txn, writer
                )
                # A committed write from the same batch / delegated scope is
                # visible even beyond the snapshot: its ordering relative to
                # this transaction belongs to the child CC, which proposed it.
                if visible and (
                    chosen is None
                    or (candidate.commit_seq or 0) >= (chosen.commit_seq or 0)
                ):
                    chosen = candidate
        readers = self._readers.get(key)
        if readers is None:
            readers = self._readers[key] = {}
        readers[txn.txn_id] = (txn, start_ts)
        # Anti-dependencies: newer writes this snapshot read is missing.
        latest = self.engine.store.latest_committed(key)
        if latest is not None and self._writer_commit_ts(latest) > start_ts:
            writer = self.engine.find_transaction(latest.writer)
            if writer is not None and not self._delegated(txn, writer):
                self._mark_antidependency(txn, writer)
        for pending in self.engine.store.uncommitted_versions(key):
            if pending.writer == txn.txn_id:
                continue
            writer = self.engine.find_transaction(pending.writer)
            if writer is None or not writer.is_active:
                continue
            if not self._delegated(txn, writer) and pending is not chosen:
                self._mark_antidependency(txn, writer)
        # Announced writes whose versions are not installed yet (writer
        # blocked inside a child CC between hook and install) — without
        # this, an rw edge formed in that window is invisible to both the
        # reader-side and the writer-side checks.
        intents = self._write_intents.get(key)
        if intents:
            for writer_id, writer in list(intents.items()):
                if writer_id == txn.txn_id or not writer.is_active:
                    continue
                if self._delegated(txn, writer):
                    continue
                if chosen is not None and chosen.writer == writer_id:
                    continue
                self._mark_antidependency(txn, writer)
        state["read_keys"].add(key)
        return chosen

    def select_version(self, txn, key):
        candidate = self.engine.store.own_uncommitted(key, txn.txn_id)
        return self._snapshot_read(txn, key, candidate)

    def amend_read(self, txn, key, candidate):
        return self._snapshot_read(txn, key, candidate)

    # -- validation & commit -------------------------------------------------------------

    def validate(self, txn):
        entity = self._entity(txn)
        if entity in self._doomed or (
            entity in self._in_antidep and entity in self._out_antidep
        ):
            if not txn.read_only:
                self._abort(txn, "ssi-pivot")
        deps = self.subtree_dependencies(txn)
        if deps:
            yield from self.engine.wait_for_transactions(txn, deps)

    def pre_commit(self, txn):
        commit_ts = self.engine.oracle.next()
        txn.commit_timestamp = commit_ts
        self._commit_ts[txn.txn_id] = commit_ts

    def finish(self, txn, committed):
        self._active_members.discard(txn.txn_id)
        self._member_starts.pop(txn.txn_id, None)
        state = self.state(txn)
        for key in state.get("write_keys", ()):  # prune write intents
            intents = self._write_intents.get(key)
            if intents is not None:
                intents.pop(txn.txn_id, None)
                if not intents:
                    self._write_intents.pop(key, None)
        if committed and (state.get("read_keys") or state.get("scan_tables")):
            # Retain the committed reader's (SIREAD) entries: they still
            # constrain writers whose snapshots predate this commit.
            self._committed_readers.append(
                (self._commit_ts.get(txn.txn_id, 0), txn)
            )
        else:
            self._prune_reader(txn, state)
        batch_id = state.get("batch_id")
        if batch_id is not None:
            self.batches.discard(batch_id, txn.txn_id)
        self._drain_committed_readers()

    def _prune_reader(self, txn, state):
        for key in state.get("read_keys", ()):  # prune reader tracking
            readers = self._readers.get(key)
            if readers is not None:
                readers.pop(txn.txn_id, None)
                if not readers:
                    self._readers.pop(key, None)
        for table in state.get("scan_tables", ()):  # prune range tracking
            range_readers = self._range_readers.get(table)
            if range_readers is not None:
                range_readers.pop(txn.txn_id, None)
                if not range_readers:
                    self._range_readers.pop(table, None)

    def _drain_committed_readers(self):
        """Drop retained committed readers no active snapshot can conflict with.

        Commit timestamps are monotone, so the retention deque is ordered
        and draining its prefix is amortized O(1) per finished transaction.
        """
        retained = self._committed_readers
        if not retained:
            return
        member_starts = self._member_starts
        oldest = min(member_starts.values()) if member_starts else None
        while retained:
            commit_ts, reader = retained[0]
            if oldest is not None and commit_ts > oldest:
                break
            retained.popleft()
            self._prune_reader(reader, self.state(reader))

    def can_garbage_collect(self, epoch):
        # Old snapshots may still need superseded versions while members run.
        return not self._active_members
