"""Two-phase locking (Section 4.4.1).

As a leaf, this is textbook strict 2PL: shared locks for reads, exclusive
locks for writes, all held until commit, deadlocks broken by timeouts.

As an internal (cross-group) node it becomes the nexus-lock mechanism of
Modular Concurrency Control: locks acquired by transactions of the same child
subtree never conflict (their conflicts are delegated to the child CC), and
consistent ordering is enforced by delaying a transaction's commit until its
in-subtree dependencies have committed (the nexus-lock release order).
"""

from repro.cc.base import ConcurrencyControl, register_cc
from repro.cc.locks import EXCLUSIVE, SHARED, LockTable, RangeLockManager


@register_cc
class TwoPhaseLocking(ConcurrencyControl):
    """Strict two-phase locking with group-aware (nexus) lock compatibility."""

    name = "2pl"
    handles_contention = False
    efficient_internal = True

    def __init__(self, engine, node, lock_timeout=None):
        super().__init__(engine, node)
        timeout = lock_timeout if lock_timeout is not None else engine.options.lock_timeout
        self.locks = LockTable(
            engine.env,
            same_group=self.same_child_group,
            timeout=timeout,
            profiler=engine.profiler,
            name=f"2pl@{node.node_id}",
            order_guard=engine.depends_transitively,
            deadlock_check=engine.abort_if_wait_deadlock,
        )
        # Predicate locks close the phantom window point locks cannot see:
        # a scan's range conflicts with inserts of keys that match it but do
        # not exist yet (and vice versa).  Held until finish, like the locks.
        self.ranges = RangeLockManager(same_group=self.same_child_group)

    # -- execution phase -------------------------------------------------------

    # Hooks return ``None`` when the lock is granted immediately and a
    # blocking coroutine otherwise (the engine only drives non-None results).

    def before_read(self, txn, key):
        return self.locks.request(txn, key, SHARED)

    def before_update_read(self, txn, key):
        return self.locks.request(txn, key, EXCLUSIVE)

    def before_write(self, txn, key, value):
        # The write intent is registered before any wait so a concurrent
        # scan registering its range afterwards is guaranteed to see it.
        self.ranges.register_intent(txn, key)
        wait = self.locks.request(txn, key, EXCLUSIVE)
        if wait is None and not self.ranges.conflicting_scanners(txn, key):
            return None
        return self._write_past_ranges(txn, key, wait)

    def _write_past_ranges(self, txn, key, wait):
        if wait is not None:
            yield from wait
        yield from self.engine.wait_for_progress(
            txn,
            blockers_fn=lambda: self.ranges.conflicting_scanners(txn, key),
            event_fn=lambda blocker: [blocker.finish_event],
            reason="range-lock",
        )

    def before_scan(self, txn, key_range):
        self.ranges.register_scan(txn, key_range)
        if not self.ranges.conflicting_writers(txn, key_range):
            return None
        return self.engine.wait_for_progress(
            txn,
            blockers_fn=lambda: self.ranges.conflicting_writers(txn, key_range),
            event_fn=lambda blocker: [blocker.finish_event],
            reason="range-lock",
        )

    def amend_read(self, txn, key, candidate):
        """Accept an uncommitted proposal from this subtree, else read committed.

        Because conflicting locks from other subtrees are held until commit,
        the latest committed version is always a safe choice here.
        """
        if candidate is not None and not candidate.committed:
            writer = self.engine.find_transaction(candidate.writer)
            if writer is not None and (
                writer.txn_id == txn.txn_id or self.is_member(writer)
            ):
                return candidate
        latest = self.engine.store.latest_committed(key)
        if candidate is not None and candidate.committed:
            # Keep the child's (possibly older snapshot) choice only if it is
            # newer than what we know to be committed; otherwise prefer ours.
            if latest is None or (candidate.commit_seq or 0) >= (latest.commit_seq or 0):
                return candidate
        return latest

    # -- validation / commit ------------------------------------------------------

    # validate() is inherited: wait for in-subtree dependencies to commit,
    # which is exactly the nexus-lock release order of the paper.

    def finish(self, txn, committed):
        self.locks.cancel_waits(txn)
        self.locks.release_all(txn)
        self.ranges.release(txn)

    def can_garbage_collect(self, epoch):
        return True
