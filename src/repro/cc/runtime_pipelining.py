"""Runtime pipelining (Section 4.4.2).

RP statically orders the tables touched by its group into pipeline *steps*
(strongly connected components of the table-access graph, topologically
sorted).  At runtime a transaction executes step by step; when it moves to a
new step it *step-commits* the previous one, releasing its step-level locks
and exposing its writes to the next transaction in the pipeline.  A
transaction that became dependent on another may only execute step ``i`` once
that transaction has finished or moved past step ``i`` — this is what turns a
queue of conflicting writers into a pipeline instead of a serial schedule.

As an internal node, transactions of the same child subtree are allowed to
share step-level locks and to execute the same step concurrently (delegation);
conflicts across child subtrees follow the pipeline rules above.
"""

from repro.analysis.rp_analysis import RPAnalysis, analyze_pipeline
from repro.cc.base import ConcurrencyControl, register_cc
from repro.cc.locks import EXCLUSIVE, SHARED, LockTable, RangeLockManager
from repro.errors import TransactionAborted
from repro.sim.resources import Condition


@register_cc
class RuntimePipelining(ConcurrencyControl):
    """Runtime pipelining over statically derived table steps."""

    name = "rp"
    handles_contention = True
    efficient_internal = True
    requires_profiles = True
    write_optimized = True
    extra_operation_rtts = 1  # per-operation coordination round-trip

    def __init__(
        self,
        engine,
        node,
        steps=None,
        lock_timeout=None,
        pipeline_steps=None,
        pipeline_efficiency=None,
    ):
        # ``pipeline_steps`` / ``pipeline_efficiency`` are the spec params
        # recorded by autoconf preprocessing (preprocess_runtime_pipelining);
        # the efficiency is informational only.
        super().__init__(engine, node)
        if steps is None:
            steps = pipeline_steps
        timeout = lock_timeout if lock_timeout is not None else engine.options.lock_timeout
        self.locks = LockTable(
            engine.env,
            same_group=self.same_child_group,
            timeout=timeout,
            profiler=engine.profiler,
            name=f"rp@{node.node_id}",
            order_guard=engine.depends_transitively,
            deadlock_check=engine.abort_if_wait_deadlock,
        )
        if steps is not None:
            step_sets = [frozenset(step) for step in steps]
            table_to_step = {
                table: index for index, tables in enumerate(step_sets) for table in tables
            }
            self.analysis = RPAnalysis(steps=step_sets, table_to_step=table_to_step)
        else:
            profiles = engine.profiles_for(sorted(node.subtree_types))
            self.analysis = analyze_pipeline(profiles)
        self.progress = Condition(engine.env, name=f"rp-progress@{node.node_id}")
        # Predicate locks for scans.  Unlike step locks these are held until
        # finish: a step-committed scan's predicate must keep excluding
        # phantom inserts, exactly like passed point accesses in ``_passed``.
        self.ranges = RangeLockManager(same_group=self.same_child_group)
        self._active = {}
        self._step_committed = {}
        # key -> {txn_id: (txn, mode)}: still-active transactions that have
        # step-committed (released) an access to the key.  Lock handoff order
        # defines the pipeline order, and it must survive the release: a
        # later conflicting access has to be ordered after these
        # transactions even though the lock table no longer sees them
        # (otherwise the rw anti-dependency of a passed *reader* is lost and
        # ordering cycles close undetected).
        self._passed = {}
        # Flattened copies of the analysis lookup for the per-operation path.
        self._table_to_step = dict(self.analysis.table_to_step)
        self._last_step = max(self.analysis.num_steps - 1, 0)

    # -- helpers ------------------------------------------------------------------

    def _step_of_key(self, key):
        table = key[0] if isinstance(key, tuple) else key
        step = self._table_to_step.get(table)
        if step is not None:
            return step
        return self._last_step

    def _current_step(self, txn):
        return self.state(txn).get("step", -1)

    # -- start phase -----------------------------------------------------------------

    def start(self, txn):
        state = self.state(txn)
        state["step"] = -1
        state["step_keys"] = {}
        self._active[txn.txn_id] = txn

    # -- execution phase -----------------------------------------------------------------

    # Hooks return ``None`` on the non-blocking fast path (same pipeline
    # step, lock granted immediately) and a coroutine when the transaction
    # has to advance a step or queue for a lock.

    def before_read(self, txn, key):
        return self._pipelined_access(txn, key, SHARED)

    def before_update_read(self, txn, key):
        return self._pipelined_access(txn, key, EXCLUSIVE)

    def before_write(self, txn, key, value):
        self.ranges.register_intent(txn, key)
        inner = self._pipelined_access(txn, key, EXCLUSIVE)
        if inner is None and not self.ranges.conflicting_scanners(txn, key):
            return None
        return self._write_past_ranges(txn, key, inner)

    def _write_past_ranges(self, txn, key, inner):
        if inner is not None:
            yield from inner
        yield from self.engine.wait_for_progress(
            txn,
            blockers_fn=lambda: self.ranges.conflicting_scanners(txn, key),
            event_fn=lambda blocker: [blocker.finish_event],
            reason="range-lock",
        )

    def before_scan(self, txn, key_range):
        state = self.state(txn)
        target = self._table_to_step.get(key_range.table, self._last_step)
        self.ranges.register_scan(txn, key_range)
        need_advance = target > state.get("step", -1)
        if not need_advance and not self.ranges.conflicting_writers(txn, key_range):
            return None
        return self._scan_past_ranges(txn, key_range, state, target, need_advance)

    def _scan_past_ranges(self, txn, key_range, state, target, need_advance):
        if need_advance:
            # A scan enters the scanned table's pipeline step exactly like a
            # point access would; its per-key reads then reuse the step.
            self._step_commit(txn, state)
            state["step"] = target
            self._signal_advance(txn, state)
            yield from self._wait_for_pipeline(txn, target)
        yield from self.engine.wait_for_progress(
            txn,
            blockers_fn=lambda: self.ranges.conflicting_writers(txn, key_range),
            event_fn=lambda blocker: [blocker.finish_event],
            reason="range-lock",
        )

    def _pipelined_access(self, txn, key, mode):
        state = self.state(txn)
        target = self._step_of_key(key)
        if target > state.get("step", -1):
            return self._advance_and_acquire(txn, key, mode, state, target)
        wait = self.locks.request(txn, key, mode)
        if wait is not None:
            return self._acquire_and_track(txn, key, mode, state, wait)
        if key in self._passed:
            self._order_after_passed(txn, key, mode)
        self._track_step_key(key, mode, state)
        return None

    def _track_step_key(self, key, mode, state):
        step_keys = state.get("step_keys")
        if step_keys is None:
            step_keys = state["step_keys"] = {}
        if step_keys.get(key) != EXCLUSIVE:
            step_keys[key] = mode

    def _acquire_and_track(self, txn, key, mode, state, wait):
        yield from wait
        if key in self._passed:
            self._order_after_passed(txn, key, mode)
        self._track_step_key(key, mode, state)

    def _advance_and_acquire(self, txn, key, mode, state, target):
        self._step_commit(txn, state)
        state["step"] = target
        self._signal_advance(txn, state)
        yield from self._wait_for_pipeline(txn, target)
        wait = self.locks.request(txn, key, mode)
        if wait is not None:
            yield from wait
        if key in self._passed:
            self._order_after_passed(txn, key, mode)
        self._track_step_key(key, mode, state)

    def _order_after_passed(self, txn, key, mode):
        """Order ``txn`` after conflicting step-committed accessors of ``key``.

        The step locks were already released, so the lock table cannot record
        these dependencies; without them a write after a passed *read* drops
        the rw anti-dependency and the pipeline order can silently invert.
        """
        passed = self._passed.get(key)
        if not passed:
            return
        txn_id = txn.txn_id
        stale = None
        for other_id, (other, other_mode) in passed.items():
            if other_id == txn_id:
                continue
            if not other.is_active or other_id not in self._active:
                if stale is None:
                    stale = []
                stale.append(other_id)
                continue
            if mode == SHARED and other_mode == SHARED:
                continue
            if self.same_child_group(txn, other):
                continue
            if self.engine.depends_transitively(other_id, txn_id):
                # The passed accessor is already ordered after us; adopting
                # the handoff order as well would close an ordering cycle.
                if self.engine.profiler is not None:
                    self.engine.profiler.record_abort(txn, "order-conflict", other)
                raise TransactionAborted(txn.txn_id, "order-conflict")
            txn.add_dependency(other_id)
        if stale:
            for other_id in stale:
                passed.pop(other_id, None)
            if not passed:
                self._passed.pop(key, None)

    def _signal_advance(self, txn, state=None):
        """Wake transactions waiting for this transaction's pipeline progress."""
        state = state if state is not None else self.state(txn)
        event = state.get("advance_event")
        if event is not None and not event.triggered:
            event.succeed(None)
        state["advance_event"] = None

    def _advance_event(self, txn):
        """The one-shot event triggered at this transaction's next advance."""
        state = self.state(txn)
        event = state.get("advance_event")
        if event is None or event.triggered:
            event = self.env.event(name="rp-advance")
            state["advance_event"] = event
        return event

    def _step_commit(self, txn, state):
        """Release the previous step's locks and expose its writes.

        Released accesses are remembered in ``_passed`` (until the
        transaction finishes): the pipeline order they established must keep
        constraining later conflicting accesses to the same keys.
        """
        step_keys = state.get("step_keys")
        if not step_keys:
            state["step_keys"] = {}
            return
        passed = self._passed
        passed_keys = state.get("passed_keys")
        if passed_keys is None:
            passed_keys = state["passed_keys"] = []
        for key, mode in step_keys.items():
            version = self.engine.store.own_uncommitted(key, txn.txn_id)
            if version is not None:
                self._step_committed[key] = version
            entry = passed.get(key)
            if entry is None:
                entry = passed[key] = {}
            previous = entry.get(txn.txn_id)
            if previous is None:
                entry[txn.txn_id] = (txn, mode)
                passed_keys.append(key)
            elif previous[1] != EXCLUSIVE:
                # Never downgrade: a later re-read must not weaken the
                # ordering constraint of an earlier passed write.
                entry[txn.txn_id] = (txn, mode)
        self.locks.release(txn, step_keys)
        state["step_keys"] = {}

    def _wait_for_pipeline(self, txn, step):
        # Only dependencies that are still active in this node can gate the
        # step entry; snapshot them once so re-checks after each progress
        # notification stay cheap.
        dependencies = txn.dependencies
        if not dependencies:
            return
        active = self._active
        watched = [
            (other, self.same_child_group(txn, other))
            for dep_id in dependencies
            if (other := active.get(dep_id)) is not None
        ]
        if not watched:
            return

        def _blockers():
            blockers = []
            for other, in_group in watched:
                if not other.is_active or other.txn_id not in self._active:
                    continue
                other_step = self._current_step(other)
                if in_group:
                    # In-group dependencies only need to have *started* the step.
                    if other_step < step:
                        blockers.append(other)
                elif other_step <= step:
                    # Cross-group dependencies must have finished the step.
                    blockers.append(other)
            return blockers

        for other, _in_group in watched:
            if other.is_active and self.engine.depends_transitively(other.txn_id, txn.txn_id):
                # A pipeline predecessor is already ordered after us: waiting
                # for it would deadlock, so resolve the inversion by aborting.
                if self.engine.profiler is not None:
                    self.engine.profiler.record_abort(txn, "order-conflict", other)
                raise TransactionAborted(txn.txn_id, "order-conflict")
        yield from self.engine.wait_for_progress(
            txn,
            blockers_fn=_blockers,
            event_fn=lambda blocker: [
                self._advance_event(blocker),
                blocker.finish_event,
            ],
            reason="rp-pipeline",
        )

    # -- read resolution -----------------------------------------------------------------

    def _pipelined_read(self, txn, key, candidate):
        if candidate is not None and not candidate.committed:
            if candidate.writer == txn.txn_id:
                return candidate
            writer = self.engine.find_transaction(candidate.writer)
            if writer is not None and self.is_member(writer) and writer.is_active:
                superseding = self._superseding_step_committed(key, candidate)
                if superseding is not None:
                    return superseding
                return candidate
        step_committed = self._step_committed.get(key)
        if step_committed is not None:
            writer = self.engine.find_transaction(step_committed.writer)
            stale = (
                step_committed.committed
                or writer is None
                or not writer.is_active
            )
            if stale:
                self._step_committed.pop(key, None)
            else:
                return step_committed
        latest = self.engine.store.latest_committed(key)
        if candidate is not None and candidate.committed:
            if latest is None or (candidate.commit_seq or 0) >= (latest.commit_seq or 0):
                return candidate
        return latest

    def _superseding_step_committed(self, key, candidate):
        """A step-committed version at this node superseding ``candidate``.

        A child subtree can propose a member writer's still-uncommitted
        version even after a writer in a *different* child step-committed a
        newer one through this node's pipeline — the child cannot see the
        cross-group writer.  The handoff order at this node already recorded
        that the slot writer is ordered after the candidate's writer, and
        every reader arriving here is ordered after the slot writer too
        (``_order_after_passed``, or its own child's proposal when they share
        a group), so the superseding version is the one such a reader must
        observe.
        """
        slot = self._step_committed.get(key)
        if slot is None or slot.writer == candidate.writer or slot.committed:
            return None
        writer = self.engine.find_transaction(slot.writer)
        if writer is None or not writer.is_active:
            self._step_committed.pop(key, None)
            return None
        if self.engine.depends_transitively(slot.writer, candidate.writer):
            return slot
        return None

    def select_version(self, txn, key):
        candidate = self.engine.store.own_uncommitted(key, txn.txn_id)
        return self._pipelined_read(txn, key, candidate)

    def amend_read(self, txn, key, candidate):
        return self._pipelined_read(txn, key, candidate)

    # -- validation & commit ------------------------------------------------------------------

    # validate() inherited: wait for in-subtree dependencies to commit.

    def finish(self, txn, committed):
        self._active.pop(txn.txn_id, None)
        state = self.state(txn)
        state["step"] = self.analysis.num_steps + 1
        passed_keys = state.get("passed_keys")
        if passed_keys:
            txn_id = txn.txn_id
            passed = self._passed
            for key in passed_keys:
                entry = passed.get(key)
                if entry is not None:
                    entry.pop(txn_id, None)
                    if not entry:
                        del passed[key]
            state["passed_keys"] = []
        self.locks.cancel_waits(txn)
        self.locks.release_all(txn)
        self.ranges.release(txn)
        self._signal_advance(txn, state)
        self.progress.notify_all()

    def can_garbage_collect(self, epoch):
        return True

    def describe(self):
        return f"rp@{self.node.node_id} ({self.analysis.num_steps} steps)"
