"""Multiversioned timestamp ordering with promises (Section 4.4.4).

Every transaction receives a timestamp at start time that predetermines its
position in the serialization order.  A read returns the latest version with
a smaller timestamp (uncommitted versions included — TSO exposes uncommitted
writes, pipelining conflicting transactions without SSI's aborts); a write is
rejected if a reader with a larger timestamp has already missed it.  The
*promise* optimisation lets transactions declare their write keys at start
time so that later readers wait for the write instead of forcing the writer
to abort.

Consistent ordering as an internal node is obtained by batching (transactions
of the same child group share a timestamp) and by committing transactions in
timestamp order, which introduces the spurious dependencies that the
partition-by-instance optimisation removes (Section 5.4.2, Table 5.1).  TSO
is most efficient as a leaf, as the paper notes.
"""

from repro.cc.base import ConcurrencyControl, register_cc
from repro.cc.timestamps import BatchManager
from repro.errors import TransactionAborted
from repro.sim.resources import Condition


@register_cc
class TimestampOrdering(ConcurrencyControl):
    """Multiversioned timestamp ordering with promises and batching."""

    name = "tso"
    handles_contention = True
    efficient_internal = False
    write_optimized = True
    extra_start_rtts = 1  # centralized timestamp server

    def __init__(
        self, engine, node, batching=None, batch_size=8, use_promises=True, promises=None
    ):
        # ``promises`` is the spec param recorded by autoconf preprocessing
        # (preprocess_tso_promises): the transaction types with declared
        # write keys.  A preprocessed empty list disables the optimisation,
        # but an explicit ``use_promises=False`` always wins.
        super().__init__(engine, node)
        if promises is not None and use_promises:
            use_promises = bool(promises)
        self.batch_size = batch_size
        self.use_promises = use_promises
        self.batches = BatchManager(engine.oracle, batch_size=batch_size)
        self.batching = (not node.is_leaf) if batching is None else batching
        self._reads = {}
        # table -> {txn_id: (txn, ts, [KeyRange, ...])}: active range reads.
        # A scan at timestamp T observes the *absence* of every matching key
        # that does not exist yet; a later write at timestamp W < T into the
        # range is a write the scan already missed and must abort.
        self._range_reads = {}
        self._promises = {}
        self._active = {}
        self.progress = Condition(engine.env, name=f"tso@{node.node_id}")

    # -- helpers -----------------------------------------------------------------

    def _ts(self, txn):
        return self.state(txn).get("ts", 0)

    def _version_ts(self, version):
        ts = version.metadata.get("tso_ts")
        if ts is not None:
            return ts
        return version.timestamp if version.timestamp is not None else 0

    def _same_batch(self, txn, other):
        if other is None or other.txn_id == txn.txn_id:
            return True
        if not self.batching:
            return False
        return self.state(txn).get("batch_id") == self.state(other).get("batch_id")

    def _abort(self, txn, reason, other=None):
        if self.engine.profiler is not None:
            self.engine.profiler.record_abort(txn, reason, other)
        raise TransactionAborted(txn.txn_id, reason)

    # -- start phase -----------------------------------------------------------------

    def start(self, txn):
        state = self.state(txn)
        state["read_keys"] = set()
        if self.batching:
            token = txn.group_token(self.node.node_id) or txn.txn_id
            batch_id, ts = self.batches.admit(token)
            self.batches.register(batch_id, txn.txn_id)
            state["batch_id"] = batch_id
        else:
            ts = self.engine.oracle.next()
            state["batch_id"] = None
        state["ts"] = ts
        txn.cc_timestamp = ts
        self._active[txn.txn_id] = txn
        if self.use_promises:
            profile = self.engine.profile_of(txn.txn_type)
            if profile.promise_keys is not None:
                promised = frozenset(profile.promise_keys(txn.args))
                txn.promises = promised
                for key in promised:
                    self._promises.setdefault(key, set()).add(txn.txn_id)

    # -- execution phase -----------------------------------------------------------------

    def before_read(self, txn, key):
        """Wait for promised writes by smaller-timestamp transactions."""
        if not self.use_promises:
            return
        my_ts = self._ts(txn)

        def _pending_promisors():
            pending = []
            for writer_id in self._promises.get(key, ()):  # promised, not yet written
                writer = self._active.get(writer_id)
                if writer is None or writer_id == txn.txn_id:
                    continue
                if self._ts(writer) < my_ts:
                    pending.append(writer)
            return pending

        if not _pending_promisors():
            return
        yield from self.engine.wait_until(
            txn,
            predicate=lambda: not _pending_promisors(),
            condition=self.progress,
            blocker_fn=lambda: (_pending_promisors() or [None])[0],
            reason="tso-promise",
        )

    def before_scan(self, txn, key_range):
        """Register a timestamped range read (phantom guard for TSO).

        The per-key timestamp reads of existing keys are handled by the
        ordinary read path (TSO exposes uncommitted versions, so in-flight
        inserts are enumerated and readable); the registration covers keys
        that do not exist yet, turning a later smaller-timestamp insert into
        a write-too-late abort.
        """
        table = key_range.table
        per_table = self._range_reads.get(table)
        if per_table is None:
            per_table = self._range_reads[table] = {}
        entry = per_table.get(txn.txn_id)
        if entry is None:
            per_table[txn.txn_id] = (txn, self._ts(txn), [key_range])
        else:
            entry[2].append(key_range)
        state = self.state(txn)
        tables = state.get("scan_tables")
        if tables is None:
            tables = state["scan_tables"] = set()
        tables.add(table)

    def before_write(self, txn, key, value):
        my_ts = self._ts(txn)
        readers = self._reads.get(key)
        if readers:
            for reader_id, (reader, reader_ts, read_version_ts) in list(readers.items()):
                if reader_id == txn.txn_id or self._same_batch(txn, reader):
                    continue
                if reader_ts > my_ts and read_version_ts < my_ts:
                    # A later reader already missed this write: abort the writer.
                    self._abort(txn, "tso-write-too-late", reader)
        table = key[0] if isinstance(key, tuple) and len(key) == 2 else key
        range_readers = self._range_reads.get(table)
        if range_readers:
            pk = key[1] if isinstance(key, tuple) and len(key) == 2 else key
            for reader_id, (reader, reader_ts, ranges) in list(range_readers.items()):
                if reader_id == txn.txn_id or self._same_batch(txn, reader):
                    continue
                if reader_ts <= my_ts:
                    continue
                if readers and reader_id in readers:
                    # The scanner read an actual version of this key; the
                    # item-level rule above already decided its fate.
                    continue
                if any(key_range.contains_pk(pk) for key_range in ranges):
                    # A later scan observed the absence of this key: the
                    # write arrives too late for its position in time.
                    self._abort(txn, "tso-write-too-late", reader)

    def _timestamp_read(self, txn, key, candidate):
        my_ts = self._ts(txn)
        if candidate is not None and not candidate.committed:
            if candidate.writer == txn.txn_id or self._same_batch(
                txn, self.engine.find_transaction(candidate.writer)
            ):
                self._record_read(txn, key, self._version_ts(candidate))
                return candidate
        best = None
        best_ts = -1.0
        for version in reversed(self.engine.store.committed_versions(key)):
            ts = self._version_ts(version)
            if ts < my_ts:
                best, best_ts = version, ts
                break
        for version in self.engine.store.uncommitted_versions(key):
            writer = self.engine.find_transaction(version.writer)
            if writer is None or not self.is_member(writer):
                continue
            ts = self._version_ts(version)
            if ts < my_ts and ts >= best_ts:
                best, best_ts = version, ts
        if best is None:
            best = candidate
        self._record_read(txn, key, self._version_ts(best) if best is not None else 0)
        return best

    def _record_read(self, txn, key, version_ts):
        readers = self._reads.get(key)
        if readers is None:
            readers = self._reads[key] = {}
        readers[txn.txn_id] = (txn, self._ts(txn), version_ts)
        self.state(txn)["read_keys"].add(key)

    def select_version(self, txn, key):
        candidate = self.engine.store.own_uncommitted(key, txn.txn_id)
        return self._timestamp_read(txn, key, candidate)

    def amend_read(self, txn, key, candidate):
        return self._timestamp_read(txn, key, candidate)

    def after_write(self, txn, key, version):
        version.metadata["tso_ts"] = self._ts(txn)
        if key in txn.promises:
            promisors = self._promises.get(key)
            if promisors is not None:
                promisors.discard(txn.txn_id)
        self.progress.notify_all()

    # -- validation & commit ------------------------------------------------------------------

    def validate(self, txn):
        my_ts = self._ts(txn)

        def _earlier_active():
            return [
                other
                for other in self._active.values()
                if other.txn_id != txn.txn_id and self._ts(other) < my_ts
            ]

        # Commit in timestamp order: wait (targeted) for every earlier
        # transaction of this TSO instance to finish first.
        yield from self.engine.wait_for_progress(
            txn,
            blockers_fn=_earlier_active,
            event_fn=lambda blocker: [blocker.finish_event],
            reason="tso-commit-order",
        )
        deps = self.subtree_dependencies(txn)
        if deps:
            yield from self.engine.wait_for_transactions(txn, deps)

    def finish(self, txn, committed):
        self._active.pop(txn.txn_id, None)
        state = self.state(txn)
        for key in state.get("read_keys", ()):  # prune read tracking
            readers = self._reads.get(key)
            if readers is not None:
                readers.pop(txn.txn_id, None)
                if not readers:
                    self._reads.pop(key, None)
        for table in state.get("scan_tables", ()):  # prune range tracking
            range_readers = self._range_reads.get(table)
            if range_readers is not None:
                range_readers.pop(txn.txn_id, None)
                if not range_readers:
                    self._range_reads.pop(table, None)
        for key in txn.promises:
            promisors = self._promises.get(key)
            if promisors is not None:
                promisors.discard(txn.txn_id)
        batch_id = state.get("batch_id")
        if batch_id is not None:
            self.batches.discard(batch_id, txn.txn_id)
        self.progress.notify_all()

    def can_garbage_collect(self, epoch):
        return not self._active
