"""The empty concurrency control used for read-only groups.

A group whose transactions never conflict with each other (for example the
read-only group beneath the root SSI node in the paper's TPC-C and SEATS
configurations) needs no in-group concurrency control at all: every conflict
it participates in involves another group and is therefore handled by an
ancestor.
"""

from repro.cc.base import ConcurrencyControl, register_cc


@register_cc
class NoOpCC(ConcurrencyControl):
    """Concurrency control that never blocks, never aborts, never waits."""

    name = "none"
    handles_contention = False
    efficient_internal = False

    def validate(self, txn):
        """Read-only groups have no ordering decisions to defer to."""
        return None

    def describe(self):
        return f"none@{self.node.node_id}"
