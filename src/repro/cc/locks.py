"""Lock table with group-aware ("nexus") compatibility and timeout deadlock
handling.

Used by 2PL (transaction-duration locks) and runtime pipelining (step-duration
locks).  The *same-group* predicate implements the nexus-lock behaviour of
Modular Concurrency Control: transactions of the same child subtree never
conflict at this node — their conflicts are delegated to the child CC.

The table is on the per-operation hot path of every lock-based CC, so the
uncontended acquire is allocation-free: lock records are keyed by transaction
id (no Python-level ``__hash__`` dispatch), conflict detection avoids building
lists until a block is certain, and records are only allocated on first use.
"""

from collections import deque

from repro.errors import TransactionAborted
from repro.sim.events import Event, any_of


SHARED = "S"
EXCLUSIVE = "X"


class _LockRecord:
    __slots__ = ("holders", "queue")

    def __init__(self):
        # txn_id -> (transaction, mode); keyed by id so the hot path never
        # goes through Transaction.__hash__.
        self.holders = {}
        # Lazily allocated on first waiter: most records never see one.
        self.queue = None


class _WaitRequest:
    __slots__ = ("txn", "mode", "event")

    def __init__(self, txn, mode, event):
        self.txn = txn
        self.mode = mode
        self.event = event


class LockTable:
    """Per-key lock table with FIFO waiting and timeout-based deadlock relief."""

    def __init__(self, env, same_group=None, timeout=1.0, profiler=None, name="locks",
                 order_guard=None, deadlock_check=None):
        self.env = env
        self.same_group = same_group or (lambda a, b: False)
        self.timeout = timeout
        self.profiler = profiler
        self.name = name
        # Optional predicate(blocker_id, waiter_id) -> True when the blocker
        # already (transitively) depends on the waiter, i.e. waiting would
        # create an ordering cycle and the waiter should abort instead.
        self.order_guard = order_guard
        # Optional callable(txn, blocker_id) raising TransactionAborted when
        # blocking would close a wait-for cycle (fast deadlock resolution).
        self.deadlock_check = deadlock_check
        self._locks = {}
        self._held_by_txn = {}
        self._waiting_keys = {}
        self.block_count = 0
        self.timeout_count = 0
        # Idle lock records are swept in batches (amortized O(1) per release)
        # instead of deleted eagerly, which would re-allocate a record on the
        # next access of the same key — the common case under step-locking.
        self._sweep_threshold = 8192

    # -- introspection ------------------------------------------------------

    def holders(self, key):
        record = self._locks.get(key)
        if not record:
            return {}
        return {txn: mode for txn, mode in record.holders.values()}

    def held_keys(self, txn_id):
        return set(self._held_by_txn.get(txn_id, ()))

    def waiting(self, key):
        record = self._locks.get(key)
        return len(record.queue) if record and record.queue else 0

    # -- core protocol --------------------------------------------------------

    def _conflicts(self, record, txn, mode):
        """Transactions whose held locks conflict with ``txn`` requesting ``mode``.

        Mode compatibility is checked before the (Python-level) same-group
        predicate, so shared readers piling onto a hot key skip it entirely.
        """
        conflicting = []
        txn_id = txn.txn_id
        for holder_id, (holder, held_mode) in record.holders.items():
            if holder_id == txn_id:
                continue
            if held_mode == SHARED and mode == SHARED:
                continue
            if self.same_group(txn, holder):
                continue
            conflicting.append(holder)
        return conflicting

    def try_acquire(self, txn, key, mode):
        """Non-blocking acquire; returns True on success."""
        record = self._locks.get(key)
        if record is None:
            record = self._locks[key] = _LockRecord()
        if record.queue and not self._already_holds(record, txn, mode):
            return False
        if self._conflicts(record, txn, mode):
            return False
        self._grant(record, txn, key, mode)
        return True

    def _already_holds(self, record, txn, mode):
        entry = record.holders.get(txn.txn_id)
        if entry is None:
            return False
        held = entry[1]
        return held == EXCLUSIVE or held == mode

    def request(self, txn, key, mode):
        """Acquire if possible without waiting; otherwise return a coroutine.

        Returns ``None`` when the lock was granted (or already held)
        immediately — the caller skips the generator machinery entirely —
        and a blocking coroutine (to ``yield from``) when the transaction
        must queue.  This is the hot-path entry used by the CC hooks.
        """
        txn_id = txn.txn_id
        record = self._locks.get(key)
        if record is None:
            record = self._locks[key] = _LockRecord()
            holders = record.holders
        else:
            holders = record.holders
            if holders:
                entry = holders.get(txn_id)
                if entry is not None:
                    held = entry[1]
                    if held == EXCLUSIVE or held == mode:
                        return None
                conflicting = self._conflicts(record, txn, mode)
                if conflicting or record.queue:
                    return self._blocking_acquire(txn, key, mode, record, conflicting)
                self._grant(record, txn, key, mode)
                return None
            if record.queue:
                # Idle holders but queued waiters (cancelled-wait leftovers):
                # respect FIFO ordering.
                return self._blocking_acquire(txn, key, mode, record, [])
        # Fresh or idle record: grant inline (no conflicts, no upgrade).
        holders[txn_id] = (txn, mode)
        held_keys = self._held_by_txn.get(txn_id)
        if held_keys is None:
            held_keys = self._held_by_txn[txn_id] = set()
        held_keys.add(key)
        return None

    def acquire(self, txn, key, mode):
        """Coroutine: acquire the lock, blocking FIFO; abort on timeout.

        Conflicting holders are recorded as direct dependencies of ``txn``
        (the lock orders ``txn`` after them), and every blocking interval is
        reported to the profiler for contention analysis.
        """
        wait = self.request(txn, key, mode)
        if wait is not None:
            yield from wait

    def _blocking_acquire(self, txn, key, mode, record, conflicting):
        if record.queue is None:
            record.queue = deque()
        blockers = conflicting or [req.txn for req in record.queue][-1:]
        blocker = blockers[0] if blockers else None
        if self.order_guard is not None:
            for other in blockers:
                if self.order_guard(other.txn_id, txn.txn_id):
                    # The holder is already ordered after us somewhere else:
                    # waiting for it would create an ordering cycle.
                    if self.profiler is not None:
                        self.profiler.record_abort(txn, "order-conflict", other)
                    raise TransactionAborted(txn.txn_id, "order-conflict")
        request = _WaitRequest(txn=txn, mode=mode, event=Event(self.env, name="lock"))
        record.queue.append(request)
        self._waiting_keys.setdefault(txn.txn_id, set()).add(key)
        self.block_count += 1
        wait_start = self.env.now
        # Only conflicting *holders* order this transaction after them; a
        # queued request ahead of us is a scheduling artefact, not an
        # ordering decision.
        for other in conflicting:
            txn.add_dependency(other.txn_id)
        if self.deadlock_check is not None and blocker is not None:
            try:
                self.deadlock_check(txn, blocker.txn_id)
            except TransactionAborted:
                if request in record.queue:
                    record.queue.remove(request)
                waiting = self._waiting_keys.get(txn.txn_id)
                if waiting is not None:
                    waiting.discard(key)
                raise
        timeout_event = self.env.timeout(self.timeout)
        txn.current_wait = (f"lock:{self.name}", blocker.txn_id if blocker else None)
        winner_index, _value = yield any_of(self.env, [request.event, timeout_event])
        txn.current_wait = None
        waiting = self._waiting_keys.get(txn.txn_id)
        if waiting is not None:
            waiting.discard(key)
            if not waiting:
                del self._waiting_keys[txn.txn_id]
        if self.profiler is not None and blocker is not None:
            table = key[0] if isinstance(key, tuple) else key
            self.profiler.record_wait(
                txn, blocker, wait_start, self.env.now, kind=f"lock:{table}"
            )
        if winner_index == 1 and not request.event.triggered:
            # Timed out: give up the request and abort (deadlock relief).
            if request in record.queue:
                record.queue.remove(request)
            self.timeout_count += 1
            if self.profiler is not None:
                self.profiler.record_abort(txn, "deadlock-timeout", blocker)
            raise TransactionAborted(txn.txn_id, "deadlock-timeout")

    def _grant(self, record, txn, key, mode):
        txn_id = txn.txn_id
        entry = record.holders.get(txn_id)
        held = entry[1] if entry is not None else None
        if held == EXCLUSIVE:
            mode = EXCLUSIVE
        record.holders[txn_id] = (
            txn,
            EXCLUSIVE if (held == EXCLUSIVE or mode == EXCLUSIVE) else mode,
        )
        held_keys = self._held_by_txn.get(txn_id)
        if held_keys is None:
            held_keys = self._held_by_txn[txn_id] = set()
        held_keys.add(key)

    def release_all(self, txn):
        """Release every lock held by ``txn`` and grant eligible waiters."""
        keys = self._held_by_txn.pop(txn.txn_id, None)
        if keys is None:
            return set()
        for key in keys:
            record = self._locks.get(key)
            if record is None:
                continue
            record.holders.pop(txn.txn_id, None)
            if record.queue:
                self._grant_from_queue(record, key)
        self._maybe_sweep()
        return keys

    def release(self, txn, keys):
        """Release a specific set of keys (used by RP step-commit)."""
        held = self._held_by_txn.get(txn.txn_id)
        if held is None:
            return
        for key in keys:
            if key not in held:
                continue
            held.discard(key)
            record = self._locks.get(key)
            if record is None:
                continue
            record.holders.pop(txn.txn_id, None)
            if record.queue:
                self._grant_from_queue(record, key)

    def _drop_if_idle(self, key, record):
        if not record.holders and not record.queue:
            self._locks.pop(key, None)

    def _maybe_sweep(self):
        """Batch-drop idle lock records once the table grows large.

        The threshold doubles after every sweep, so sweeps become geometric:
        total sweep work is O(peak table size) over the whole run and hot
        keys keep their records instead of re-allocating them per access.
        """
        if len(self._locks) <= self._sweep_threshold:
            return
        idle = [
            key
            for key, record in self._locks.items()
            if not record.holders and not record.queue
        ]
        for key in idle:
            del self._locks[key]
        self._sweep_threshold = max(self._sweep_threshold * 2, 2 * len(self._locks))

    def cancel_waits(self, txn):
        """Drop any queued (not yet granted) requests of an aborting txn."""
        keys = self._waiting_keys.pop(txn.txn_id, ())
        for key in keys:
            record = self._locks.get(key)
            if record is None or not record.queue:
                continue
            record.queue = deque(req for req in record.queue if req.txn is not txn)
            self._drop_if_idle(key, record)

    def _grant_from_queue(self, record, key):
        # Strict FIFO: grant consecutive head-of-queue requests while they are
        # compatible with the current holders.
        while record.queue:
            request = record.queue[0]
            if not request.txn.is_active:
                record.queue.popleft()
                continue
            if self._conflicts(record, request.txn, request.mode):
                return
            record.queue.popleft()
            self._grant(record, request.txn, key, request.mode)
            if not request.event.triggered:
                request.event.succeed(None)


class RangeLockManager:
    """Predicate (range) locks: the phantom guard of lock-based CCs.

    Point locks cannot protect a scan against the *insertion* of a key that
    matched its predicate but did not exist yet.  The manager closes that
    window with two symmetrically registered intents, both held until the
    owning transaction finishes:

    * a scan registers its :class:`~repro.storage.ranges.KeyRange` as a
      shared predicate; a later write of a key inside the range must wait
      for the scanner to finish (strictness: the scanner's view of the
      range stays stable until commit);
    * a write registers a per-key write intent *before* it starts waiting
      for its point lock; a later scan whose range covers the intent must
      wait for the writer to finish.

    Registration and conflict checks are synchronous (no yield between
    them), so under the simulator's cooperative scheduling one side always
    observes the other — there is no race window.  Same-child-group
    transactions never conflict (nexus delegation: their phantoms are the
    child CC's job), mirroring :class:`LockTable`.
    """

    def __init__(self, same_group=None):
        self.same_group = same_group or (lambda a, b: False)
        # table -> {txn_id: (txn, [KeyRange, ...])}
        self._scans = {}
        # table -> {txn_id: (txn, set of pks with write intents)}
        self._intents = {}

    @staticmethod
    def _split(key):
        if isinstance(key, tuple) and len(key) == 2:
            return key
        return key, key

    def register_scan(self, txn, key_range):
        per_table = self._scans.get(key_range.table)
        if per_table is None:
            per_table = self._scans[key_range.table] = {}
        entry = per_table.get(txn.txn_id)
        if entry is None:
            per_table[txn.txn_id] = (txn, [key_range])
        else:
            entry[1].append(key_range)

    def register_intent(self, txn, key):
        table, pk = self._split(key)
        per_table = self._intents.get(table)
        if per_table is None:
            per_table = self._intents[table] = {}
        entry = per_table.get(txn.txn_id)
        if entry is None:
            per_table[txn.txn_id] = (txn, {pk})
        else:
            entry[1].add(pk)

    def conflicting_scanners(self, txn, key):
        """Active other-group scanners whose predicate covers ``key``."""
        table, pk = self._split(key)
        per_table = self._scans.get(table)
        if not per_table:
            return []
        txn_id = txn.txn_id
        blockers = []
        for scanner_id, (scanner, ranges) in per_table.items():
            if scanner_id == txn_id or not scanner.is_active:
                continue
            if self.same_group(txn, scanner):
                continue
            if any(key_range.contains_pk(pk) for key_range in ranges):
                blockers.append(scanner)
        return blockers

    def conflicting_writers(self, txn, key_range):
        """Active other-group writers with an intent inside ``key_range``."""
        per_table = self._intents.get(key_range.table)
        if not per_table:
            return []
        txn_id = txn.txn_id
        blockers = []
        for writer_id, (writer, pks) in per_table.items():
            if writer_id == txn_id or not writer.is_active:
                continue
            if self.same_group(txn, writer):
                continue
            if any(key_range.contains_pk(pk) for pk in pks):
                blockers.append(writer)
        return blockers

    def release(self, txn):
        """Drop every predicate and intent of ``txn`` (at finish)."""
        txn_id = txn.txn_id
        for registry in (self._scans, self._intents):
            stale = []
            for table, per_table in registry.items():
                if per_table.pop(txn_id, None) is not None and not per_table:
                    stale.append(table)
            for table in stale:
                del registry[table]
