"""Lock table with group-aware ("nexus") compatibility and timeout deadlock
handling.

Used by 2PL (transaction-duration locks) and runtime pipelining (step-duration
locks).  The *same-group* predicate implements the nexus-lock behaviour of
Modular Concurrency Control: transactions of the same child subtree never
conflict at this node — their conflicts are delegated to the child CC.
"""

from collections import deque
from dataclasses import dataclass, field

from repro.errors import TransactionAborted
from repro.sim.events import Event, any_of


SHARED = "S"
EXCLUSIVE = "X"


def _modes_compatible(held, requested):
    return held == SHARED and requested == SHARED


@dataclass
class _LockRecord:
    holders: dict = field(default_factory=dict)
    queue: deque = field(default_factory=deque)


@dataclass
class _WaitRequest:
    txn: object
    mode: str
    event: Event


class LockTable:
    """Per-key lock table with FIFO waiting and timeout-based deadlock relief."""

    def __init__(self, env, same_group=None, timeout=1.0, profiler=None, name="locks",
                 order_guard=None, deadlock_check=None):
        self.env = env
        self.same_group = same_group or (lambda a, b: False)
        self.timeout = timeout
        self.profiler = profiler
        self.name = name
        # Optional predicate(blocker_id, waiter_id) -> True when the blocker
        # already (transitively) depends on the waiter, i.e. waiting would
        # create an ordering cycle and the waiter should abort instead.
        self.order_guard = order_guard
        # Optional callable(txn, blocker_id) raising TransactionAborted when
        # blocking would close a wait-for cycle (fast deadlock resolution).
        self.deadlock_check = deadlock_check
        self._locks = {}
        self._held_by_txn = {}
        self._waiting_keys = {}
        self.block_count = 0
        self.timeout_count = 0

    # -- introspection ------------------------------------------------------

    def holders(self, key):
        record = self._locks.get(key)
        return dict(record.holders) if record else {}

    def held_keys(self, txn_id):
        return set(self._held_by_txn.get(txn_id, ()))

    def waiting(self, key):
        record = self._locks.get(key)
        return len(record.queue) if record else 0

    # -- core protocol --------------------------------------------------------

    def _conflicts(self, record, txn, mode):
        """Transactions whose held locks conflict with ``txn`` requesting ``mode``."""
        conflicting = []
        for holder, held_mode in record.holders.items():
            if holder.txn_id == txn.txn_id:
                continue
            if self.same_group(txn, holder):
                continue
            if _modes_compatible(held_mode, mode):
                continue
            conflicting.append(holder)
        return conflicting

    def try_acquire(self, txn, key, mode):
        """Non-blocking acquire; returns True on success."""
        record = self._locks.setdefault(key, _LockRecord())
        if record.queue and not self._already_holds(record, txn, mode):
            return False
        if self._conflicts(record, txn, mode):
            return False
        self._grant(record, txn, key, mode)
        return True

    def _already_holds(self, record, txn, mode):
        held = record.holders.get(txn)
        if held is None:
            return False
        return held == EXCLUSIVE or held == mode

    def acquire(self, txn, key, mode):
        """Coroutine: acquire the lock, blocking FIFO; abort on timeout.

        Conflicting holders are recorded as direct dependencies of ``txn``
        (the lock orders ``txn`` after them), and every blocking interval is
        reported to the profiler for contention analysis.
        """
        record = self._locks.setdefault(key, _LockRecord())
        if self._already_holds(record, txn, mode):
            return
        conflicting = self._conflicts(record, txn, mode)
        if not conflicting and not record.queue:
            self._grant(record, txn, key, mode)
            return
        blockers = conflicting or [req.txn for req in record.queue][-1:]
        blocker = blockers[0] if blockers else None
        if self.order_guard is not None:
            for other in blockers:
                if self.order_guard(other.txn_id, txn.txn_id):
                    # The holder is already ordered after us somewhere else:
                    # waiting for it would create an ordering cycle.
                    if self.profiler is not None:
                        self.profiler.record_abort(txn, "order-conflict", other)
                    raise TransactionAborted(txn.txn_id, "order-conflict")
        request = _WaitRequest(txn=txn, mode=mode, event=Event(self.env, name=f"lock:{key}"))
        record.queue.append(request)
        self._waiting_keys.setdefault(txn.txn_id, set()).add(key)
        self.block_count += 1
        wait_start = self.env.now
        # Only conflicting *holders* order this transaction after them; a
        # queued request ahead of us is a scheduling artefact, not an
        # ordering decision.
        for other in conflicting:
            txn.add_dependency(other.txn_id)
        if self.deadlock_check is not None and blocker is not None:
            try:
                self.deadlock_check(txn, blocker.txn_id)
            except TransactionAborted:
                if request in record.queue:
                    record.queue.remove(request)
                waiting = self._waiting_keys.get(txn.txn_id)
                if waiting is not None:
                    waiting.discard(key)
                raise
        timeout_event = self.env.timeout(self.timeout)
        txn.current_wait = (f"lock:{self.name}", blocker.txn_id if blocker else None)
        winner_index, _value = yield any_of(self.env, [request.event, timeout_event])
        txn.current_wait = None
        waiting = self._waiting_keys.get(txn.txn_id)
        if waiting is not None:
            waiting.discard(key)
            if not waiting:
                del self._waiting_keys[txn.txn_id]
        if self.profiler is not None and blocker is not None:
            table = key[0] if isinstance(key, tuple) else key
            self.profiler.record_wait(
                txn, blocker, wait_start, self.env.now, kind=f"lock:{table}"
            )
        if winner_index == 1 and not request.event.triggered:
            # Timed out: give up the request and abort (deadlock relief).
            if request in record.queue:
                record.queue.remove(request)
            self.timeout_count += 1
            if self.profiler is not None:
                self.profiler.record_abort(txn, "deadlock-timeout", blocker)
            raise TransactionAborted(txn.txn_id, "deadlock-timeout")

    def _grant(self, record, txn, key, mode):
        held = record.holders.get(txn)
        if held == EXCLUSIVE:
            mode = EXCLUSIVE
        record.holders[txn] = EXCLUSIVE if (held == EXCLUSIVE or mode == EXCLUSIVE) else mode
        self._held_by_txn.setdefault(txn.txn_id, set()).add(key)

    def release_all(self, txn):
        """Release every lock held by ``txn`` and grant eligible waiters."""
        keys = self._held_by_txn.pop(txn.txn_id, set())
        for key in keys:
            record = self._locks.get(key)
            if record is None:
                continue
            record.holders.pop(txn, None)
            self._grant_from_queue(record, key)
            self._drop_if_idle(key, record)
        return keys

    def release(self, txn, keys):
        """Release a specific set of keys (used by RP step-commit)."""
        held = self._held_by_txn.get(txn.txn_id, set())
        for key in list(keys):
            if key not in held:
                continue
            held.discard(key)
            record = self._locks.get(key)
            if record is None:
                continue
            record.holders.pop(txn, None)
            self._grant_from_queue(record, key)
            self._drop_if_idle(key, record)

    def _drop_if_idle(self, key, record):
        if not record.holders and not record.queue:
            self._locks.pop(key, None)

    def cancel_waits(self, txn):
        """Drop any queued (not yet granted) requests of an aborting txn."""
        keys = self._waiting_keys.pop(txn.txn_id, ())
        for key in keys:
            record = self._locks.get(key)
            if record is None:
                continue
            record.queue = deque(req for req in record.queue if req.txn is not txn)
            self._drop_if_idle(key, record)

    def _grant_from_queue(self, record, key):
        # Strict FIFO: grant consecutive head-of-queue requests while they are
        # compatible with the current holders.
        while record.queue:
            request = record.queue[0]
            if not request.txn.is_active:
                record.queue.popleft()
                continue
            if self._conflicts(record, request.txn, request.mode):
                return
            record.queue.popleft()
            self._grant(record, request.txn, key, request.mode)
            if not request.event.triggered:
                request.event.succeed(None)
