"""Concurrency-control mechanisms federated by the hierarchical MCC engine.

Each mechanism implements the four-phase interface of
:class:`repro.cc.base.ConcurrencyControl` and can serve either as a leaf
(in-group) or as an internal (cross-group) node of the CC tree.
"""

from repro.cc.base import ConcurrencyControl, CC_REGISTRY, register_cc, create_cc
from repro.cc.no_op import NoOpCC
from repro.cc.two_phase_locking import TwoPhaseLocking
from repro.cc.runtime_pipelining import RuntimePipelining
from repro.cc.ssi import SerializableSnapshotIsolation
from repro.cc.tso import TimestampOrdering
from repro.cc.occ import OptimisticCC
from repro.cc.batch import DeterministicBatch
from repro.cc.timestamps import TimestampOracle

__all__ = [
    "ConcurrencyControl",
    "CC_REGISTRY",
    "register_cc",
    "create_cc",
    "NoOpCC",
    "TwoPhaseLocking",
    "RuntimePipelining",
    "SerializableSnapshotIsolation",
    "TimestampOrdering",
    "OptimisticCC",
    "DeterministicBatch",
    "TimestampOracle",
]
