"""Backward-validation optimistic concurrency control.

OCC is not part of Tebaldi's headline configurations but is one of the
classic mechanisms the paper's related-work discussion contrasts against
(Kung & Robinson style).  It is included both to exercise the framework's
extensibility claim (Section 4.6.3: adding a CC only requires expressing its
four phases) and to serve as an additional baseline in the microbenchmarks.

The implementation validates at commit time that every version read is still
the latest committed version and that no concurrent transaction committed a
write to any key in the write set after this transaction began.
"""

from repro.cc.base import ConcurrencyControl, register_cc
from repro.errors import TransactionAborted


@register_cc
class OptimisticCC(ConcurrencyControl):
    """Backward-validation OCC (leaf-oriented)."""

    name = "occ"
    handles_contention = False
    efficient_internal = False

    def start(self, txn):
        state = self.state(txn)
        state["snapshot_seq"] = self.engine.store.last_commit_seq()

    def validate(self, txn):
        deps = self.subtree_dependencies(txn)
        if deps:
            yield from self.engine.wait_for_transactions(txn, deps)

    def pre_commit(self, txn):
        """Backward validation, run atomically with the commit.

        The checks live in the commit phase (rather than the validation
        phase) because the engine guarantees no interleaving between
        ``pre_commit`` and the installation of the writes, which is what
        makes the validate-then-write sequence of OCC atomic.
        """
        state = self.state(txn)
        snapshot_seq = state.get("snapshot_seq", 0)
        # Read validation: every version read must still be current.
        for record in txn.reads:
            version = record.version
            latest = self.engine.store.latest_committed(record.key)
            if version is None:
                if latest is not None and (latest.commit_seq or 0) > snapshot_seq:
                    self._abort(txn, "occ-read-validation")
                continue
            if latest is not None and version.committed and latest is not version:
                self._abort(txn, "occ-read-validation")
        # Write validation: first-committer-wins on the write set.
        for key in txn.write_order:
            latest = self.engine.store.latest_committed(key)
            if latest is not None and (latest.commit_seq or 0) > snapshot_seq:
                self._abort(txn, "occ-write-validation")
        # Scan (phantom) validation: re-enumerate every scanned range; a key
        # the scan never read that gained a committed version after the
        # snapshot is a phantom the scan missed.
        if txn.scans:
            read_keys = {record.key for record in txn.reads}
            own_writes = txn.writes
            store = self.engine.store
            for scan in txn.scans:
                key_range = scan.key_range
                for key in store.range_keys(key_range.table, key_range.lo, key_range.hi):
                    if key in read_keys or key in own_writes:
                        continue
                    latest = store.latest_committed(key)
                    if latest is not None and (latest.commit_seq or 0) > snapshot_seq:
                        self._abort(txn, "occ-phantom-validation")

    def _abort(self, txn, reason):
        if self.engine.profiler is not None:
            self.engine.profiler.record_abort(txn, reason, None)
        raise TransactionAborted(txn.txn_id, reason)
