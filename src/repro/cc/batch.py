"""Deterministic batched execution over a dependency graph (BOHM/DGCC-style).

Arriving transactions are grouped into *batches*.  When a batch seals (size
or time window), a sequencing step assigns each member a position in one
total order and pre-declares its write set — and the ranges its scans may
touch — as *version slots* in the multiversion store.  The declared slots
form the batch dependency graph: a transaction conflicts exactly with the
earlier-sequenced transactions whose declared writes intersect its declared
writes or scan ranges.  Execution is then lock-free: an operation waits only
until the conflicting slots of earlier-sequenced transactions resolve
(install, or release at commit for declared-but-unwritten keys), reads
observe the latest version *in sequence order* — uncommitted versions
included — and members commit in sequence order, so the per-key version
chains equal the pre-decided order and no member ever aborts on a conflict
with another member.

The mechanism mirrors deterministic database execution (Calvin's sequencing
layer, BOHM's version pre-assignment, DGCC's dependency graphs): contention
does not cause aborts or lock convoys, at the price of requiring declarable
write sets.  Transaction types whose write keys cannot be computed from the
arguments alone (e.g. a dequeue that finds its victim by scanning) are
rejected at configuration time.

As a member of the hierarchical CC tree the mechanism is leaf-only and
composes under delegating ancestors (2PL / SSI / OCC nexus): members appear
to the ancestor as one child group, so cross-group conflicts are mediated by
the nexus while in-group conflicts are sequenced here.  Ancestors that
aggressively re-order reads against their own clocks (RP, TSO) would
override the sequence and are rejected.
"""

from itertools import count

from repro.cc.base import ConcurrencyControl, register_cc
from repro.errors import ConfigurationError, TransactionAborted
from repro.sim.events import Event
from repro.sim.resources import Condition

#: Ancestors that delegate in-group ordering to the child CC.  RP and TSO
#: amend reads against their own pipeline/timestamp state and would override
#: the batch sequence, so they cannot sit above a batch group.
_DELEGATING_ANCESTORS = frozenset({"2pl", "ssi", "occ", "none"})


class _Batch:
    """One admission wave: members, seal state, and completion countdown."""

    __slots__ = ("members", "sealed", "sealed_event", "remaining")

    def __init__(self, env, name):
        self.members = []
        self.sealed = False
        self.sealed_event = Event(env, name=name)
        self.remaining = 0


@register_cc
class DeterministicBatch(ConcurrencyControl):
    """Deterministic batch execution with pre-declared version slots."""

    name = "batch"
    handles_contention = True
    efficient_internal = False
    requires_profiles = True
    write_optimized = True
    # One total order per group: independent per-partition instances would
    # split the sequence, so partition-by-instance is rejected at build time.
    supports_partitioning = False
    extra_start_rtts = 1  # sequencer round-trip

    def __init__(
        self,
        engine,
        node,
        batch_size=8,
        batch_window=0.01,
        max_inflight_batches=4,
    ):
        super().__init__(engine, node)
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if batch_window <= 0:
            raise ConfigurationError("batch_window must be positive")
        if max_inflight_batches < 1:
            raise ConfigurationError("max_inflight_batches must be >= 1")
        self.batch_size = batch_size
        self.batch_window = batch_window
        self.max_inflight_batches = max_inflight_batches
        if not node.is_leaf:
            raise ConfigurationError(
                "batch is a leaf (in-group) mechanism: the sequencer orders "
                "one group's transactions, it cannot federate child groups"
            )
        ancestor = node.parent
        while ancestor is not None:
            if ancestor.spec.cc not in _DELEGATING_ANCESTORS:
                raise ConfigurationError(
                    f"batch group cannot run under a {ancestor.spec.cc!r} "
                    "ancestor: it amends member reads against its own "
                    "ordering and would override the batch sequence"
                )
            ancestor = ancestor.parent
        for txn_type in node.spec.transactions:
            profile = engine.profile_of(txn_type)
            writes = any(mode == "w" for _table, mode in profile.accesses)
            if writes and profile.promise_keys is None:
                raise ConfigurationError(
                    f"batch group requires declarable write sets: type "
                    f"{txn_type!r} writes but its profile declares no "
                    "promise_keys"
                )
        self._open_batch = None
        self._inflight = 0
        self._seq_counter = count(1)
        self._seqs = {}  # txn_id -> sequence position (sealed, active)
        self._active = {}  # txn_id -> txn (joined a batch, not finished)
        #: Dependency-graph edges materialised across all seals (stats).
        self.graph_edges = 0
        self.batches_sealed = 0
        self.admission = Condition(engine.env, name=f"batch-admit@{node.node_id}")
        self.progress = Condition(engine.env, name=f"batch@{node.node_id}")

    # -- helpers -----------------------------------------------------------------

    def _abort(self, txn, reason, other=None):
        if self.engine.profiler is not None:
            self.engine.profiler.record_abort(txn, reason, other)
        raise TransactionAborted(txn.txn_id, reason)

    def _seq(self, txn):
        return self.state(txn).get("seq", 0)

    @staticmethod
    def _key_in_ranges(key, ranges):
        if not isinstance(key, tuple) or len(key) != 2:
            return False
        table, pk = key
        for range_table, lo, hi in ranges:
            if range_table == table and lo <= pk <= hi:
                return True
        return False

    def _pending_slot_writers(self, txn, my_seq, key):
        """Active members sequenced before ``txn`` with an unresolved slot on key."""
        slots = self.engine.store.slot_writers(key)
        if not slots:
            return []
        pending = []
        for writer_id, seq in slots.items():
            if writer_id == txn.txn_id or seq >= my_seq:
                continue
            writer = self._active.get(writer_id)
            if writer is not None:
                pending.append(writer)
        return pending

    def _pending_range_writers(self, txn, my_seq, key_range):
        """Earlier-sequenced members with an unresolved slot inside the range."""
        store = self.engine.store
        pending = []
        for writer_id, seq in self._seqs.items():
            if writer_id == txn.txn_id or seq >= my_seq:
                continue
            writer = self._active.get(writer_id)
            if writer is None:
                continue
            for key in store.unresolved_slots_of(writer_id):
                if (
                    isinstance(key, tuple)
                    and len(key) == 2
                    and key[0] == key_range.table
                    and key_range.contains_pk(key[1])
                ):
                    pending.append(writer)
                    break
        return pending

    # -- admission & start phase -------------------------------------------------

    def admit(self, txn_type, args):
        """Park new arrivals while the backlog of sealed batches is full."""
        if self._inflight < self.max_inflight_batches:
            return None
        return self._admit_wait()

    def _admit_wait(self):
        while self._inflight >= self.max_inflight_batches:
            yield from self.admission.wait()

    def start(self, txn):
        batch = self._open_batch
        if batch is None:
            batch = self._open_batch = _Batch(
                self.env, name=f"batch-seal@{self.node.node_id}"
            )
            self.env.process(
                self._window(batch), name=f"batch-window@{self.node.node_id}"
            )
        batch.members.append(txn)
        self._active[txn.txn_id] = txn
        self.state(txn)["batch"] = batch
        if len(batch.members) >= self.batch_size:
            self._seal(batch)
        # Execution begins only once the batch seals and the member holds a
        # sequence position and declared slots.
        yield batch.sealed_event

    def _window(self, batch):
        yield self.env.timeout(self.batch_window)
        if not batch.sealed:
            self._seal(batch)

    def _seal(self, batch):
        """Sequencing step: total order, slot pre-declaration, dependency graph."""
        if batch.sealed:
            return
        batch.sealed = True
        if self._open_batch is batch:
            self._open_batch = None
        # Drop members that died while waiting for the seal (force-aborts).
        members = [txn for txn in batch.members if txn.txn_id in self._active]
        batch.members = members
        batch.remaining = len(members)
        if not members:
            batch.sealed_event.succeed()
            return
        self._inflight += 1
        self.batches_sealed += 1
        store = self.engine.store
        seqs = self._seqs
        for txn in members:
            seq = next(self._seq_counter)
            state = self.state(txn)
            state["seq"] = seq
            seqs[txn.txn_id] = seq
            profile = self.engine.profile_of(txn.txn_type)
            keys = ()
            if profile.promise_keys is not None:
                keys = tuple(profile.promise_keys(txn.args))
            state["write_keys"] = frozenset(keys)
            ranges = ()
            if profile.scan_ranges is not None:
                ranges = tuple(profile.scan_ranges(txn.args))
            state["scan_ranges"] = ranges
            # Dependency-graph build: an edge to every earlier-sequenced
            # active member whose declared writes intersect this member's
            # declared writes or scan ranges.  Reads are not declared;
            # read-write ordering is enforced at execution time by the slot
            # waits, which the same declared slots drive.
            preds = set()
            my_writes = state["write_keys"]
            for other_id, other_seq in seqs.items():
                if other_seq >= seq:
                    continue
                other = self._active.get(other_id)
                if other is None:
                    continue
                other_writes = self.state(other).get("write_keys", ())
                if not other_writes:
                    continue
                if my_writes and not my_writes.isdisjoint(other_writes):
                    preds.add(other_id)
                    continue
                if ranges and any(
                    self._key_in_ranges(key, ranges) for key in other_writes
                ):
                    preds.add(other_id)
            state["preds"] = preds
            self.graph_edges += len(preds)
            if keys:
                # Pre-assign version slots: later-sequenced readers and
                # writers wait on these instead of locks, and declared
                # inserts become enumerable to scans before they install.
                store.declare_slots(txn.txn_id, seq, keys)
        batch.sealed_event.succeed()

    # -- execution phase ----------------------------------------------------------

    def before_read(self, txn, key):
        """Wait until earlier-sequenced slots on ``key`` resolve."""
        my_seq = self._seq(txn)
        if not self._pending_slot_writers(txn, my_seq, key):
            return None
        return self.engine.wait_until(
            txn,
            predicate=lambda: not self._pending_slot_writers(txn, my_seq, key),
            condition=self.progress,
            blocker_fn=lambda: (
                self._pending_slot_writers(txn, my_seq, key) or [None]
            )[0],
            reason="batch-slot-wait",
        )

    def before_write(self, txn, key, value):
        state = self.state(txn)
        if key not in state.get("write_keys", ()):
            # The sequencing step never saw this write, so no slot exists and
            # the pre-decided dependency graph is wrong: the only safe move
            # is to abort (the profile under-declared its write set).
            self._abort(txn, "batch-undeclared-write")
        my_seq = state["seq"]
        # Installs happen in sequence order per key: wait for the
        # dependency-graph predecessors still holding unresolved slots here
        # (every earlier-sequenced slot holder on a declared key is, by the
        # seal-time graph build, one of this member's predecessors).
        if not self._pending_slot_writers(txn, my_seq, key):
            return None
        return self.engine.wait_until(
            txn,
            predicate=lambda: not self._pending_slot_writers(txn, my_seq, key),
            condition=self.progress,
            blocker_fn=lambda: (
                self._pending_slot_writers(txn, my_seq, key) or [None]
            )[0],
            reason="batch-install-order",
        )

    def before_scan(self, txn, key_range):
        """Phantom guard: drain earlier-sequenced declared writes in the range.

        Declared inserts are indexed when their slots are declared, so the
        engine's enumeration already sees keys that do not exist yet; this
        wait ensures every earlier-sequenced write (insert or update) inside
        the predicate has resolved before the per-key reads run.  Later-
        sequenced inserts are ordered after the scan by the sequence.
        """
        my_seq = self._seq(txn)
        if not self._pending_range_writers(txn, my_seq, key_range):
            return None
        return self.engine.wait_until(
            txn,
            predicate=lambda: not self._pending_range_writers(
                txn, my_seq, key_range
            ),
            condition=self.progress,
            blocker_fn=lambda: (
                self._pending_range_writers(txn, my_seq, key_range) or [None]
            )[0],
            reason="batch-scan-wait",
        )

    def select_version(self, txn, key):
        """Read the latest version in *sequence* order, uncommitted included."""
        store = self.engine.store
        own = store.own_uncommitted(key, txn.txn_id)
        if own is not None:
            return own
        my_seq = self._seq(txn)
        best = None
        best_seq = -1
        per_key = store.uncommitted_map(key)
        if per_key:
            for writer_id, version in per_key.items():
                seq = version.metadata.get("batch_seq")
                if seq is None or seq >= my_seq or seq <= best_seq:
                    continue
                if writer_id in self._active:
                    best, best_seq = version, seq
        if best is not None:
            return best
        # Members commit in sequence order, so a committed member version
        # sequenced after this transaction should be impossible while it is
        # active; the guard keeps reads sequence-consistent even if an
        # ancestor re-proposes the chain tail.
        for version in reversed(store.committed_versions(key)):
            seq = version.metadata.get("batch_seq")
            if seq is not None and seq >= my_seq:
                continue
            return version
        return None

    def after_write(self, txn, key, version):
        version.metadata["batch_seq"] = self._seq(txn)
        # Installing resolved this key's slot: wake slot waiters.
        self.progress.notify_all()

    # -- validation & commit -------------------------------------------------------

    def validate(self, txn):
        """Enter commit in sequence order; pipeline independent commits.

        Two waits, both pointing at earlier sequence positions only:

        1. Every earlier-sequenced active member must have *reached its own
           commit point* (stopped executing).  This guarantees that no member
           sequenced after an active transaction is ever visible to it as
           committed — which keeps delegating ancestors (whose amends may
           prefer the committed chain tail) consistent with the sequence —
           without serialising the commit phases of independent members into
           one 1/phase-delay bottleneck.
        2. Dependency-graph predecessors (declared write/scan overlaps) must
           *finish*, so per-key committed chains equal the pre-decided order
           even for blind writes that adopted no version.
        """
        state = self.state(txn)
        my_seq = state["seq"]
        # Mark the commit point first: later-sequenced members may stop
        # waiting on this transaction as soon as it stops executing.
        state["committing"] = True
        self.progress.notify_all()

        def _executing_earlier():
            pending = []
            for txn_id, seq in self._seqs.items():
                if seq >= my_seq:
                    continue
                other = self._active.get(txn_id)
                if other is not None and not self.state(other).get("committing"):
                    pending.append(other)
            return pending

        if _executing_earlier():
            yield from self.engine.wait_until(
                txn,
                predicate=lambda: not _executing_earlier(),
                condition=self.progress,
                blocker_fn=lambda: (_executing_earlier() or [None])[0],
                reason="batch-commit-order",
            )

        def _active_preds():
            active = self._active
            return [active[pred] for pred in state["preds"] if pred in active]

        if _active_preds():
            yield from self.engine.wait_for_progress(
                txn,
                blockers_fn=_active_preds,
                event_fn=lambda blocker: [blocker.finish_event],
                reason="batch-pred-commit",
            )
        deps = self.subtree_dependencies(txn)
        if deps:
            yield from self.engine.wait_for_transactions(txn, deps)

    def finish(self, txn, committed):
        self._active.pop(txn.txn_id, None)
        self._seqs.pop(txn.txn_id, None)
        state = self.state(txn)
        batch = state.get("batch")
        if batch is not None:
            if batch.sealed:
                batch.remaining -= 1
                if batch.remaining == 0:
                    self._inflight -= 1
                    self.admission.notify_all()
            else:
                try:
                    batch.members.remove(txn)
                except ValueError:
                    pass
        # Unwritten declared slots were retracted by the store at commit or
        # abort; wake anything waiting on them (or on this commit's order).
        self.progress.notify_all()

    def can_garbage_collect(self, epoch):
        return not self._active
