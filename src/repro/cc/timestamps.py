"""Centralized timestamp and batch management.

SSI and TSO order transactions with timestamps handed out by a centralized
timestamp server (Section 4.6 runs one extra machine for "timestamp assignment
and batch management").  In the simulation the oracle is a monotonic counter;
contacting it costs one network round-trip, charged by the engine.
"""

from itertools import count


class TimestampOracle:
    """Monotonically increasing logical timestamps."""

    def __init__(self, start=1):
        self._counter = count(start)
        self._last = start - 1
        self._reserved = {}
        self.duplicate_requests = 0

    def next(self):
        """Allocate and return the next timestamp."""
        self._last = next(self._counter)
        return self._last

    def next_for(self, token):
        """Idempotent allocation keyed by a request ``token``.

        The engine's degraded mode routes the start-phase timestamp
        round-trip through the message layer, where the request can be
        duplicated or retransmitted after a lost reply; the server must
        hand back the *same* timestamp for the same request, not burn a
        new one per arrival.  Repeated calls with one token return the
        first allocation and count the duplicate.
        """
        value = self._reserved.get(token)
        if value is not None:
            self.duplicate_requests += 1
            return value
        value = self.next()
        self._reserved[token] = value
        return value

    def release(self, token):
        """Forget a reservation (the requesting transaction finished)."""
        self._reserved.pop(token, None)

    @property
    def last(self):
        """The most recently allocated timestamp (0 if none)."""
        return self._last


class BatchManager:
    """Groups transactions of the same child group into timestamp batches.

    Batching is the paper's *procrastination* strategy (Section 4.2.2): all
    transactions of a batch share a start timestamp, so their relative order
    is left to the child CC.  Batches rotate after ``batch_size`` admissions
    or when :meth:`rotate` is called by a background process.
    """

    def __init__(self, oracle, batch_size=16):
        self.oracle = oracle
        self.batch_size = batch_size
        self._current = {}
        self._members = {}
        self._batch_ids = count(1)

    def admit(self, group_token):
        """Assign (batch_id, shared timestamp) for a transaction of a group."""
        entry = self._current.get(group_token)
        if entry is None or entry["count"] >= self.batch_size:
            entry = {
                "batch_id": next(self._batch_ids),
                "timestamp": self.oracle.next(),
                "count": 0,
            }
            self._current[group_token] = entry
        entry["count"] += 1
        batch_id = entry["batch_id"]
        self._members.setdefault(batch_id, set())
        return batch_id, entry["timestamp"]

    def register(self, batch_id, txn_id):
        self._members.setdefault(batch_id, set()).add(txn_id)

    def members(self, batch_id):
        return self._members.get(batch_id, set())

    def discard(self, batch_id, txn_id):
        self._members.get(batch_id, set()).discard(txn_id)

    def rotate(self, group_token=None):
        """Force the next admission (of one group or all) to open a new batch."""
        if group_token is None:
            self._current.clear()
        else:
            self._current.pop(group_token, None)
