"""Base class and registry for concurrency-control mechanisms.

A CC mechanism participates in the four-phase execution protocol of
Section 4.3.1.  Hooks that may need to block (waiting for locks, pipeline
steps, dependent commits...) return a coroutine (generator) for the engine
to drive; hooks that never block are plain methods returning ``None``.  The
engine drives exactly the non-``None`` results with ``yield from``, so a
hook must return either ``None`` or an iterable — nothing else.
"""

import inspect

from repro.errors import ConfigurationError

CC_REGISTRY = {}


def register_cc(cls):
    """Class decorator registering a CC mechanism under ``cls.name``."""
    if not getattr(cls, "name", None):
        raise ConfigurationError(f"CC class {cls.__name__} has no registry name")
    CC_REGISTRY[cls.name] = cls
    return cls


_ACCEPTED_PARAMS = {}

# Spec params that are cross-CC *annotations*: autoconf preprocessing records
# them on a group spec, and the optimizer may later re-assign the spec's CC.
# A mechanism that does not understand one simply does not receive it; every
# other (i.e. user-provided) param is passed through verbatim, so typos still
# fail fast with a TypeError.
_ANNOTATION_PARAMS = frozenset({"pipeline_steps", "pipeline_efficiency", "promises"})


def _accepted_params(cls):
    accepted = _ACCEPTED_PARAMS.get(cls)
    if accepted is None:
        accepted = _ACCEPTED_PARAMS[cls] = frozenset(
            inspect.signature(cls.__init__).parameters
        ) - {"self", "engine", "node"}
    return accepted


def create_cc(name, engine, node, params=None):
    """Instantiate a registered CC mechanism for a runtime tree node."""
    try:
        cls = CC_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown concurrency control {name!r}; known: {sorted(CC_REGISTRY)}"
        ) from None
    if not params:
        return cls(engine, node)
    accepted = _accepted_params(cls)
    kwargs = {
        key: value
        for key, value in params.items()
        if key in accepted or key not in _ANNOTATION_PARAMS
    }
    return cls(engine, node, **kwargs)


class ConcurrencyControl:
    """Interface every federated CC mechanism implements.

    Class attributes describe the mechanism to the automatic-configuration
    optimizer (Section 5.4.1's CC filters):

    * ``handles_contention`` — designed to improve heavily contended groups.
    * ``efficient_internal`` — can enforce consistent ordering efficiently as
      an internal (cross-group) node without resorting to batching.
    * ``requires_profiles`` — needs static transaction profiles (RP, chopping).
    * ``read_optimized`` — optimised for read-write conflicts (SSI).
    * ``write_optimized`` — optimised for write-write contention (RP, TSO).
    """

    name = ""
    handles_contention = True
    efficient_internal = True
    requires_profiles = False
    read_optimized = False
    write_optimized = False
    #: Whether partition-by-instance leaves (``instance_key``) may use this
    #: mechanism.  Sequencing mechanisms that impose one total order per
    #: group (deterministic batch) cannot be split into independent
    #: per-partition instances.
    supports_partitioning = True

    def __init__(self, engine, node):
        self.engine = engine
        self.node = node

    # -- helpers shared by mechanisms -----------------------------------------

    @property
    def env(self):
        return self.engine.env

    @property
    def is_leaf(self):
        return self.node.is_leaf

    def same_child_group(self, txn_a, txn_b):
        """True if both transactions fall in the same child subtree.

        At a leaf this is always False: a leaf delegates nothing, so every
        pair of its transactions conflicts normally.
        """
        if self.node.is_leaf:
            return False
        token_a = txn_a.group_token(self.node.node_id)
        token_b = txn_b.group_token(self.node.node_id)
        return token_a is not None and token_a == token_b

    def is_member(self, txn):
        """True if ``txn`` is regulated by this node (assigned to its subtree)."""
        return self.node.is_member(txn)

    def subtree_dependencies(self, txn):
        """Ids of ``txn``'s direct dependencies that belong to this subtree."""
        dependencies = txn.dependencies
        if not dependencies:
            return dependencies
        if self.node.parent is None:
            # The root regulates every transaction type, so membership never
            # filters anything (dependency ids always name real txns).
            return set(dependencies)
        deps = set()
        subtree_types = self.node.subtree_types
        for dep_id in dependencies:
            other = self.engine.find_transaction(dep_id)
            if other is not None and other.txn_type in subtree_types:
                deps.add(dep_id)
        return deps

    def state(self, txn, factory=dict):
        """Per-transaction scratch space private to this CC node."""
        return txn.state_for(self.node.node_id, factory)

    # -- four-phase protocol hooks ---------------------------------------------
    # Top-down pass hooks may block (return a generator for the engine to
    # drive, or None); bottom-up hooks are synchronous except
    # validate/pre_commit which may also block.

    def admit(self, txn_type, args):
        """Batched-admission gate, driven by the engine *before* ``begin``.

        Mechanisms that admit work in waves (deterministic batch execution)
        override this to park arriving transactions while their backlog of
        sealed-but-unfinished batches is full — the admission valve runs
        before the transaction exists, so parked work never inflates the
        active set, the dependency graph or the GC horizon.  Like the other
        hooks, return ``None`` to admit immediately or a generator for the
        engine to drive.
        """

    def start(self, txn):
        """Start phase, top-down: allocate metadata / timestamps / batches."""

    def before_read(self, txn, key):
        """Execution phase, top-down: constrain (block/abort) a read."""

    def before_update_read(self, txn, key):
        """Top-down hook for reads declared ``for_update``.

        Lock-based mechanisms override this to take the exclusive lock up
        front (avoiding upgrade deadlocks in read-modify-write transactions);
        the default treats it as an ordinary read.
        """
        return self.before_read(txn, key)

    def before_write(self, txn, key, value):
        """Execution phase, top-down: constrain (block/abort) a write."""

    def before_scan(self, txn, key_range):
        """Execution phase, top-down: constrain (block/abort) a range scan.

        Called once per scan with the :class:`~repro.storage.ranges.KeyRange`
        predicate *before* the engine enumerates the matching keys (each of
        which then goes through the ordinary per-key read path).  Mechanisms
        that must see predicates — range locks (2PL/RP), snapshot range read
        sets (SSI), timestamped range reads (TSO) — override this; the
        default leaves phantom handling to ancestors or to commit-time
        validation (OCC).
        """

    def select_version(self, txn, key):
        """Execution phase, bottom-up (leaf): propose the candidate version.

        The default proposal is the transaction's own uncommitted write if it
        wrote the key, otherwise the latest committed version.
        """
        own = self.engine.store.own_uncommitted(key, txn.txn_id)
        if own is not None:
            return own
        return self.engine.store.latest_committed(key)

    def amend_read(self, txn, key, candidate):
        """Execution phase, bottom-up (internal): amend the child's proposal."""
        return candidate

    def after_write(self, txn, key, version):
        """Execution phase, bottom-up: observe the installed version."""

    def validate(self, txn):
        """Validation phase: decide commit/abort and enforce consistent ordering.

        The default behaviour implements the *adoption* strategy: wait until
        every in-subtree dependency of ``txn`` has finished committing, so the
        ordering decided by children is respected (nexus-lock release order).
        """
        deps = self.subtree_dependencies(txn)
        if deps:
            yield from self.engine.wait_for_transactions(txn, deps)

    def pre_commit(self, txn):
        """Commit phase, before the storage module installs the writes."""

    def finish(self, txn, committed):
        """Called once after commit or abort: release resources, wake waiters."""

    # -- background services ----------------------------------------------------

    def can_garbage_collect(self, epoch):
        """Confirm no ongoing/future transaction can be ordered before ``epoch``."""
        return True

    def describe(self):
        return f"{self.name}@{self.node.node_id}"
