"""The queue/outbox workload: ordered-scan contention on a message queue."""

from repro.workloads.queue.workload import QUEUE_MIX, QueueWorkload

__all__ = ["QUEUE_MIX", "QueueWorkload"]
