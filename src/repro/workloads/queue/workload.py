"""A transactional queue/outbox workload built on ordered scans.

The transactional-outbox pattern (publish a message in the same transaction
as the state change, drain it with competing consumers) is a classic
contention shape none of the point-access workloads exercise: the *dequeue*
is a bounded ordered scan from the head of the queue, racing *enqueue*
inserts at the tail — exactly the scan-misses-concurrent-insert window
where MVCC serializability schemes historically leak phantoms.

Four transactions over a ``messages`` table and two pointer rows:

* **enqueue** — claim the next message id from the ``tail`` pointer and
  insert a pending message (a brand-new key: the phantom source).
* **dequeue** — read the ``head`` pointer for update, scan the window
  ``[head, head+window)`` in order, consume the first pending message and
  advance the head past it.
* **sweep** — scan the consumed prefix behind the head and delete drained
  messages (tombstones), bounding the live queue.
* **peek** — read-only: scan the window at the head and report the backlog.

The queue is loaded *short* (a few initial messages), so the dequeue window
overlaps the enqueue tail almost permanently — sustained scan-vs-insert
contention rather than an occasional corner case.
"""

from repro.analysis.profiles import TransactionProfile, TransactionType
from repro.storage.tables import Catalog, Table, TableSchema
from repro.workloads.base import Workload

PENDING = "pending"
CONSUMED = "consumed"

QUEUE_MIX = {
    "enqueue": 0.35,
    "dequeue": 0.35,
    "sweep": 0.10,
    "peek": 0.20,
}

UPDATE_TRANSACTIONS = ("enqueue", "dequeue", "sweep")
READ_ONLY_TRANSACTIONS = ("peek",)


class QueueWorkload(Workload):
    """Queue/outbox over the transactional key-value interface."""

    name = "queue"

    def __init__(self, initial_messages=6, window=8, payload_space=1000, seed=17):
        self.initial_messages = initial_messages
        self.window = window
        self.payload_space = payload_space
        self.seed = seed

    # -- schema -------------------------------------------------------------------

    def build_catalog(self):
        messages = Table(TableSchema("messages", ("m_id",), ("payload", "state")))
        pointers = Table(TableSchema("queue_ptr", ("name",), ("value",)))
        for m_id in range(1, self.initial_messages + 1):
            messages.insert((m_id,), {"payload": m_id * 13, "state": PENDING})
        pointers.insert(("head",), {"value": 1})
        pointers.insert(("tail",), {"value": self.initial_messages + 1})
        return Catalog([messages, pointers])

    # -- procedures -----------------------------------------------------------------

    def _enqueue(self, ctx, payload):
        pointer = yield from ctx.update(
            "queue_ptr", "tail", updates={"value": lambda v: (v or 1) + 1}
        )
        m_id = pointer["value"] - 1
        yield from ctx.write(
            "messages", m_id, row={"payload": payload, "state": PENDING}
        )
        return {"m_id": m_id}

    def _dequeue(self, ctx):
        pointer = yield from ctx.read("queue_ptr", "head", for_update=True)
        head = (pointer or {}).get("value", 1)
        window = yield from ctx.scan(
            "messages", lo=head, hi=head + self.window - 1
        )
        for m_id, row in window:
            if row.get("state") != PENDING:
                continue
            yield from ctx.write(
                "messages", m_id, row={**row, "state": CONSUMED}
            )
            yield from ctx.write("queue_ptr", "head", row={"value": m_id + 1})
            return {"m_id": m_id, "payload": row.get("payload")}
        return {"m_id": None, "empty": True}

    def _sweep(self, ctx):
        pointer = yield from ctx.read("queue_ptr", "head")
        head = (pointer or {}).get("value", 1)
        lo = max(head - self.window, 1)
        if lo >= head:
            return {"swept": 0}
        drained = yield from ctx.scan("messages", lo=lo, hi=head - 1)
        swept = 0
        for m_id, row in drained:
            if row.get("state") == CONSUMED:
                yield from ctx.delete("messages", m_id)
                swept += 1
        return {"swept": swept}

    def _peek(self, ctx):
        pointer = yield from ctx.read("queue_ptr", "head")
        head = (pointer or {}).get("value", 1)
        window = yield from ctx.scan(
            "messages", lo=head, hi=head + self.window - 1
        )
        pending = [m_id for m_id, row in window if row.get("state") == PENDING]
        return {"backlog": len(pending), "next": pending[0] if pending else None}

    # -- registration -------------------------------------------------------------------

    def build_transaction_types(self):
        profiles = {
            "enqueue": TransactionProfile(
                name="enqueue",
                accesses=(("queue_ptr", "w"), ("messages", "w")),
                description="claim the tail id and insert a pending message",
            ),
            "dequeue": TransactionProfile(
                name="dequeue",
                accesses=(
                    ("queue_ptr", "w"),
                    ("messages", "w"),
                    ("queue_ptr", "w"),
                ),
                description="scan from the head and consume the oldest pending message",
            ),
            "sweep": TransactionProfile(
                name="sweep",
                accesses=(("queue_ptr", "r"), ("messages", "w")),
                description="delete consumed messages behind the head",
            ),
            "peek": TransactionProfile(
                name="peek",
                accesses=(("queue_ptr", "r"), ("messages", "r")),
                read_only=True,
                description="report the pending backlog at the head",
            ),
        }
        procedures = {
            "enqueue": self._enqueue,
            "dequeue": self._dequeue,
            "sweep": self._sweep,
            "peek": self._peek,
        }
        return {
            name: TransactionType(
                name=name,
                procedure=procedures[name],
                profile=profiles[name],
                weight=QUEUE_MIX[name],
            )
            for name in profiles
        }

    def mix(self):
        return dict(QUEUE_MIX)

    # -- argument generation -----------------------------------------------------------

    def generate_args(self, rng, txn_type):
        if txn_type == "enqueue":
            return {"payload": rng.randrange(self.payload_space)}
        if txn_type in ("dequeue", "sweep", "peek"):
            return {}
        raise ValueError(f"unknown queue transaction {txn_type!r}")
