"""SmallBank banking workload (H-Store/OLTP-Bench lineage).

Six short transaction types over per-customer savings/checking rows, with a
hot-account knob concentrating contention on a few customers.
"""

from repro.workloads.smallbank.workload import SmallBankWorkload, SMALLBANK_MIX

__all__ = ["SmallBankWorkload", "SMALLBANK_MIX"]
