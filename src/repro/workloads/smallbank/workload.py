"""The SmallBank workload: six short banking transactions.

SmallBank (Alomari et al., the standard snapshot-isolation stress test, also
shipped with H-Store/OLTP-Bench) keeps a savings and a checking balance per
customer and mixes five update transactions with one read-only balance
probe.  The transactions are short — one to four row accesses — so CC
framework overhead and contention handling dominate, which is exactly the
regime where hierarchical CC composition must stay serializable.

Contention is tuned with the hot-account knob: with probability
``hot_probability`` a transaction draws its customers from the first
``hot_accounts`` ids instead of the whole population, mimicking the skewed
access pattern of the original benchmark.
"""

from repro.analysis.profiles import TransactionProfile, TransactionType
from repro.storage.tables import Catalog, Table, TableSchema
from repro.workloads.base import Workload


SMALLBANK_MIX = {
    "balance": 0.15,
    "deposit_checking": 0.15,
    "transact_savings": 0.15,
    "amalgamate": 0.15,
    "write_check": 0.15,
    "send_payment": 0.25,
}

UPDATE_TRANSACTIONS = (
    "deposit_checking",
    "transact_savings",
    "amalgamate",
    "write_check",
    "send_payment",
)
READ_ONLY_TRANSACTIONS = ("balance",)


class SmallBankWorkload(Workload):
    """SmallBank over the transactional key-value interface."""

    name = "smallbank"

    def __init__(self, customers=1000, hot_accounts=10, hot_probability=0.25,
                 initial_balance=10_000.0, seed=23):
        self.customers = customers
        self.hot_accounts = min(hot_accounts, customers)
        self.hot_probability = hot_probability
        self.initial_balance = initial_balance
        self.seed = seed

    # -- schema -------------------------------------------------------------------

    def build_catalog(self):
        account = Table(TableSchema("account", ("c_id",), ("name",)))
        savings = Table(TableSchema("savings", ("c_id",), ("balance",)))
        checking = Table(TableSchema("checking", ("c_id",), ("balance",)))
        for c_id in range(1, self.customers + 1):
            account.insert((c_id,), {"name": f"customer-{c_id}"})
            savings.insert((c_id,), {"balance": self.initial_balance})
            checking.insert((c_id,), {"balance": self.initial_balance})
        return Catalog([account, savings, checking])

    # -- procedures -----------------------------------------------------------------

    def _balance(self, ctx, c_id):
        savings = yield from ctx.read("savings", c_id)
        checking = yield from ctx.read("checking", c_id)
        total = (savings or {}).get("balance", 0.0) + (checking or {}).get("balance", 0.0)
        return {"balance": total}

    def _deposit_checking(self, ctx, c_id, amount):
        row = yield from ctx.update(
            "checking", c_id, updates={"balance": lambda v: (v or 0.0) + amount}
        )
        return {"ok": True, "balance": row["balance"]}

    def _transact_savings(self, ctx, c_id, amount):
        savings = yield from ctx.read("savings", c_id, for_update=True)
        balance = (savings or {}).get("balance", 0.0)
        if balance + amount < 0:
            return {"ok": False, "balance": balance}
        yield from ctx.write("savings", c_id, row={"balance": balance + amount})
        return {"ok": True, "balance": balance + amount}

    def _amalgamate(self, ctx, from_c_id, to_c_id):
        savings = yield from ctx.read("savings", from_c_id, for_update=True)
        checking = yield from ctx.read("checking", from_c_id, for_update=True)
        total = (savings or {}).get("balance", 0.0) + (checking or {}).get("balance", 0.0)
        yield from ctx.write("savings", from_c_id, row={"balance": 0.0})
        yield from ctx.write("checking", from_c_id, row={"balance": 0.0})
        yield from ctx.update(
            "checking", to_c_id, updates={"balance": lambda v: (v or 0.0) + total}
        )
        return {"ok": True, "moved": total}

    def _write_check(self, ctx, c_id, amount):
        savings = yield from ctx.read("savings", c_id)
        checking = yield from ctx.read("checking", c_id, for_update=True)
        total = (savings or {}).get("balance", 0.0) + (checking or {}).get("balance", 0.0)
        # Overdraft penalty, as in the original benchmark.
        charge = amount + 1.0 if total < amount else amount
        balance = (checking or {}).get("balance", 0.0) - charge
        yield from ctx.write("checking", c_id, row={"balance": balance})
        return {"ok": True, "balance": balance, "penalty": charge != amount}

    def _send_payment(self, ctx, from_c_id, to_c_id, amount):
        # Touch checking rows in customer-id order so concurrent opposite
        # direction payments cannot deadlock under lock-based CCs.
        rows = {}
        for c_id in sorted({from_c_id, to_c_id}):
            rows[c_id] = yield from ctx.read("checking", c_id, for_update=True)
        balance = (rows[from_c_id] or {}).get("balance", 0.0)
        if balance < amount:
            return {"ok": False, "balance": balance}
        yield from ctx.write("checking", from_c_id, row={"balance": balance - amount})
        to_balance = (rows[to_c_id] or {}).get("balance", 0.0)
        if from_c_id == to_c_id:
            to_balance = balance - amount
        yield from ctx.write("checking", to_c_id, row={"balance": to_balance + amount})
        return {"ok": True}

    # -- registration -------------------------------------------------------------------

    def build_transaction_types(self):
        profiles = {
            "balance": TransactionProfile(
                name="balance",
                accesses=(("savings", "r"), ("checking", "r")),
                read_only=True,
                description="read a customer's combined balance",
            ),
            "deposit_checking": TransactionProfile(
                name="deposit_checking",
                accesses=(("checking", "w"),),
                description="deposit into a checking account",
            ),
            "transact_savings": TransactionProfile(
                name="transact_savings",
                accesses=(("savings", "w"),),
                description="deposit into / withdraw from a savings account",
            ),
            "amalgamate": TransactionProfile(
                name="amalgamate",
                accesses=(("savings", "w"), ("checking", "w")),
                description="move all funds of one customer to another",
            ),
            "write_check": TransactionProfile(
                name="write_check",
                accesses=(("savings", "r"), ("checking", "w")),
                description="cash a check against the combined balance",
            ),
            "send_payment": TransactionProfile(
                name="send_payment",
                accesses=(("checking", "w"),),
                description="transfer between two checking accounts",
            ),
        }
        procedures = {
            "balance": self._balance,
            "deposit_checking": self._deposit_checking,
            "transact_savings": self._transact_savings,
            "amalgamate": self._amalgamate,
            "write_check": self._write_check,
            "send_payment": self._send_payment,
        }
        return {
            name: TransactionType(
                name=name,
                procedure=procedures[name],
                profile=profiles[name],
                weight=SMALLBANK_MIX[name],
            )
            for name in profiles
        }

    def mix(self):
        return dict(SMALLBANK_MIX)

    # -- argument generation -----------------------------------------------------------

    def _customer(self, rng):
        if self.hot_accounts and rng.random() < self.hot_probability:
            return rng.randint(1, self.hot_accounts)
        return rng.randint(1, self.customers)

    def _customer_pair(self, rng):
        first = self._customer(rng)
        second = self._customer(rng)
        # Bounded retries: a degenerate hot set (hot_accounts=1 with
        # hot_probability=1.0) would otherwise never draw a distinct id.
        for _attempt in range(8):
            if second != first or self.customers <= 1:
                break
            second = self._customer(rng)
        if second == first and self.customers > 1:
            second = first % self.customers + 1
        return first, second

    def generate_args(self, rng, txn_type):
        if txn_type == "balance":
            return {"c_id": self._customer(rng)}
        if txn_type == "deposit_checking":
            return {"c_id": self._customer(rng), "amount": round(rng.uniform(1.0, 100.0), 2)}
        if txn_type == "transact_savings":
            amount = round(rng.uniform(-50.0, 100.0), 2)
            return {"c_id": self._customer(rng), "amount": amount}
        if txn_type == "amalgamate":
            from_c_id, to_c_id = self._customer_pair(rng)
            return {"from_c_id": from_c_id, "to_c_id": to_c_id}
        if txn_type == "write_check":
            return {"c_id": self._customer(rng), "amount": round(rng.uniform(1.0, 150.0), 2)}
        if txn_type == "send_payment":
            from_c_id, to_c_id = self._customer_pair(rng)
            return {
                "from_c_id": from_c_id,
                "to_c_id": to_c_id,
                "amount": round(rng.uniform(1.0, 75.0), 2),
            }
        raise ValueError(f"unknown SmallBank transaction {txn_type!r}")
