"""Benchmark workloads: TPC-C, SEATS and the paper's microbenchmarks."""

from repro.workloads.base import Workload

__all__ = ["Workload"]
