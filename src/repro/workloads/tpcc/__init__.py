"""TPC-C workload adapted to the transactional key-value interface (§4.6)."""

from repro.workloads.tpcc.workload import TPCCWorkload, TPCC_STANDARD_MIX, TPCC_HOT_ITEM_MIX

__all__ = ["TPCCWorkload", "TPCC_STANDARD_MIX", "TPCC_HOT_ITEM_MIX"]
