"""The TPC-C workload: mix, argument generation and scale handling."""

import random
from functools import partial

from repro.analysis.profiles import TransactionType
from repro.workloads.base import Workload
from repro.workloads.tpcc import transactions as procs
from repro.workloads.tpcc.schema import TPCCScale, build_catalog, customer_last_name


#: The contention-heavy closed-loop mix used throughout the evaluation.
TPCC_STANDARD_MIX = {
    "new_order": 0.45,
    "payment": 0.43,
    "delivery": 0.04,
    "order_status": 0.04,
    "stock_level": 0.04,
}

#: Mix used by the extensibility experiment (Section 4.6.3).
TPCC_HOT_ITEM_MIX = {
    "new_order": 0.418,
    "payment": 0.418,
    "delivery": 0.041,
    "order_status": 0.041,
    "stock_level": 0.041,
    "hot_item": 0.041,
}

#: Mix with the by-name payment variant: TPC-C addresses 60% of payments by
#: customer last name (clause 2.5.1.2), so the standard payment share is
#: split 60/40 between the scan-based and the by-id variant.
TPCC_PAYMENT_BY_NAME_MIX = {
    "new_order": 0.45,
    "payment": 0.172,
    "payment_by_name": 0.258,
    "delivery": 0.04,
    "order_status": 0.04,
    "stock_level": 0.04,
}


class TPCCWorkload(Workload):
    """TPC-C adapted to the key-value interface (Section 4.6.1)."""

    name = "tpcc"

    def __init__(
        self,
        warehouses=2,
        scale=None,
        seed=42,
        include_hot_item=False,
        include_payment_by_name=False,
        deadlock_prone_new_order=False,
        disjoint_warehouses=False,
        remote_item_probability=0.01,
    ):
        self.scale = scale or TPCCScale(warehouses=warehouses)
        self.seed = seed
        self.include_hot_item = include_hot_item
        self.include_payment_by_name = include_payment_by_name
        self.deadlock_prone_new_order = deadlock_prone_new_order
        self.disjoint_warehouses = disjoint_warehouses
        self.remote_item_probability = remote_item_probability

    # -- schema / registration -------------------------------------------------

    def build_catalog(self):
        return build_catalog(self.scale, random.Random(self.seed))

    def build_transaction_types(self):
        names = ["new_order", "payment", "delivery", "order_status", "stock_level"]
        if self.include_payment_by_name:
            names.insert(2, "payment_by_name")
        if self.include_hot_item:
            names.append("hot_item")
        types = {}
        for name in names:
            procedure = procs.PROCEDURES[name]
            if name == "new_order" and self.deadlock_prone_new_order:
                procedure = partial(procs.new_order, deadlock_prone=True)
            types[name] = TransactionType(
                name=name,
                procedure=procedure,
                profile=procs.PROFILES[name],
                weight=self.mix().get(name, 0.04),
            )
        return types

    def mix(self):
        if self.include_hot_item:
            return dict(TPCC_HOT_ITEM_MIX)
        if self.include_payment_by_name:
            return dict(TPCC_PAYMENT_BY_NAME_MIX)
        return dict(TPCC_STANDARD_MIX)

    # -- argument generation ------------------------------------------------------

    def _warehouse_for(self, rng, txn_type):
        warehouses = self.scale.warehouses
        if self.disjoint_warehouses and warehouses > 1:
            # Table 3.1 "no conflict" column: stock_level and new_order are
            # artificially restricted to disjoint warehouse ranges.
            half = max(warehouses // 2, 1)
            if txn_type == "stock_level":
                return rng.randint(half + 1, warehouses)
            return rng.randint(1, half)
        return rng.randint(1, warehouses)

    def generate_args(self, rng, txn_type):
        scale = self.scale
        w_id = self._warehouse_for(rng, txn_type)
        d_id = rng.randint(1, scale.districts_per_warehouse)
        if txn_type == "new_order":
            item_count = rng.randint(scale.min_order_lines, scale.max_order_lines)
            item_ids = rng.sample(range(1, scale.items + 1), item_count)
            items = []
            for i_id in sorted(item_ids):
                supply_w_id = w_id
                if scale.warehouses > 1 and rng.random() < self.remote_item_probability:
                    supply_w_id = rng.randint(1, scale.warehouses)
                items.append((i_id, supply_w_id, rng.randint(1, 10)))
            return {
                "w_id": w_id,
                "d_id": d_id,
                "c_id": rng.randint(1, scale.customers_per_district),
                "items": items,
            }
        if txn_type == "payment":
            c_w_id, c_d_id = w_id, d_id
            if scale.warehouses > 1 and rng.random() < 0.15:
                c_w_id = rng.randint(1, scale.warehouses)
                c_d_id = rng.randint(1, scale.districts_per_warehouse)
            return {
                "w_id": w_id,
                "d_id": d_id,
                "c_w_id": c_w_id,
                "c_d_id": c_d_id,
                "c_id": rng.randint(1, scale.customers_per_district),
                "h_amount": round(rng.uniform(1.0, 5000.0), 2),
            }
        if txn_type == "payment_by_name":
            c_w_id, c_d_id = w_id, d_id
            if scale.warehouses > 1 and rng.random() < 0.15:
                c_w_id = rng.randint(1, scale.warehouses)
                c_d_id = rng.randint(1, scale.districts_per_warehouse)
            # Drawing the name through a random loaded customer id matches
            # the loaded name distribution, so scans rarely come up empty.
            c_last = customer_last_name(rng.randint(1, scale.customers_per_district))
            return {
                "w_id": w_id,
                "d_id": d_id,
                "c_w_id": c_w_id,
                "c_d_id": c_d_id,
                "c_last": c_last,
                "h_amount": round(rng.uniform(1.0, 5000.0), 2),
            }
        if txn_type == "delivery":
            districts = list(range(1, scale.districts_per_warehouse + 1))
            return {"w_id": w_id, "carrier_id": rng.randint(1, 10), "districts": districts}
        if txn_type == "order_status":
            return {
                "w_id": w_id,
                "d_id": d_id,
                "c_id": rng.randint(1, scale.customers_per_district),
            }
        if txn_type == "stock_level":
            return {"w_id": w_id, "d_id": d_id, "threshold": rng.randint(10, 20)}
        if txn_type == "hot_item":
            return {"w_id": w_id, "d_id": d_id}
        raise ValueError(f"unknown TPC-C transaction {txn_type!r}")
