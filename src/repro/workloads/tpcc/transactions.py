"""TPC-C stored procedures and static profiles.

The five standard transactions (new_order, payment, delivery, order_status,
stock_level) follow the adaptation of Section 4.6.1, and hot_item is the
extensibility transaction of Figure 4.9.  Each procedure is a generator using
the :class:`~repro.core.context.TransactionContext` API, and each has a
static :class:`~repro.analysis.profiles.TransactionProfile` describing its
table-access order for the runtime-pipelining static analysis.
"""

from repro.analysis.profiles import TransactionProfile


# ---------------------------------------------------------------------------
# Stored procedures
# ---------------------------------------------------------------------------

def new_order(ctx, w_id, d_id, c_id, items, deadlock_prone=False):
    """Place a new order: the contention hot spots are district and stock."""
    warehouse = yield from ctx.read("warehouse", w_id)
    if deadlock_prone:
        # Preferred RP ordering that reads stock before touching district;
        # under a cross-group 2PL this ordering deadlocks with stock_level
        # (Table 3.1 "Separate - Deadlock" column).
        stock_rows = []
        for i_id, _supply_w, _qty in items:
            stock_row = yield from ctx.read("stock", w_id, i_id, for_update=True)
            stock_rows.append(stock_row)
        district = yield from ctx.update(
            "district", w_id, d_id, updates={"d_next_o_id": lambda v: (v or 1) + 1}
        )
        o_id = district["d_next_o_id"] - 1
    else:
        district = yield from ctx.update(
            "district", w_id, d_id, updates={"d_next_o_id": lambda v: (v or 1) + 1}
        )
        o_id = district["d_next_o_id"] - 1
        stock_rows = None
    yield from ctx.write(
        "orders", w_id, d_id, o_id,
        row={
            "o_c_id": c_id,
            "o_carrier_id": None,
            "o_ol_cnt": len(items),
            "o_entry_d": ctx.now,
        },
    )
    yield from ctx.write("new_order", w_id, d_id, o_id, row={})
    # Operations are grouped by table (all item reads, then all stock updates,
    # then all order_line inserts): this is the reordering runtime pipelining's
    # preprocessing performs so that each table maps to one pipeline step.
    prices = []
    for i_id, _supply_w_id, _quantity in items:
        item = yield from ctx.read("item", i_id)
        prices.append((item or {}).get("i_price", 1.0))
    for index, (i_id, supply_w_id, quantity) in enumerate(items, start=1):
        if stock_rows is not None:
            stock = stock_rows[index - 1]
            new_quantity = max((stock or {}).get("s_quantity", 100) - quantity, 0) or 91
            yield from ctx.write(
                "stock", supply_w_id, i_id,
                row={
                    "s_quantity": new_quantity,
                    "s_ytd": (stock or {}).get("s_ytd", 0) + quantity,
                    "s_order_cnt": (stock or {}).get("s_order_cnt", 0) + 1,
                    "s_remote_cnt": (stock or {}).get("s_remote_cnt", 0),
                },
            )
        else:
            yield from ctx.update(
                "stock", supply_w_id, i_id,
                updates={
                    "s_quantity": lambda v, q=quantity: (v if v and v > q else 100) - q,
                    "s_ytd": lambda v, q=quantity: (v or 0) + q,
                    "s_order_cnt": lambda v: (v or 0) + 1,
                },
            )
    total_amount = 0.0
    for index, (i_id, supply_w_id, quantity) in enumerate(items, start=1):
        amount = quantity * prices[index - 1]
        total_amount += amount
        yield from ctx.write(
            "order_line", w_id, d_id, o_id, index,
            row={
                "ol_i_id": i_id,
                "ol_supply_w_id": supply_w_id,
                "ol_quantity": quantity,
                "ol_amount": amount,
                "ol_delivery_d": None,
            },
        )
    customer = yield from ctx.read("customer", w_id, d_id, c_id)
    yield from ctx.write("customer_last_order", w_id, d_id, c_id, row={"o_id": o_id})
    tax = (warehouse or {}).get("w_tax", 0.0) + (district or {}).get("d_tax", 0.0)
    return {"o_id": o_id, "total": round(total_amount * (1 + tax), 2), "customer": customer}


def payment(ctx, w_id, d_id, c_w_id, c_d_id, c_id, h_amount):
    """Record a customer payment against warehouse, district and customer."""
    yield from ctx.update(
        "warehouse", w_id, updates={"w_ytd": lambda v: (v or 0.0) + h_amount}
    )
    yield from ctx.update(
        "district", w_id, d_id, updates={"d_ytd": lambda v: (v or 0.0) + h_amount}
    )
    customer = yield from ctx.update(
        "customer", c_w_id, c_d_id, c_id,
        updates={
            "c_balance": lambda v: (v or 0.0) - h_amount,
            "c_ytd_payment": lambda v: (v or 0.0) + h_amount,
            "c_payment_cnt": lambda v: (v or 0) + 1,
        },
    )
    history_id = (w_id, d_id, c_id, ctx.txn_id)
    yield from ctx.write(
        "history", history_id,
        row={"w_id": w_id, "d_id": d_id, "c_id": c_id, "amount": h_amount},
    )
    return {"customer": customer}


def payment_by_name(ctx, w_id, d_id, c_w_id, c_d_id, c_last, h_amount):
    """Payment addressed by customer last name (TPC-C clause 2.5.2.2).

    The customer is located with a prefix scan over the
    ``customer_name_idx`` secondary index; per the specification the
    midpoint customer (position ``ceil(n/2)``) of the name's ordered
    candidate set receives the payment.  A name with no customers is a
    no-op (the spec resubmits with a different name; the closed-loop
    harness just draws a new transaction).
    """
    matches = yield from ctx.scan(
        "customer_name_idx", prefix=(c_w_id, c_d_id, c_last)
    )
    if not matches:
        return {"customer": None, "matched": 0}
    c_ids = sorted(pk[3] for pk, _row in matches)
    c_id = c_ids[(len(c_ids) - 1) // 2]
    result = yield from payment(ctx, w_id, d_id, c_w_id, c_d_id, c_id, h_amount)
    return {"customer": result["customer"], "matched": len(c_ids), "c_id": c_id}


def delivery(ctx, w_id, carrier_id, districts):
    """Deliver the oldest undelivered order of each district.

    The per-district loop revisits new_order_ptr after touching orders,
    order_line and customer, so under runtime pipelining all of delivery's
    tables collapse into a single merged step (its profile declares the loop).
    """
    delivered = []
    for d_id in districts:
        pointer = yield from ctx.read("new_order_ptr", w_id, d_id, for_update=True)
        o_id = (pointer or {}).get("first_undelivered", 1)
        order = yield from ctx.read("orders", w_id, d_id, o_id, for_update=True)
        if order is None:
            continue
        yield from ctx.write(
            "new_order_ptr", w_id, d_id, row={"first_undelivered": o_id + 1}
        )
        yield from ctx.delete("new_order", w_id, d_id, o_id)
        yield from ctx.write(
            "orders", w_id, d_id, o_id,
            row={**order, "o_carrier_id": carrier_id},
        )
        amount = 0.0
        for ol_number in range(1, order.get("o_ol_cnt", 0) + 1):
            line = yield from ctx.read(
                "order_line", w_id, d_id, o_id, ol_number, for_update=True
            )
            if line is None:
                continue
            amount += line.get("ol_amount", 0.0)
            yield from ctx.write(
                "order_line", w_id, d_id, o_id, ol_number,
                row={**line, "ol_delivery_d": ctx.now},
            )
        yield from ctx.update(
            "customer", w_id, d_id, order.get("o_c_id", 1),
            updates={
                "c_balance": lambda v, a=amount: (v or 0.0) + a,
                "c_delivery_cnt": lambda v: (v or 0) + 1,
            },
        )
        delivered.append((d_id, o_id))
    return {"delivered": delivered}


def order_status(ctx, w_id, d_id, c_id):
    """Read-only: a customer's balance and the status of their latest order."""
    customer = yield from ctx.read("customer", w_id, d_id, c_id)
    index_row = yield from ctx.read("customer_last_order", w_id, d_id, c_id)
    lines = []
    order = None
    if index_row is not None:
        o_id = index_row.get("o_id")
        order = yield from ctx.read("orders", w_id, d_id, o_id)
        for ol_number in range(1, (order or {}).get("o_ol_cnt", 0) + 1):
            line = yield from ctx.read("order_line", w_id, d_id, o_id, ol_number)
            if line is not None:
                lines.append(line)
    return {"customer": customer, "order": order, "lines": lines}


def stock_level(ctx, w_id, d_id, threshold, recent_orders=5):
    """Read-only: count recently-sold items whose stock is below a threshold."""
    district = yield from ctx.read("district", w_id, d_id)
    next_o_id = (district or {}).get("d_next_o_id", 1)
    orders = []
    for o_id in range(max(next_o_id - recent_orders, 1), next_o_id):
        order = yield from ctx.read("orders", w_id, d_id, o_id)
        if order is not None:
            orders.append((o_id, order.get("o_ol_cnt", 0)))
    item_ids = set()
    for o_id, ol_cnt in orders:
        for ol_number in range(1, ol_cnt + 1):
            line = yield from ctx.read("order_line", w_id, d_id, o_id, ol_number)
            if line is not None:
                item_ids.add(line.get("ol_i_id"))
    low_stock_items = set()
    for i_id in sorted(item_ids):
        stock = yield from ctx.read("stock", w_id, i_id)
        if stock is not None and stock.get("s_quantity", 100) < threshold:
            low_stock_items.add(i_id)
    return {"low_stock": len(low_stock_items)}


def hot_item(ctx, w_id, d_id, recent_orders=3):
    """Extensibility transaction (Figure 4.9): aggregate per-item sale counts."""
    district = yield from ctx.read("district", w_id, d_id)
    next_o_id = (district or {}).get("d_next_o_id", 1)
    orders = []
    for o_id in range(max(next_o_id - recent_orders, 1), next_o_id):
        order = yield from ctx.read("orders", w_id, d_id, o_id)
        if order is not None:
            orders.append((o_id, order.get("o_ol_cnt", 0)))
    touched = []
    for o_id, ol_cnt in orders:
        for ol_number in range(1, ol_cnt + 1):
            line = yield from ctx.read("order_line", w_id, d_id, o_id, ol_number)
            if line is not None:
                touched.append(line.get("ol_i_id"))
    for i_id in sorted(set(touched)):
        yield from ctx.update(
            "item_stats", i_id, updates={"sale_count": lambda v: (v or 0) + 1}
        )
    return {"items": touched}


# ---------------------------------------------------------------------------
# Static profiles (table access order as executed above)
# ---------------------------------------------------------------------------

PROFILES = {
    "new_order": TransactionProfile(
        name="new_order",
        accesses=(
            ("warehouse", "r"),
            ("district", "w"),
            ("orders", "w"),
            ("new_order", "w"),
            ("item", "r"),
            ("stock", "w"),
            ("order_line", "w"),
            ("customer", "r"),
            ("customer_last_order", "w"),
        ),
        description="place a new order (heavy district/stock contention)",
    ),
    "payment": TransactionProfile(
        name="payment",
        accesses=(
            ("warehouse", "w"),
            ("district", "w"),
            ("customer", "w"),
            ("history", "w"),
        ),
        description="record a payment (heavy warehouse/district contention)",
    ),
    "payment_by_name": TransactionProfile(
        name="payment_by_name",
        accesses=(
            ("customer_name_idx", "r"),
            ("warehouse", "w"),
            ("district", "w"),
            ("customer", "w"),
            ("history", "w"),
        ),
        description="record a payment located by a customer-last-name scan",
    ),
    "delivery": TransactionProfile(
        name="delivery",
        accesses=(
            ("new_order_ptr", "w"),
            ("orders", "w"),
            ("new_order", "w"),
            ("order_line", "w"),
            ("customer", "w"),
            # The per-district loop revisits the first table, merging these
            # tables into one pipeline step under runtime pipelining.
            ("new_order_ptr", "w"),
        ),
        description="deliver the oldest undelivered orders",
    ),
    "order_status": TransactionProfile(
        name="order_status",
        accesses=(
            ("customer", "r"),
            ("customer_last_order", "r"),
            ("orders", "r"),
            ("order_line", "r"),
        ),
        read_only=True,
        description="read a customer's latest order",
    ),
    "stock_level": TransactionProfile(
        name="stock_level",
        accesses=(
            ("district", "r"),
            ("orders", "r"),
            ("order_line", "r"),
            ("stock", "r"),
        ),
        read_only=True,
        description="count low-stock items over recent orders",
    ),
    "hot_item": TransactionProfile(
        name="hot_item",
        accesses=(
            ("district", "r"),
            ("orders", "r"),
            ("order_line", "r"),
            ("item_stats", "w"),
        ),
        description="aggregate per-item sale counts over recent orders",
    ),
}

PROCEDURES = {
    "new_order": new_order,
    "payment": payment,
    "payment_by_name": payment_by_name,
    "delivery": delivery,
    "order_status": order_status,
    "stock_level": stock_level,
    "hot_item": hot_item,
}
