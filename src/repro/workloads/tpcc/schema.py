"""TPC-C schema and initial population, adapted to the key-value interface.

The adaptation follows Section 4.6: a separate table serves as a secondary
index locating a customer's latest order, and cardinalities are configurable
so that laptop-scale runs stay fast while preserving the contention
structure (hot ``warehouse`` and ``district`` rows, per-item ``stock``
rows).  The paper's adaptation dropped customer-last-name scans; with
first-class range scans in the storage layer they are back:
``customer_name_idx`` is a secondary index keyed
``(w_id, d_id, c_last, c_id)`` whose prefix scan serves the
payment-by-name lookup (customers share TPC-C's syllable-generated last
names, so a name resolves to a small ordered candidate set).
"""

from dataclasses import dataclass

from repro.storage.tables import Catalog, Table, TableSchema

#: The TPC-C last-name syllables (clause 4.3.2.3).
LAST_NAME_SYLLABLES = (
    "BAR", "OUGHT", "ABLE", "PRI", "PRES",
    "ESE", "ANTI", "CALLY", "ATION", "EING",
)


def last_name_for(number):
    """The TPC-C last name of a customer number (three base-10 syllables)."""
    number = number % 1000
    return (
        LAST_NAME_SYLLABLES[number // 100]
        + LAST_NAME_SYLLABLES[(number // 10) % 10]
        + LAST_NAME_SYLLABLES[number % 10]
    )


def customer_last_name(c_id):
    """The deterministic last name assigned to customer ``c_id`` at load.

    Customers cycle through 100 distinct names, so every district of a
    laptop-scale population has a handful of customers per name — the
    by-name scan returns a small, non-trivial candidate set.
    """
    return last_name_for((c_id - 1) % 100)


@dataclass
class TPCCScale:
    """Scale parameters of the TPC-C population."""

    warehouses: int = 2
    districts_per_warehouse: int = 10
    customers_per_district: int = 200
    items: int = 5000
    initial_orders_per_district: int = 150
    max_order_lines: int = 8
    min_order_lines: int = 3


TABLES = {
    "warehouse": TableSchema("warehouse", ("w_id",), ("w_name", "w_ytd", "w_tax")),
    "district": TableSchema(
        "district", ("w_id", "d_id"), ("d_name", "d_ytd", "d_tax", "d_next_o_id")
    ),
    "customer": TableSchema(
        "customer",
        ("w_id", "d_id", "c_id"),
        (
            "c_name",
            "c_last",
            "c_balance",
            "c_ytd_payment",
            "c_payment_cnt",
            "c_delivery_cnt",
        ),
    ),
    # Secondary index for payment-by-name: prefix (w_id, d_id, c_last) scans
    # enumerate the matching customer ids in order.
    "customer_name_idx": TableSchema(
        "customer_name_idx", ("w_id", "d_id", "c_last", "c_id"), ()
    ),
    "history": TableSchema("history", ("h_id",), ("w_id", "d_id", "c_id", "amount")),
    "orders": TableSchema(
        "orders",
        ("w_id", "d_id", "o_id"),
        ("o_c_id", "o_carrier_id", "o_ol_cnt", "o_entry_d"),
    ),
    "new_order": TableSchema("new_order", ("w_id", "d_id", "o_id"), ()),
    "new_order_ptr": TableSchema(
        "new_order_ptr", ("w_id", "d_id"), ("first_undelivered",)
    ),
    "order_line": TableSchema(
        "order_line",
        ("w_id", "d_id", "o_id", "ol_number"),
        ("ol_i_id", "ol_supply_w_id", "ol_quantity", "ol_amount", "ol_delivery_d"),
    ),
    "item": TableSchema("item", ("i_id",), ("i_name", "i_price")),
    "stock": TableSchema(
        "stock", ("w_id", "i_id"), ("s_quantity", "s_ytd", "s_order_cnt", "s_remote_cnt")
    ),
    "customer_last_order": TableSchema(
        "customer_last_order", ("w_id", "d_id", "c_id"), ("o_id",)
    ),
    "item_stats": TableSchema("item_stats", ("i_id",), ("sale_count",)),
}


def build_catalog(scale, rng):
    """Populate a full TPC-C catalog for the given scale."""
    tables = {name: Table(schema) for name, schema in TABLES.items()}

    for w_id in range(1, scale.warehouses + 1):
        tables["warehouse"].insert(
            (w_id,), {"w_name": f"W{w_id}", "w_ytd": 0.0, "w_tax": 0.05}
        )
        for i_id in range(1, scale.items + 1):
            tables["stock"].insert(
                (w_id, i_id),
                {"s_quantity": 100, "s_ytd": 0, "s_order_cnt": 0, "s_remote_cnt": 0},
            )
        for d_id in range(1, scale.districts_per_warehouse + 1):
            next_o_id = scale.initial_orders_per_district + 1
            tables["district"].insert(
                (w_id, d_id),
                {
                    "d_name": f"D{w_id}.{d_id}",
                    "d_ytd": 0.0,
                    "d_tax": 0.07,
                    "d_next_o_id": next_o_id,
                },
            )
            tables["new_order_ptr"].insert((w_id, d_id), {"first_undelivered": 1})
            for c_id in range(1, scale.customers_per_district + 1):
                c_last = customer_last_name(c_id)
                tables["customer"].insert(
                    (w_id, d_id, c_id),
                    {
                        "c_name": f"C{c_id}",
                        "c_last": c_last,
                        "c_balance": 0.0,
                        "c_ytd_payment": 0.0,
                        "c_payment_cnt": 0,
                        "c_delivery_cnt": 0,
                    },
                )
                tables["customer_name_idx"].insert((w_id, d_id, c_last, c_id), {})
            for o_id in range(1, scale.initial_orders_per_district + 1):
                c_id = rng.randint(1, scale.customers_per_district)
                ol_cnt = rng.randint(scale.min_order_lines, scale.max_order_lines)
                tables["orders"].insert(
                    (w_id, d_id, o_id),
                    {"o_c_id": c_id, "o_carrier_id": None, "o_ol_cnt": ol_cnt, "o_entry_d": 0.0},
                )
                tables["customer_last_order"].insert((w_id, d_id, c_id), {"o_id": o_id})
                tables["new_order"].insert((w_id, d_id, o_id), {})
                for ol_number in range(1, ol_cnt + 1):
                    i_id = rng.randint(1, scale.items)
                    tables["order_line"].insert(
                        (w_id, d_id, o_id, ol_number),
                        {
                            "ol_i_id": i_id,
                            "ol_supply_w_id": w_id,
                            "ol_quantity": rng.randint(1, 10),
                            "ol_amount": round(rng.uniform(1.0, 100.0), 2),
                            "ol_delivery_d": None,
                        },
                    )

    for i_id in range(1, scale.items + 1):
        tables["item"].insert(
            (i_id,), {"i_name": f"item-{i_id}", "i_price": round(1.0 + i_id * 0.37, 2)}
        )
        tables["item_stats"].insert((i_id,), {"sale_count": 0})

    return Catalog(tables.values())
