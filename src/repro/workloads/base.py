"""Workload interface used by the harness, the examples and the benchmarks.

A workload bundles a table catalog (initial database population), a set of
registered transaction types (stored procedures plus static profiles) and a
transaction mix from which closed-loop clients draw work.
"""

import random

from repro.errors import ConfigurationError


class Workload:
    """Base class for benchmark workloads."""

    name = "workload"

    def build_catalog(self):
        """Return the :class:`~repro.storage.tables.Catalog` to load."""
        raise NotImplementedError

    def build_transaction_types(self):
        """Return ``{name: TransactionType}`` for every stored procedure."""
        raise NotImplementedError

    def mix(self):
        """Return ``{transaction type: weight}`` for the default mix."""
        return {name: ttype.weight for name, ttype in self.transaction_types().items()}

    # -- cached accessors ---------------------------------------------------

    def catalog(self):
        if not hasattr(self, "_catalog"):
            self._catalog = self.build_catalog()
        return self._catalog

    def transaction_types(self):
        if not hasattr(self, "_transaction_types"):
            self._transaction_types = self.build_transaction_types()
        return self._transaction_types

    def transaction_names(self):
        return sorted(self.transaction_types())

    def populate(self, store):
        """Load the initial database into a multi-version store."""
        return self.catalog().load_into(store)

    # -- argument generation ---------------------------------------------------

    def generate_args(self, rng, txn_type):
        """Generate input arguments for one instance of ``txn_type``."""
        raise NotImplementedError

    def next_transaction(self, rng, mix=None):
        """Draw ``(txn_type, args)`` from the mix."""
        mix = mix or self.mix()
        names = list(mix)
        weights = [mix[name] for name in names]
        txn_type = rng.choices(names, weights=weights, k=1)[0]
        return txn_type, self.generate_args(rng, txn_type)

    def make_rng(self, seed=0):
        return random.Random(seed)

    def validate_mix(self, mix):
        unknown = set(mix) - set(self.transaction_types())
        if unknown:
            raise ConfigurationError(f"mix references unknown transactions: {unknown}")
        return mix
