"""SEATS airline-reservation workload adapted as in Section 4.6.2."""

from repro.workloads.seats.workload import SEATSWorkload, SEATS_MIX

__all__ = ["SEATSWorkload", "SEATS_MIX"]
