"""SEATS airline ticketing workload (Section 4.6.2).

The adaptation follows the paper: customer-name scans are removed, separate
tables act as secondary indexes locating a reservation from the flight/seat
or flight/customer pair, the number of flights is small (to concentrate
contention) and each flight has many seats.  The hot object is the per-flight
row holding the seats-left counter, which is why the paper's three-layer
configuration runs one TSO instance per flight.
"""

from repro.analysis.profiles import TransactionProfile, TransactionType
from repro.storage.tables import Catalog, Table, TableSchema
from repro.workloads.base import Workload


SEATS_MIX = {
    "find_flights": 0.10,
    "find_open_seats": 0.30,
    "new_reservation": 0.25,
    "delete_reservation": 0.15,
    "update_reservation": 0.10,
    "update_customer": 0.10,
}

UPDATE_TRANSACTIONS = (
    "new_reservation",
    "delete_reservation",
    "update_reservation",
    "update_customer",
)
READ_ONLY_TRANSACTIONS = ("find_flights", "find_open_seats")


class SEATSWorkload(Workload):
    """Scaled-down SEATS benchmark over the key-value interface."""

    name = "seats"

    def __init__(self, flights=20, seats_per_flight=2000, customers=2000,
                 open_seat_probes=15, seed=17):
        self.flights = flights
        self.seats_per_flight = seats_per_flight
        self.customers = customers
        self.open_seat_probes = open_seat_probes
        self.seed = seed

    # -- schema -------------------------------------------------------------------

    def build_catalog(self):
        flight = Table(TableSchema("flight", ("f_id",), ("seats_left", "base_price")))
        for f_id in range(1, self.flights + 1):
            flight.insert(
                (f_id,),
                {"seats_left": self.seats_per_flight, "base_price": 100.0 + f_id},
            )
        customer = Table(
            TableSchema("customer", ("c_id",), ("balance", "reservations", "tier"))
        )
        for c_id in range(1, self.customers + 1):
            customer.insert((c_id,), {"balance": 1000.0, "reservations": 0, "tier": 0})
        reservation = Table(
            TableSchema("reservation", ("f_id", "seat"), ("c_id", "price"))
        )
        res_by_customer = Table(
            TableSchema("res_by_customer", ("f_id", "c_id"), ("seat",))
        )
        return Catalog([flight, customer, reservation, res_by_customer])

    # -- procedures -----------------------------------------------------------------

    def _new_reservation(self, ctx, f_id, c_id, seat, price):
        flight = yield from ctx.read("flight", f_id, for_update=True)
        if flight is None or flight.get("seats_left", 0) <= 0:
            return {"reserved": False}
        existing = yield from ctx.read("reservation", f_id, seat)
        if existing is not None:
            return {"reserved": False}
        yield from ctx.write(
            "flight", f_id, row={**flight, "seats_left": flight["seats_left"] - 1}
        )
        yield from ctx.write("reservation", f_id, seat, row={"c_id": c_id, "price": price})
        yield from ctx.write("res_by_customer", f_id, c_id, row={"seat": seat})
        yield from ctx.update(
            "customer", c_id,
            updates={
                "balance": lambda v: (v or 0.0) - price,
                "reservations": lambda v: (v or 0) + 1,
            },
        )
        return {"reserved": True, "seat": seat}

    def _delete_reservation(self, ctx, f_id, c_id):
        index_row = yield from ctx.read("res_by_customer", f_id, c_id, for_update=True)
        if index_row is None or index_row.get("seat") is None:
            return {"deleted": False}
        seat = index_row["seat"]
        reservation = yield from ctx.read("reservation", f_id, seat, for_update=True)
        yield from ctx.delete("reservation", f_id, seat)
        yield from ctx.write("res_by_customer", f_id, c_id, row={"seat": None})
        yield from ctx.update(
            "flight", f_id, updates={"seats_left": lambda v: (v or 0) + 1}
        )
        refund = (reservation or {}).get("price", 0.0)
        yield from ctx.update(
            "customer", c_id,
            updates={
                "balance": lambda v: (v or 0.0) + refund,
                "reservations": lambda v: max((v or 1) - 1, 0),
            },
        )
        return {"deleted": True, "seat": seat}

    def _update_reservation(self, ctx, f_id, c_id, new_seat):
        index_row = yield from ctx.read("res_by_customer", f_id, c_id, for_update=True)
        if index_row is None or index_row.get("seat") is None:
            return {"updated": False}
        old_seat = index_row["seat"]
        reservation = yield from ctx.read("reservation", f_id, old_seat, for_update=True)
        if reservation is None:
            return {"updated": False}
        taken = yield from ctx.read("reservation", f_id, new_seat)
        if taken is not None:
            return {"updated": False}
        yield from ctx.delete("reservation", f_id, old_seat)
        yield from ctx.write("reservation", f_id, new_seat, row=reservation)
        yield from ctx.write("res_by_customer", f_id, c_id, row={"seat": new_seat})
        return {"updated": True, "seat": new_seat}

    def _update_customer(self, ctx, c_id, tier):
        yield from ctx.update("customer", c_id, updates={"tier": tier})
        return {"updated": True}

    def _find_flights(self, ctx, f_ids):
        found = []
        for f_id in f_ids:
            flight = yield from ctx.read("flight", f_id)
            if flight is not None and flight.get("seats_left", 0) > 0:
                found.append((f_id, flight["base_price"]))
        return {"flights": found}

    def _find_open_seats(self, ctx, f_id, seats):
        flight = yield from ctx.read("flight", f_id)
        open_seats = []
        for seat in seats:
            reservation = yield from ctx.read("reservation", f_id, seat)
            if reservation is None:
                open_seats.append(seat)
        return {"flight": flight, "open_seats": open_seats}

    # -- registration -------------------------------------------------------------------

    def build_transaction_types(self):
        profiles = {
            "new_reservation": TransactionProfile(
                name="new_reservation",
                accesses=(
                    ("flight", "w"),
                    ("reservation", "w"),
                    ("res_by_customer", "w"),
                    ("customer", "w"),
                ),
            ),
            "delete_reservation": TransactionProfile(
                name="delete_reservation",
                accesses=(
                    ("res_by_customer", "w"),
                    ("reservation", "w"),
                    ("flight", "w"),
                    ("customer", "w"),
                ),
            ),
            "update_reservation": TransactionProfile(
                name="update_reservation",
                accesses=(
                    ("res_by_customer", "w"),
                    ("reservation", "w"),
                ),
            ),
            "update_customer": TransactionProfile(
                name="update_customer", accesses=(("customer", "w"),)
            ),
            "find_flights": TransactionProfile(
                name="find_flights", accesses=(("flight", "r"),), read_only=True
            ),
            "find_open_seats": TransactionProfile(
                name="find_open_seats",
                accesses=(("flight", "r"), ("reservation", "r")),
                read_only=True,
            ),
        }
        procedures = {
            "new_reservation": self._new_reservation,
            "delete_reservation": self._delete_reservation,
            "update_reservation": self._update_reservation,
            "update_customer": self._update_customer,
            "find_flights": self._find_flights,
            "find_open_seats": self._find_open_seats,
        }
        return {
            name: TransactionType(
                name=name,
                procedure=procedures[name],
                profile=profiles[name],
                weight=SEATS_MIX[name],
            )
            for name in profiles
        }

    def mix(self):
        return dict(SEATS_MIX)

    # -- argument generation -----------------------------------------------------------

    def generate_args(self, rng, txn_type):
        f_id = rng.randint(1, self.flights)
        c_id = rng.randint(1, self.customers)
        if txn_type == "new_reservation":
            return {
                "f_id": f_id,
                "c_id": c_id,
                "seat": rng.randint(1, self.seats_per_flight),
                "price": round(rng.uniform(50.0, 500.0), 2),
            }
        if txn_type == "delete_reservation":
            return {"f_id": f_id, "c_id": c_id}
        if txn_type == "update_reservation":
            return {
                "f_id": f_id,
                "c_id": c_id,
                "new_seat": rng.randint(1, self.seats_per_flight),
            }
        if txn_type == "update_customer":
            return {"c_id": c_id, "tier": rng.randint(0, 5)}
        if txn_type == "find_flights":
            count = min(5, self.flights)
            return {"f_ids": sorted(rng.sample(range(1, self.flights + 1), count))}
        if txn_type == "find_open_seats":
            seats = sorted(
                rng.sample(range(1, self.seats_per_flight + 1), self.open_seat_probes)
            )
            return {"f_id": f_id, "seats": seats}
        raise ValueError(f"unknown SEATS transaction {txn_type!r}")
