"""The paper's microbenchmarks (Sections 4.6.4 and 4.6.5).

Three synthetic workloads:

* :class:`CrossGroupConflictWorkload` — Figure 4.10: two groups of update (or
  one update and one read-only) transactions whose first operation touches a
  shared hot table; tuning the hot-table size varies the cross-group conflict
  rate (rw-1/rw-5/rw-10 and ww-1/ww-5/ww-10).
* :class:`HierarchyMicroWorkload` — Figure 4.11: three transaction types whose
  pairwise conflicts cannot all be handled well by a single cross-group CC.
* :class:`NoConflictWorkload` — Table 4.1: conflict-free writes used to
  measure the pure overhead of additional CC layers.
"""

from repro.analysis.profiles import TransactionProfile, TransactionType
from repro.storage.tables import Catalog, Table, TableSchema
from repro.workloads.base import Workload


def _table(name, key_columns, rows):
    table = Table(TableSchema(name=name, key_columns=key_columns))
    for key_parts, row in rows:
        table.insert(key_parts, row)
    return table


class CrossGroupConflictWorkload(Workload):
    """Two transaction groups conflicting on a shared hot table (Figure 4.10)."""

    name = "micro-crossgroup"

    def __init__(self, shared_rows=100, local_rows=10, cold_rows=10_000,
                 read_only_second_group=False, operations=7):
        self.shared_rows = shared_rows
        self.local_rows = local_rows
        self.cold_rows = cold_rows
        self.read_only_second_group = read_only_second_group
        self.operations = operations
        # Each remaining operation touches its own rarely-contended table, so
        # runtime pipelining can give every operation its own pipeline step
        # (the paper's "remaining operations conflict with low probability").
        self.cold_tables = tuple(
            f"cold_{index}" for index in range(max(self.operations - 2, 1))
        )

    # -- schema -----------------------------------------------------------------

    def build_catalog(self):
        tables = [
            _table(
                "shared", ("id",),
                (((i,), {"value": 0}) for i in range(self.shared_rows)),
            ),
            _table(
                "local_a", ("id",),
                (((i,), {"value": 0}) for i in range(self.local_rows)),
            ),
            _table(
                "local_b", ("id",),
                (((i,), {"value": 0}) for i in range(self.local_rows)),
            ),
        ]
        for name in self.cold_tables:
            tables.append(
                _table(name, ("id",), (((i,), {"value": 0}) for i in range(self.cold_rows)))
            )
        return Catalog(tables)

    # -- procedures ---------------------------------------------------------------

    def _update_group_a(self, ctx, shared_id, local_id, cold_ids):
        yield from ctx.update("shared", shared_id, updates={"value": lambda v: (v or 0) + 1})
        yield from ctx.update("local_a", local_id, updates={"value": lambda v: (v or 0) + 1})
        for table, cold_id in zip(self.cold_tables, cold_ids):
            yield from ctx.update(table, cold_id, updates={"value": lambda v: (v or 0) + 1})
        return True

    def _update_group_b(self, ctx, shared_id, local_id, cold_ids):
        yield from ctx.update("shared", shared_id, updates={"value": lambda v: (v or 0) + 1})
        yield from ctx.update("local_b", local_id, updates={"value": lambda v: (v or 0) + 1})
        for table, cold_id in zip(self.cold_tables, cold_ids):
            yield from ctx.update(table, cold_id, updates={"value": lambda v: (v or 0) + 1})
        return True

    def _read_group_b(self, ctx, shared_id, local_id, cold_ids):
        total = 0
        row = yield from ctx.read("shared", shared_id)
        total += (row or {}).get("value", 0)
        row = yield from ctx.read("local_b", local_id)
        total += (row or {}).get("value", 0)
        for table, cold_id in zip(self.cold_tables, cold_ids):
            row = yield from ctx.read(table, cold_id)
            total += (row or {}).get("value", 0)
        return total

    def build_transaction_types(self):
        writer_accesses = (
            ("shared", "w"), ("local_a", "w"),
        ) + tuple((name, "w") for name in self.cold_tables)
        writer_b_accesses = (
            ("shared", "w"), ("local_b", "w"),
        ) + tuple((name, "w") for name in self.cold_tables)
        reader_accesses = (
            ("shared", "r"), ("local_b", "r"),
        ) + tuple((name, "r") for name in self.cold_tables)
        types = {
            "group_a_update": TransactionType(
                name="group_a_update",
                procedure=self._update_group_a,
                profile=TransactionProfile(
                    name="group_a_update", accesses=writer_accesses
                ),
            ),
        }
        if self.read_only_second_group:
            types["group_b_read"] = TransactionType(
                name="group_b_read",
                procedure=self._read_group_b,
                profile=TransactionProfile(
                    name="group_b_read", accesses=reader_accesses, read_only=True
                ),
            )
        else:
            types["group_b_update"] = TransactionType(
                name="group_b_update",
                procedure=self._update_group_b,
                profile=TransactionProfile(
                    name="group_b_update", accesses=writer_b_accesses
                ),
            )
        return types

    def generate_args(self, rng, txn_type):
        # Every transaction walks the cold tables in the same order, so the
        # workload is deadlock-free under lock-based CCs, matching the paper's
        # setup (2PL "does not cause aborts for deadlock-free applications").
        return {
            "shared_id": rng.randrange(self.shared_rows),
            "local_id": rng.randrange(self.local_rows),
            "cold_ids": [rng.randrange(self.cold_rows) for _ in self.cold_tables],
        }


class HierarchyMicroWorkload(Workload):
    """Three transactions needing different cross-group CCs (Figure 4.11)."""

    name = "micro-hierarchy"

    def __init__(self, hot_rows=10, cold_rows=10_000, reads_per_table=3):
        self.hot_rows = hot_rows
        self.cold_rows = cold_rows
        self.reads_per_table = reads_per_table
        self.cold_tables = ("table_b", "table_c", "table_d", "table_e")

    def build_catalog(self):
        tables = [
            _table("table_a", ("id",), (((i,), {"value": 0}) for i in range(self.hot_rows)))
        ]
        for name in self.cold_tables:
            tables.append(
                _table(name, ("id",), (((i,), {"value": 0}) for i in range(self.cold_rows)))
            )
        return Catalog(tables)

    def _t1_read(self, ctx, hot_id, cold_ids):
        total = 0
        row = yield from ctx.read("table_a", hot_id)
        total += (row or {}).get("value", 0)
        for name, ids in zip(self.cold_tables, cold_ids):
            for cold_id in ids:
                row = yield from ctx.read(name, cold_id)
                total += (row or {}).get("value", 0)
        return total

    def _t2_update(self, ctx, hot_id, cold_ids):
        yield from ctx.update("table_a", hot_id, updates={"value": lambda v: (v or 0) + 1})
        for name, ids in zip(self.cold_tables, cold_ids):
            yield from ctx.update(name, ids[0], updates={"value": lambda v: (v or 0) + 1})
        return True

    def _t3_update(self, ctx, hot_id, cold_ids):
        values = []
        for name, ids in zip(self.cold_tables, cold_ids):
            row = yield from ctx.read(name, ids[0])
            values.append((row or {}).get("value", 0))
        yield from ctx.update(
            "table_b", cold_ids[0][0], updates={"value": sum(values)}
        )
        return True

    def build_transaction_types(self):
        return {
            "t1_read": TransactionType(
                name="t1_read",
                procedure=self._t1_read,
                profile=TransactionProfile(
                    name="t1_read",
                    accesses=(("table_a", "r"),) + tuple(
                        (name, "r") for name in self.cold_tables
                    ),
                    read_only=True,
                ),
            ),
            "t2_update": TransactionType(
                name="t2_update",
                procedure=self._t2_update,
                profile=TransactionProfile(
                    name="t2_update",
                    accesses=(("table_a", "w"),) + tuple(
                        (name, "w") for name in self.cold_tables
                    ),
                ),
            ),
            "t3_update": TransactionType(
                name="t3_update",
                procedure=self._t3_update,
                profile=TransactionProfile(
                    name="t3_update",
                    accesses=tuple((name, "r") for name in self.cold_tables)
                    + (("table_b", "w"),),
                ),
            ),
        }

    def generate_args(self, rng, txn_type):
        if txn_type == "t1_read":
            cold_ids = [
                [rng.randrange(self.cold_rows) for _ in range(self.reads_per_table)]
                for _ in self.cold_tables
            ]
        else:
            cold_ids = [[rng.randrange(self.cold_rows)] for _ in self.cold_tables]
        return {"hot_id": rng.randrange(self.hot_rows), "cold_ids": cold_ids}


class NoConflictWorkload(Workload):
    """Conflict-free writes measuring pure framework overhead (Table 4.1)."""

    name = "micro-noconflict"

    def __init__(self, rows=200_000, operations=7):
        self.rows = rows
        self.operations = operations

    def build_catalog(self):
        # Rows are created on demand by the writes; pre-load a marker row so
        # the table exists in the catalog.
        table = _table("payload", ("id",), [((0,), {"value": 0})])
        return Catalog([table])

    def _write_only(self, ctx, ids):
        for row_id in ids:
            yield from ctx.write("payload", row_id, row={"value": row_id})
        return True

    def build_transaction_types(self):
        return {
            "write_only": TransactionType(
                name="write_only",
                procedure=self._write_only,
                profile=TransactionProfile(
                    name="write_only",
                    accesses=tuple(("payload", "w") for _ in range(self.operations)),
                ),
            )
        }

    def generate_args(self, rng, txn_type):
        base = rng.randrange(self.rows) * self.operations
        return {"ids": [base + offset for offset in range(self.operations)]}
