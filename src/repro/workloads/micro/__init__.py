"""Microbenchmark workloads used in Sections 4.6.4 and 4.6.5."""

from repro.workloads.micro.workloads import (
    CrossGroupConflictWorkload,
    HierarchyMicroWorkload,
    NoConflictWorkload,
)

__all__ = [
    "CrossGroupConflictWorkload",
    "HierarchyMicroWorkload",
    "NoConflictWorkload",
]
