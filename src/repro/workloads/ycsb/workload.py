"""A YCSB-style parameterized workload over one ``usertable``.

The Yahoo! Cloud Serving Benchmark's core operations — point read, update,
insert, short scan and read-modify-write — are expressed as transactions
over the key-value interface, and its standard letter profiles select the
operation mix:

* **A** (update-heavy): 50% read / 50% update,
* **B** (read-heavy): 95% read / 5% update,
* **E** (scan-heavy): 95% scan / 5% insert.

All five transaction types are always registered (so one CC tree covers all
profiles); the profile only changes the mix that closed-loop clients draw
from.  Skew uses YCSB's *hotspot* distribution: with probability
``hot_op_fraction`` the key is drawn from the first
``hot_set_fraction * records`` keys.
"""

from repro.analysis.profiles import TransactionProfile, TransactionType
from repro.storage.tables import Catalog, Table, TableSchema
from repro.workloads.base import Workload


YCSB_PROFILES = {
    "a": {"read_record": 0.50, "update_record": 0.50},
    "b": {"read_record": 0.95, "update_record": 0.05},
    "e": {"scan_records": 0.95, "insert_record": 0.05},
}

UPDATE_TRANSACTIONS = ("update_record", "insert_record", "read_modify_write")
READ_ONLY_TRANSACTIONS = ("read_record", "scan_records")


class YCSBWorkload(Workload):
    """YCSB core operations as transactions over ``usertable``."""

    name = "ycsb"

    def __init__(self, records=1000, profile="a", max_scan_length=10,
                 hot_op_fraction=0.5, hot_set_fraction=0.05,
                 insert_space=10_000, seed=31):
        if profile not in YCSB_PROFILES:
            raise ValueError(
                f"unknown YCSB profile {profile!r}; choose one of {sorted(YCSB_PROFILES)}"
            )
        self.records = records
        self.profile = profile
        self.max_scan_length = max_scan_length
        self.hot_op_fraction = hot_op_fraction
        self.hot_set_fraction = hot_set_fraction
        self.insert_space = insert_space
        self.seed = seed

    # -- schema -------------------------------------------------------------------

    def build_catalog(self):
        usertable = Table(TableSchema("usertable", ("key",), ("field0", "version")))
        for key in range(self.records):
            usertable.insert((key,), {"field0": key * 7, "version": 0})
        return Catalog([usertable])

    # -- procedures -----------------------------------------------------------------

    def _read_record(self, ctx, key):
        row = yield from ctx.read("usertable", key)
        return {"row": row}

    def _update_record(self, ctx, key, value):
        row = yield from ctx.update(
            "usertable", key,
            updates={"field0": value, "version": lambda v: (v or 0) + 1},
        )
        return {"version": row["version"]}

    def _insert_record(self, ctx, key, value):
        yield from ctx.write("usertable", key, row={"field0": value, "version": 0})
        return {"inserted": key}

    def _scan_records(self, ctx, start, count):
        rows = []
        for key in range(start, start + count):
            row = yield from ctx.read("usertable", key)
            if row is not None:
                rows.append(row)
        return {"rows": rows}

    def _read_modify_write(self, ctx, key, delta):
        row = yield from ctx.read("usertable", key, for_update=True)
        current = (row or {}).get("field0", 0)
        version = (row or {}).get("version", 0)
        yield from ctx.write(
            "usertable", key, row={"field0": current + delta, "version": version + 1}
        )
        return {"field0": current + delta}

    # -- registration -------------------------------------------------------------------

    def build_transaction_types(self):
        profiles = {
            "read_record": TransactionProfile(
                name="read_record", accesses=(("usertable", "r"),), read_only=True,
                description="point read of one record",
            ),
            "update_record": TransactionProfile(
                name="update_record", accesses=(("usertable", "w"),),
                description="overwrite one field of a record",
            ),
            "insert_record": TransactionProfile(
                name="insert_record", accesses=(("usertable", "w"),),
                description="insert a new record",
            ),
            "scan_records": TransactionProfile(
                name="scan_records", accesses=(("usertable", "r"),), read_only=True,
                description="short range scan",
            ),
            "read_modify_write": TransactionProfile(
                name="read_modify_write", accesses=(("usertable", "w"),),
                description="read a record and write it back",
            ),
        }
        procedures = {
            "read_record": self._read_record,
            "update_record": self._update_record,
            "insert_record": self._insert_record,
            "scan_records": self._scan_records,
            "read_modify_write": self._read_modify_write,
        }
        mix = YCSB_PROFILES[self.profile]
        return {
            name: TransactionType(
                name=name,
                procedure=procedures[name],
                profile=profiles[name],
                weight=mix.get(name, 0.0),
            )
            for name in profiles
        }

    def mix(self):
        return dict(YCSB_PROFILES[self.profile])

    # -- argument generation -----------------------------------------------------------

    def _key(self, rng):
        if rng.random() < self.hot_op_fraction:
            hot = max(int(self.records * self.hot_set_fraction), 1)
            return rng.randrange(hot)
        return rng.randrange(self.records)

    def generate_args(self, rng, txn_type):
        if txn_type == "read_record":
            return {"key": self._key(rng)}
        if txn_type == "update_record":
            return {"key": self._key(rng), "value": rng.randrange(1_000_000)}
        if txn_type == "insert_record":
            # Inserts land in a key space above the loaded records; collisions
            # just overwrite, which YCSB's insert-order guarantees tolerate.
            return {
                "key": self.records + rng.randrange(self.insert_space),
                "value": rng.randrange(1_000_000),
            }
        if txn_type == "scan_records":
            count = rng.randint(1, self.max_scan_length)
            start = min(self._key(rng), max(self.records - count, 0))
            return {"start": start, "count": count}
        if txn_type == "read_modify_write":
            return {"key": self._key(rng), "delta": rng.randrange(1, 100)}
        raise ValueError(f"unknown YCSB transaction {txn_type!r}")
