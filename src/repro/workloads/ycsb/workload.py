"""A YCSB-style parameterized workload over one ``usertable``.

The Yahoo! Cloud Serving Benchmark's core operations — point read, update,
insert, short scan and read-modify-write — are expressed as transactions
over the key-value interface, and its standard letter profiles select the
operation mix:

* **A** (update-heavy): 50% read / 50% update,
* **B** (read-heavy): 95% read / 5% update,
* **E** (scan-heavy): 95% scan / 5% insert.

All five transaction types are always registered (so one CC tree covers all
profiles); the profile only changes the mix that closed-loop clients draw
from.  Two skew models are available: YCSB's *hotspot* distribution (with
probability ``hot_op_fraction`` the key is drawn from the first
``hot_set_fraction * records`` keys) and the classic *zipfian* generator of
Gray et al. with configurable ``zipf_theta`` — the heavier-tailed
distribution the original benchmark defaults to, registered in the harness
at a larger keyspace as ``ycsb-zipf``.
"""

from repro.analysis.profiles import TransactionProfile, TransactionType
from repro.storage.tables import Catalog, Table, TableSchema
from repro.workloads.base import Workload


class ZipfianGenerator:
    """Zipfian-distributed integers in ``[0, n)`` (Gray et al., SIGMOD '94).

    The standard YCSB generator: item ranks follow a power law with
    exponent ``theta`` (0 < theta < 1; YCSB's default is 0.99).  The
    ``zeta`` constants are precomputed once per (n, theta) — O(n) at
    construction, O(1) per draw — and draws are a pure function of the
    caller's RNG, so fixed-seed runs stay deterministic.
    """

    def __init__(self, n, theta=0.99):
        if not 0.0 < theta < 1.0:
            raise ValueError(f"zipfian theta must be in (0, 1), got {theta}")
        if n < 1:
            raise ValueError("zipfian range must contain at least one item")
        self.n = n
        self.theta = theta
        self.zeta2 = sum(1.0 / i ** theta for i in range(1, 3))
        self.zetan = sum(1.0 / i ** theta for i in range(1, n + 1))
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
            1.0 - self.zeta2 / self.zetan
        )

    def draw(self, rng):
        u = rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self.eta * u - self.eta + 1.0) ** self.alpha)


YCSB_PROFILES = {
    "a": {"read_record": 0.50, "update_record": 0.50},
    "b": {"read_record": 0.95, "update_record": 0.05},
    "e": {"scan_records": 0.95, "insert_record": 0.05},
}

UPDATE_TRANSACTIONS = ("update_record", "insert_record", "read_modify_write")
READ_ONLY_TRANSACTIONS = ("read_record", "scan_records")


class YCSBWorkload(Workload):
    """YCSB core operations as transactions over ``usertable``."""

    name = "ycsb"

    def __init__(self, records=1000, profile="a", max_scan_length=10,
                 hot_op_fraction=0.5, hot_set_fraction=0.05,
                 insert_space=10_000, seed=31,
                 distribution="hotspot", zipf_theta=0.99):
        if profile not in YCSB_PROFILES:
            raise ValueError(
                f"unknown YCSB profile {profile!r}; choose one of {sorted(YCSB_PROFILES)}"
            )
        if distribution not in ("hotspot", "zipfian"):
            raise ValueError(
                f"unknown YCSB distribution {distribution!r}; "
                "choose 'hotspot' or 'zipfian'"
            )
        self.records = records
        self.profile = profile
        self.max_scan_length = max_scan_length
        self.hot_op_fraction = hot_op_fraction
        self.hot_set_fraction = hot_set_fraction
        self.insert_space = insert_space
        self.seed = seed
        self.distribution = distribution
        self.zipf_theta = zipf_theta
        self._zipf = (
            ZipfianGenerator(records, zipf_theta)
            if distribution == "zipfian"
            else None
        )

    # -- schema -------------------------------------------------------------------

    def build_catalog(self):
        usertable = Table(TableSchema("usertable", ("key",), ("field0", "version")))
        for key in range(self.records):
            usertable.insert((key,), {"field0": key * 7, "version": 0})
        return Catalog([usertable])

    # -- procedures -----------------------------------------------------------------

    def _read_record(self, ctx, key):
        row = yield from ctx.read("usertable", key)
        return {"row": row}

    def _update_record(self, ctx, key, value):
        row = yield from ctx.update(
            "usertable", key,
            updates={"field0": value, "version": lambda v: (v or 0) + 1},
        )
        return {"version": row["version"]}

    def _insert_record(self, ctx, key, value):
        yield from ctx.write("usertable", key, row={"field0": value, "version": 0})
        return {"inserted": key}

    def _scan_records(self, ctx, start, count):
        # A first-class range scan: CC mechanisms see the predicate (range
        # locks / snapshot range read sets) instead of a loop of point reads
        # blind to keys inserted into the scanned window.
        matches = yield from ctx.scan("usertable", lo=start, hi=start + count - 1)
        return {"rows": [row for _key, row in matches]}

    def _read_modify_write(self, ctx, key, delta):
        row = yield from ctx.read("usertable", key, for_update=True)
        current = (row or {}).get("field0", 0)
        version = (row or {}).get("version", 0)
        yield from ctx.write(
            "usertable", key, row={"field0": current + delta, "version": version + 1}
        )
        return {"field0": current + delta}

    # -- registration -------------------------------------------------------------------

    def build_transaction_types(self):
        # Every writer's key set — and the scan's range — is computable from
        # the arguments alone, so the whole mix is declarable: TSO promises
        # and deterministic batch sequencing can pre-assign version slots.
        write_key = lambda args: (("usertable", args["key"]),)  # noqa: E731
        scan_range = lambda args: (  # noqa: E731
            ("usertable", args["start"], args["start"] + args["count"] - 1),
        )
        profiles = {
            "read_record": TransactionProfile(
                name="read_record", accesses=(("usertable", "r"),), read_only=True,
                description="point read of one record",
            ),
            "update_record": TransactionProfile(
                name="update_record", accesses=(("usertable", "w"),),
                promise_keys=write_key,
                description="overwrite one field of a record",
            ),
            "insert_record": TransactionProfile(
                name="insert_record", accesses=(("usertable", "w"),),
                promise_keys=write_key,
                description="insert a new record",
            ),
            "scan_records": TransactionProfile(
                name="scan_records", accesses=(("usertable", "r"),), read_only=True,
                scan_ranges=scan_range,
                description="short range scan",
            ),
            "read_modify_write": TransactionProfile(
                name="read_modify_write", accesses=(("usertable", "w"),),
                promise_keys=write_key,
                description="read a record and write it back",
            ),
        }
        procedures = {
            "read_record": self._read_record,
            "update_record": self._update_record,
            "insert_record": self._insert_record,
            "scan_records": self._scan_records,
            "read_modify_write": self._read_modify_write,
        }
        mix = YCSB_PROFILES[self.profile]
        return {
            name: TransactionType(
                name=name,
                procedure=procedures[name],
                profile=profiles[name],
                weight=mix.get(name, 0.0),
            )
            for name in profiles
        }

    def mix(self):
        return dict(YCSB_PROFILES[self.profile])

    # -- argument generation -----------------------------------------------------------

    def _key(self, rng):
        if self._zipf is not None:
            return self._zipf.draw(rng)
        if rng.random() < self.hot_op_fraction:
            hot = max(int(self.records * self.hot_set_fraction), 1)
            return rng.randrange(hot)
        return rng.randrange(self.records)

    def generate_args(self, rng, txn_type):
        if txn_type == "read_record":
            return {"key": self._key(rng)}
        if txn_type == "update_record":
            return {"key": self._key(rng), "value": rng.randrange(1_000_000)}
        if txn_type == "insert_record":
            # Inserts land in a key space above the loaded records; collisions
            # just overwrite, which YCSB's insert-order guarantees tolerate.
            return {
                "key": self.records + rng.randrange(self.insert_space),
                "value": rng.randrange(1_000_000),
            }
        if txn_type == "scan_records":
            count = rng.randint(1, self.max_scan_length)
            start = min(self._key(rng), max(self.records - count, 0))
            return {"start": start, "count": count}
        if txn_type == "read_modify_write":
            return {"key": self._key(rng), "delta": rng.randrange(1, 100)}
        raise ValueError(f"unknown YCSB transaction {txn_type!r}")
