"""YCSB-style key-value workload with the classic A/B/E operation profiles."""

from repro.workloads.ycsb.workload import YCSBWorkload, YCSB_PROFILES

__all__ = ["YCSBWorkload", "YCSB_PROFILES"]
