"""Execution histories extracted from a running engine.

A history records, per committed transaction, the versions it read and the
versions it installed; together with the per-object version order kept by the
storage module this is everything Adya's graph-based definitions need.
"""

from dataclasses import dataclass, field


@dataclass
class HistoryTransaction:
    """One committed transaction in a history."""

    txn_id: int
    txn_type: str
    reads: list = field(default_factory=list)     # (key, writer_id, commit_seq|None)
    writes: list = field(default_factory=list)    # (key, commit_seq)
    begin_time: float = 0.0
    end_time: float = 0.0


@dataclass
class History:
    """Committed transactions plus the per-key committed version order."""

    transactions: dict = field(default_factory=dict)
    version_orders: dict = field(default_factory=dict)   # key -> [(commit_seq, writer)]
    aborted_ids: set = field(default_factory=set)

    def add_transaction(self, txn):
        self.transactions[txn.txn_id] = txn

    def __len__(self):
        return len(self.transactions)

    def writers_of(self, key):
        return [writer for _seq, writer in self.version_orders.get(key, [])]

    def next_writer_after(self, key, commit_seq):
        """Writer of the next committed version of ``key`` after ``commit_seq``."""
        for seq, writer in self.version_orders.get(key, []):
            if seq > commit_seq:
                return writer, seq
        return None, None

    def first_writer(self, key):
        order = self.version_orders.get(key, [])
        return order[0][1] if order else None


def committed_history(engine):
    """Build a :class:`History` from an engine's committed transactions."""
    history = History(aborted_ids=set(engine.aborted_ids))
    for txn in engine.committed_history:
        record = HistoryTransaction(
            txn_id=txn.txn_id,
            txn_type=txn.txn_type,
            begin_time=txn.begin_time,
            end_time=txn.end_time,
        )
        for read in txn.reads:
            if read.version is None:
                continue
            record.reads.append(
                (read.key, read.version.writer, read.version.commit_seq)
            )
        history.add_transaction(record)
    committed_ids = set(history.transactions)
    for key in engine.store.keys():
        order = []
        for version in engine.store.committed_versions(key):
            order.append((version.commit_seq, version.writer))
            if version.writer in committed_ids:
                history.transactions[version.writer].writes.append(
                    (key, version.commit_seq)
                )
        history.version_orders[key] = order
    return history
