"""Execution histories extracted from a running engine.

A history records, per committed transaction, the versions it read and the
versions it installed; together with the per-object version order kept by the
storage module this is everything Adya's graph-based definitions need.

Histories come from two sources:

* :func:`committed_history` rebuilds one post-hoc from an engine's
  ``committed_history`` deque and its store — fine for short unit-test runs,
  but lossy for long benchmark runs where garbage collection prunes version
  chains and the deque wraps.
* :class:`HistoryRecorder` streams the history out of a *running* engine:
  the engine notifies it on every commit and abort, so the recorder observes
  every committed version (including ones GC later prunes) in commit order.
  It is the backbone of the harness's ``check_isolation`` mode.
"""

from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.isolation.levels import kinds_for
from repro.isolation.streaming import StreamingDSGChecker


@dataclass
class HistoryTransaction:
    """One committed transaction in a history."""

    txn_id: int
    txn_type: str
    reads: list = field(default_factory=list)     # (key, writer_id, commit_seq|None)
    writes: list = field(default_factory=list)    # (key, commit_seq)
    scans: list = field(default_factory=list)     # KeyRange per range scan
    begin_time: float = 0.0
    end_time: float = 0.0


@dataclass
class History:
    """Committed transactions plus the per-key committed version order.

    ``extra_committed`` names transactions that are known to have committed
    but whose read/write details are no longer retained (evicted from a
    bounded :class:`HistoryRecorder` ring).  The checker treats them as
    committed so that reads-from and version orders referencing them do not
    produce false aborted-read reports.
    """

    transactions: dict = field(default_factory=dict)
    version_orders: dict = field(default_factory=dict)   # key -> [(commit_seq, writer)]
    aborted_ids: set = field(default_factory=set)
    extra_committed: set = field(default_factory=set)

    def add_transaction(self, txn):
        self.transactions[txn.txn_id] = txn

    def committed_ids(self):
        """Every transaction id known to have committed."""
        if self.extra_committed:
            return set(self.transactions) | self.extra_committed
        return set(self.transactions)

    def __len__(self):
        return len(self.transactions)

    def writers_of(self, key):
        return [writer for _seq, writer in self.version_orders.get(key, [])]

    def _seqs_of(self, key):
        """Cached ascending commit-sequence list of ``key`` (bisect support)."""
        cache = getattr(self, "_seq_cache", None)
        if cache is None:
            cache = self._seq_cache = {}
        seqs = cache.get(key)
        if seqs is None:
            seqs = cache[key] = [seq for seq, _writer in self.version_orders.get(key, [])]
        return seqs

    def next_writer_after(self, key, commit_seq):
        """Writer of the next committed version of ``key`` after ``commit_seq``.

        Version orders are ascending in commit sequence, so this is a bisect
        (hot keys in long histories have thousands of versions; a linear scan
        per read would make checking quadratic).
        """
        order = self.version_orders.get(key)
        if not order:
            return None, None
        index = bisect_right(self._seqs_of(key), commit_seq)
        if index < len(order):
            seq, writer = order[index]
            return writer, seq
        return None, None

    def final_write_seqs(self):
        """Map of ``(key, writer) -> last committed seq`` over all versions."""
        final = {}
        for key, order in self.version_orders.items():
            for seq, writer in order:
                final[(key, writer)] = seq
        return final

    def first_writer(self, key):
        order = self.version_orders.get(key, [])
        return order[0][1] if order else None


class HistoryRecorder:
    """Streaming history recorder attached to a running engine.

    The engine calls :meth:`on_commit` (with the freshly committed versions)
    and :meth:`on_abort` from its commit/abort paths, so the recorder sees
    the authoritative per-key version order even when garbage collection
    later prunes the chains or the engine's own history deque wraps.

    Reads are recorded as references to the observed :class:`Version`
    objects and resolved to ``(key, writer, commit_seq)`` lazily in
    :meth:`history` — a read of a then-uncommitted version picks up the
    writer's final commit sequence once the writer commits.

    ``max_transactions`` bounds memory for long runs: the recorder keeps a
    ring of the most recent committed transactions (their read/write sets)
    while retaining the full, compact per-key version order.  Evicted
    transactions surface via ``History.extra_committed`` — derived from the
    version orders (every evicted *writer* still appears there, and reads
    only ever reference writers) so eviction leaves no growing side table.

    ``level`` enables the in-line streaming DSG checker: every commit's
    dependency edges are derived immediately and fed to the incremental
    cycle detector, so the circularity verdict at that isolation level is
    ready the moment the run ends — no post-hoc graph pass.  The streaming
    checker sees every commit (it is fed before ring eviction and is
    unaffected by it).  ``level=None`` records only, as before.

    With the streaming checker on, the retained records are only a
    convenience (``history()`` for diagnostics) — the verdict never needs
    them — so retention defaults to a bounded ring
    (:data:`STREAMING_WINDOW_DEFAULT`) instead of the whole run.  This pins
    the recorder's memory in long checked runs: record retention, not the
    checker, used to dominate checked-run overhead.  Pass an explicit
    ``max_transactions`` (or ``level=None``) to override.
    """

    #: Default record-ring size when the streaming checker is active.
    STREAMING_WINDOW_DEFAULT = 50_000

    def __init__(self, max_transactions=None, level=None, trace_edges=False):
        if max_transactions is None and level is not None:
            max_transactions = self.STREAMING_WINDOW_DEFAULT
        self.max_transactions = max_transactions
        self.level = level
        self.streaming_checker = None
        if level is not None:
            self.streaming_checker = StreamingDSGChecker(
                kinds_for(level), trace_edges=trace_edges
            )
        # txn_id -> (txn_type, begin_time, end_time, [(key, commit_seq)], [(key, version)])
        self._records = OrderedDict()
        self._version_orders = {}
        # Insertion-ordered so a window bounds it like the commit ring; old
        # aborted writers stay detectable anyway (their reads resolve to
        # commit_seq None and the writer is never in the committed set).
        self._aborted_ids = OrderedDict()
        self._evicted = False
        self.recorded_commits = 0
        #: Transaction ids committed more than once — a phantom commit
        #: (e.g. a retransmitted commit applied twice by a broken dedup).
        #: Must stay empty; the degraded harness asserts on it.
        self.duplicate_commits = []
        #: True once on_crash() stitched a crash into this recorder; the
        #: checker then complements the streaming verdict with the
        #: aborted/intermediate-read passes over the retained records.
        self.crossed_crash = False

    def on_commit(self, txn, versions):
        """Record one committed transaction and its installed versions."""
        if txn.txn_id in self._records:
            # A second commit of the same transaction would silently
            # overwrite the first record; flag it loudly instead — no
            # engine path may commit twice, retransmits included.
            self.duplicate_commits.append(txn.txn_id)
        writes = []
        orders = self._version_orders
        for version in versions:
            key = version.key
            writes.append((key, version.commit_seq))
            order = orders.get(key)
            if order is None:
                order = orders[key] = []
            order.append((version.commit_seq, version.writer))
        reads = [
            (record.key, record.version)
            for record in txn.reads
            if record.version is not None
        ]
        scans = (
            [record.key_range for record in txn.scans] if txn.scans else ()
        )
        if self.streaming_checker is not None:
            self.streaming_checker.on_commit(txn.txn_id, versions, reads, scans)
        self._records[txn.txn_id] = (
            txn.txn_type, txn.begin_time, txn.end_time, writes, reads, scans
        )
        self.recorded_commits += 1
        limit = self.max_transactions
        if limit is not None:
            records = self._records
            while len(records) > limit:
                records.popitem(last=False)
                self._evicted = True

    def on_abort(self, txn):
        """Record that a transaction aborted (readers of it are doomed)."""
        if self.streaming_checker is not None:
            self.streaming_checker.on_abort(txn.txn_id)
        aborted = self._aborted_ids
        aborted[txn.txn_id] = None
        limit = self.max_transactions
        if limit is not None:
            while len(aborted) > limit:
                aborted.popitem(last=False)

    def on_crash(self, vanished):
        """Stitch a simulated crash into the recorded history.

        ``vanished`` are transactions that committed in memory but did not
        survive recovery.  They are erased from the retained records and
        from every per-key version order — as if they never committed — and
        marked aborted, so a surviving transaction that *read* their data
        is flagged as an aborted read by the checker.  The streaming
        checker (if any) performs the matching purge.
        """
        vanished = {txn_id for txn_id in vanished if txn_id}
        if not vanished:
            self.crossed_crash = True
            return
        aborted = self._aborted_ids
        for txn_id in vanished:
            if self._records.pop(txn_id, None) is not None:
                self.recorded_commits -= 1
            aborted[txn_id] = None
        orders = self._version_orders
        for key in list(orders):
            order = orders[key]
            if not any(writer in vanished for _seq, writer in order):
                continue
            kept = [entry for entry in order if entry[1] not in vanished]
            if kept:
                orders[key] = kept
            else:
                del orders[key]
        if self.streaming_checker is not None:
            self.streaming_checker.on_crash(vanished)
        self.crossed_crash = True

    def on_recovered(self, txn_id, versions, txn_type="recovered", now=0.0):
        """Register a *ghost* survivor: a transaction whose precommit was
        durable when the crash hit but which never committed in memory (the
        crash fired between precommit and acknowledgement).  Recovery
        resurrects its writes; its reads died with the crash, so only the
        writes constrain the stitched graph — exactly the information the
        durable log retains."""
        writes = []
        orders = self._version_orders
        for version in versions:
            key = version.key
            writes.append((key, version.commit_seq))
            order = orders.get(key)
            if order is None:
                order = orders[key] = []
            order.append((version.commit_seq, version.writer))
        if self.streaming_checker is not None:
            self.streaming_checker.on_commit(txn_id, versions, (), ())
        self._records[txn_id] = (txn_type, now, now, writes, [], ())
        self.recorded_commits += 1

    def seq_of(self, key, writer):
        """Last recorded commit sequence of ``writer``'s version of ``key``.

        The version orders are never ring-evicted, so this is authoritative
        for the whole run — the crash harness uses it to restore surviving
        versions with their original sequence numbers."""
        order = self._version_orders.get(key)
        if order:
            for seq, order_writer in reversed(order):
                if order_writer == writer:
                    return seq
        return None

    def __len__(self):
        return len(self._records)

    def history(self):
        """Materialise the recorded run as a :class:`History`."""
        extra_committed = set()
        if self._evicted:
            retained = self._records
            extra_committed = {
                writer
                for order in self._version_orders.values()
                for _seq, writer in order
                if writer not in retained
            }
        history = History(
            version_orders={key: list(order) for key, order in self._version_orders.items()},
            aborted_ids=set(self._aborted_ids),
            extra_committed=extra_committed,
        )
        for txn_id, (txn_type, begin, end, writes, reads, scans) in self._records.items():
            record = HistoryTransaction(
                txn_id=txn_id,
                txn_type=txn_type,
                begin_time=begin,
                end_time=end,
                writes=list(writes),
                scans=list(scans),
            )
            record.reads = [
                (key, version.writer, version.commit_seq) for key, version in reads
            ]
            history.add_transaction(record)
        return history


def committed_history(engine):
    """Build a :class:`History` from an engine's committed transactions."""
    history = History(aborted_ids=set(engine.aborted_ids))
    for txn in engine.committed_history:
        record = HistoryTransaction(
            txn_id=txn.txn_id,
            txn_type=txn.txn_type,
            begin_time=txn.begin_time,
            end_time=txn.end_time,
            scans=[scan.key_range for scan in txn.scans],
        )
        for read in txn.reads:
            if read.version is None:
                continue
            record.reads.append(
                (read.key, read.version.writer, read.version.commit_seq)
            )
        history.add_transaction(record)
    committed_ids = set(history.transactions)
    for key in engine.store.keys():
        order = []
        for version in engine.store.committed_versions(key):
            order.append((version.commit_seq, version.writer))
            if version.writer in committed_ids:
                history.transactions[version.writer].writes.append(
                    (key, version.commit_seq)
                )
        history.version_orders[key] = order
    return history
