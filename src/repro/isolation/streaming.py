"""Streaming DSG maintenance: dependency edges derived at commit time.

The post-hoc checker rebuilds the whole Direct Serialization Graph from a
recorded history after the run (one networkx pass, roughly linear in
reads+writes but with a large constant — the wall-clock cliff of checked
runs).  :class:`StreamingDSGChecker` instead derives every ``ww``/``wr``/
``rw`` edge *as transactions commit* and feeds them to an
:class:`~repro.isolation.cycles.IncrementalCycleDetector`, in the spirit
of DGCC's on-the-path dependency bookkeeping.  The aborted-read and
intermediate-read anomalies are detected in the same pass, so the
post-measurement "check" is just a sweep of the parked-reader frontier —
no history materialisation, no graph build.

Edge derivation per commit of ``T`` (mirrors :func:`~repro.isolation.dsg.build_dsg`):

* reads ``(key, version)``: a ``wr`` edge from the version's committed
  writer; an ``rw`` anti-dependency from ``T`` to the *next* committed
  writer of the key (bisect on the streamed version order).  A read whose
  successor has not committed yet — or whose writer is still in flight —
  parks ``T`` in a per-``(key, writer)`` waiting set.
* writes: a ``ww`` edge from the previous committed writer of each key, an
  ``rw`` edge from every parked reader of that previous version, and a
  ``wr`` edge to every committed reader that read ``T``'s own version
  before ``T`` committed (runtime pipelining).

Waiting sets are popped when the successor commits, so steady-state memory
is the per-key frontier (readers of each key's latest version), not the
whole run.  Writer id 0 (database population) is treated as an always
committed pseudo-transaction that never appears as a graph node, matching
the post-hoc builder.

Scans add the *phantom* rw edges item-level derivation cannot see: a
committed scan whose predicate covers a key it never read anti-depends on
the key's first committed writer — whether that writer committed before
the scan (the scan's snapshot missed it) or after (classic phantom).  The
checker keeps a per-table index of committed keys for the backward
direction and a per-table registry of committed scan predicates for the
forward one; both grow with distinct keys / committed scans, like the
detector's node set.
"""

from bisect import bisect_left, bisect_right, insort

from repro.isolation.cycles import IncrementalCycleDetector
from repro.storage.ranges import slice_sorted_pks


class StreamingDSGChecker:
    """Incremental DSG circularity + anomaly check over a commit/abort stream.

    ``trace_edges=True`` additionally records the deduplicated typed edge
    set in ``_edge_seen`` — test instrumentation for equivalence against
    the post-hoc graph builder; production runs skip it.
    """

    __slots__ = (
        "kinds",
        "detector",
        "_writers",
        "_seqs",
        "_waiting",
        "_committed",
        "_aborted",
        "_final",
        "_table_pks",
        "_scan_watch",
        "_edge_seen",
        "aborted_reads",
        "intermediate_reads",
        "num_edges",
    )

    def __init__(self, kinds, trace_edges=False):
        self.kinds = frozenset(kinds)
        self.detector = IncrementalCycleDetector()
        self._writers = {}   # key -> [writer, ...] in commit order
        self._seqs = {}      # key -> [commit_seq, ...] (parallel list, bisect)
        self._waiting = {}   # (key, writer) -> {reader id: observed commit_seq}
        self._committed = set()
        self._aborted = set()
        self._final = {}     # (key, writer) -> final commit_seq of that version
        self._table_pks = {}   # table -> sorted pks with a committed version
        self._scan_watch = {}  # table -> [(scanner, KeyRange, read keys), ...]
        self._edge_seen = set() if trace_edges else None
        self.aborted_reads = []
        self.intermediate_reads = []
        self.num_edges = 0

    @property
    def cycle(self):
        """The first forbidden cycle (edge list) or ``None``."""
        return self.detector.cycle

    def has_cycle(self):
        return self.detector.cycle is not None

    def _add_edge(self, source, target, kind):
        if source == target:
            return
        self.num_edges += 1
        if self._edge_seen is not None:
            self._edge_seen.add((source, target, kind))
        if kind in self.kinds:
            self.detector.add_edge(source, target)

    def on_commit(self, txn_id, versions, reads, scans=()):
        """Fold one committed transaction into the graph.

        ``versions`` are the freshly installed (committed) versions;
        ``reads`` is a ``(key, version)`` list of the versions it observed;
        ``scans`` is a list of :class:`~repro.storage.ranges.KeyRange`
        predicates (the transaction's effective scan ranges).
        """
        committed = self._committed
        writers_map, seqs_map, waiting = self._writers, self._seqs, self._waiting
        final = self._final
        add_edge = self._add_edge
        for key, version in reads:
            writer = version.writer
            if writer == txn_id:
                continue
            seq = version.commit_seq
            if writer in committed:
                add_edge(writer, txn_id, "wr")
                if seq is None:
                    # Committed writer but an unsequenced version object: a
                    # replaced intermediate; no rw edge is derivable (the
                    # post-hoc builder skips it identically).
                    continue
                if final.get((key, writer), seq) != seq:
                    self.intermediate_reads.append((txn_id, key, writer))
            elif writer != 0:
                if writer in self._aborted:
                    self.aborted_reads.append((txn_id, key, writer))
                else:
                    # In-flight writer (pipelined read): its commit resolves
                    # the wr edge (and the intermediate-read check against
                    # its final version), a later writer of the key the rw
                    # edge; a writer that never commits is flagged by
                    # pending_aborted_reads().
                    slot = waiting.get((key, writer))
                    if slot is None:
                        slot = waiting[(key, writer)] = {}
                    slot[txn_id] = seq
                continue
            elif seq is None:
                continue
            # rw anti-dependency: next committed writer of the key after seq.
            seqs = seqs_map.get(key)
            if seqs:
                index = bisect_right(seqs, seq)
                if index < len(seqs):
                    add_edge(txn_id, writers_map[key][index], "rw")
                    continue
            # No successor committed yet: park until one arrives.
            slot = waiting.get((key, writer))
            if slot is None:
                slot = waiting[(key, writer)] = {}
            slot[txn_id] = seq
        if scans:
            # Phantom rw edges, backward direction: keys already committed
            # inside a scanned range that the scan never read — the scan
            # observed their absence, which precedes their first committed
            # version.  Forward direction (keys committed later) is handled
            # by the watch registry in the versions loop below.
            read_keys = {key for key, _version in reads}
            table_pks = self._table_pks
            scan_watch = self._scan_watch
            for key_range in scans:
                table = key_range.table
                pks = table_pks.get(table)
                if pks:
                    start, stop = slice_sorted_pks(pks, key_range.lo, key_range.hi)
                    for pk in pks[start:stop]:
                        key = (table, pk)
                        if key in read_keys:
                            continue
                        add_edge(txn_id, writers_map[key][0], "rw")
                watchers = scan_watch.get(table)
                if watchers is None:
                    watchers = scan_watch[table] = []
                watchers.append((txn_id, key_range, read_keys))
        committed.add(txn_id)
        for version in versions:
            key = version.key
            seq = version.commit_seq
            writers = writers_map.get(key)
            if writers is None:
                writers = writers_map[key] = []
                seqs_map[key] = []
                if isinstance(key, tuple) and len(key) == 2:
                    # First committed version of the key: index it for later
                    # scans, and give every earlier scan that covered (but
                    # never read) it the phantom rw edge it is owed.
                    table, pk = key
                    pks = self._table_pks.get(table)
                    if pks is None:
                        pks = self._table_pks[table] = []
                    insort(pks, pk)
                    watchers = self._scan_watch.get(table)
                    if watchers:
                        for scanner_id, key_range, read_keys in watchers:
                            if scanner_id == txn_id or key in read_keys:
                                continue
                            if key_range.contains_pk(pk):
                                add_edge(scanner_id, txn_id, "rw")
            previous = writers[-1] if writers else 0
            writers.append(txn_id)
            seqs_map[key].append(seq)
            final[(key, txn_id)] = seq
            if previous:
                add_edge(previous, txn_id, "ww")
            parked = waiting.pop((key, previous), None)
            if parked:
                for reader in parked:
                    add_edge(reader, txn_id, "rw")
            pipelined = waiting.get((key, txn_id))
            if pipelined:
                # Readers that consumed T's version before T committed: the
                # wr edge lands now (they stay parked for their rw edge),
                # and a reader that observed a sequenced non-final version
                # saw an intermediate write.
                for reader, read_seq in pipelined.items():
                    add_edge(txn_id, reader, "wr")
                    if read_seq is not None and read_seq != seq:
                        self.intermediate_reads.append((reader, key, txn_id))

    def on_abort(self, txn_id):
        """Record the abort so later-committing readers of it are flagged."""
        self._aborted.add(txn_id)

    def on_crash(self, vanished):
        """Stitch across a simulated crash: erase the *vanished* writers.

        ``vanished`` are transactions that committed in memory but were not
        durable when the crash hit — recovery discarded them, so their
        versions leave the durable timeline entirely.  Their per-key
        version-order entries are purged (post-recovery edge derivation then
        connects surviving versions directly) and the ids move from
        committed to aborted, so any retained read of their data is flagged
        exactly like a read of an aborted transaction.

        Soundness of purging (rather than re-running the detector): the
        rebuilt store hands out commit sequences strictly above every
        pre-crash sequence, so every cross-crash edge points from the
        pre-crash side to the post-crash side — no cycle can span the
        crash, and edges already folded into the detector remain valid
        (they were derived from reads/writes that really happened before
        the crash; a cycle among them was a genuine pre-crash anomaly).
        """
        vanished = set(vanished)
        if not vanished:
            return
        self._committed -= vanished
        self._aborted |= vanished
        writers_map, seqs_map, final = self._writers, self._seqs, self._final
        dead_keys = []
        for key, writers in writers_map.items():
            if not any(writer in vanished for writer in writers):
                continue
            for writer in writers:
                if writer in vanished:
                    final.pop((key, writer), None)
            kept = [
                (seq, writer)
                for seq, writer in zip(seqs_map[key], writers)
                if writer not in vanished
            ]
            if kept:
                seqs_map[key] = [seq for seq, _writer in kept]
                writers_map[key] = [writer for _seq, writer in kept]
            else:
                dead_keys.append(key)
        for key in dead_keys:
            del writers_map[key]
            del seqs_map[key]
            if isinstance(key, tuple) and len(key) == 2:
                table, pk = key
                pks = self._table_pks.get(table)
                if pks:
                    index = bisect_left(pks, pk)
                    if index < len(pks) and pks[index] == pk:
                        del pks[index]
        # A vanished transaction must leave no trace as a *reader* either:
        # its parked reads would otherwise surface as false pending-aborted
        # reads, and its scan predicates would owe phantom edges it can no
        # longer be charged with.
        empty_slots = []
        for slot_key, readers in self._waiting.items():
            for reader in list(readers):
                if reader in vanished:
                    del readers[reader]
            if not readers:
                empty_slots.append(slot_key)
        for slot_key in empty_slots:
            del self._waiting[slot_key]
        for table, watchers in self._scan_watch.items():
            self._scan_watch[table] = [
                entry for entry in watchers if entry[0] not in vanished
            ]
        # Anomalies already charged to a now-vanished reader evaporate with
        # it (it left no trace); anomalies *against* vanished writers are
        # re-derived by the checker's stitched-history pass.
        self.aborted_reads = [
            entry for entry in self.aborted_reads if entry[0] not in vanished
        ]
        self.intermediate_reads = [
            entry for entry in self.intermediate_reads if entry[0] not in vanished
        ]

    def pending_aborted_reads(self):
        """Parked readers whose writer never committed: aborted reads.

        Run-end sweep of the waiting frontier — O(parked readers), the only
        post-measurement work the streaming checker needs.  Mirrors the
        post-hoc condition: the read is aborted when the writer aborted, or
        when the observed version never got a commit sequence and its
        writer never committed.
        """
        committed, aborted = self._committed, self._aborted
        flagged = []
        for (key, writer), readers in self._waiting.items():
            if writer == 0 or writer in committed:
                continue
            writer_aborted = writer in aborted
            for reader, seq in sorted(readers.items()):
                if writer_aborted or seq is None:
                    flagged.append((reader, key, writer))
        return flagged
