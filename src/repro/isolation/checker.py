"""Isolation checker: the test oracle used by unit and property-based tests.

Given a committed history the checker verifies the three conditions of the
paper's correctness definition (Definition 4.2.1): no aborted reads, no
intermediate reads, no circularity in the Direct Serialization Graph.
"""

from dataclasses import dataclass, field

from repro.errors import IsolationViolation
from repro.isolation.dsg import build_dsg
from repro.isolation.history import committed_history

#: DSG cycle restrictions per isolation level (Adya's definitions,
#: item-level only, so repeatable read and serializable coincide).
LEVEL_EDGE_KINDS = {
    "read-uncommitted": frozenset({"ww"}),
    "read-committed": frozenset({"ww", "wr"}),
    "repeatable-read": frozenset({"ww", "wr", "rw"}),
    "serializable": frozenset({"ww", "wr", "rw"}),
}

#: The level names accepted everywhere a level is plumbed through.
ISOLATION_LEVELS = tuple(LEVEL_EDGE_KINDS)


@dataclass
class IsolationReport:
    """Outcome of checking one history."""

    serializable: bool = True
    aborted_reads: list = field(default_factory=list)
    intermediate_reads: list = field(default_factory=list)
    cycles: list = field(default_factory=list)
    num_transactions: int = 0
    num_edges: int = 0

    @property
    def ok(self):
        return (
            self.serializable
            and not self.aborted_reads
            and not self.intermediate_reads
        )

    def raise_on_violation(self):
        if not self.ok:
            raise IsolationViolation(self.describe())
        return self

    def describe(self):
        if self.ok:
            return (
                f"serializable history: {self.num_transactions} transactions, "
                f"{self.num_edges} dependency edges"
            )
        problems = []
        if self.aborted_reads:
            problems.append(f"{len(self.aborted_reads)} aborted reads")
        if self.intermediate_reads:
            problems.append(f"{len(self.intermediate_reads)} intermediate reads")
        if self.cycles:
            problems.append(f"cycle {self.cycles[0]}")
        return "isolation violation: " + ", ".join(problems)


def check_history(history, level="serializable"):
    """Check a history against an isolation level.

    ``level`` is one of :data:`ISOLATION_LEVELS`; the corresponding DSG
    cycle restrictions follow Adya's definitions (item-level only, so
    repeatable read and serializable coincide, as noted in Section 2.2.3).
    An unknown level raises ``ValueError`` instead of silently checking
    serializability.
    """
    kinds = LEVEL_EDGE_KINDS.get(level)
    if kinds is None:
        raise ValueError(
            f"unknown isolation level {level!r}; choose one of {sorted(LEVEL_EDGE_KINDS)}"
        )
    report = IsolationReport(num_transactions=len(history))
    committed = history.committed_ids()

    # Anomaly 1: aborted reads (a committed txn read a version that never committed).
    for txn in history.transactions.values():
        for key, writer, commit_seq in txn.reads:
            if writer in history.aborted_ids or (
                commit_seq is None and writer not in committed and writer != 0
            ):
                report.aborted_reads.append((txn.txn_id, key, writer))

    # Anomaly 2: intermediate reads are prevented structurally (the storage
    # module overwrites a transaction's earlier uncommitted version of the
    # same key), but double-check: a read's version must be the writer's
    # final installed version of that key.  One pass over the version orders
    # builds the final-seq map; a per-read rescan would be quadratic on hot
    # keys.
    final_seqs = history.final_write_seqs()
    for txn in history.transactions.values():
        for key, writer, commit_seq in txn.reads:
            if writer not in committed or commit_seq is None:
                continue
            final_seq = final_seqs.get((key, writer))
            if final_seq is not None and commit_seq != final_seq:
                report.intermediate_reads.append((txn.txn_id, key, writer))

    # Circularity.
    dsg = build_dsg(history)
    report.num_edges = dsg.num_edges
    cycle = dsg.find_cycle(kinds)
    if cycle:
        report.cycles.append(cycle)
        report.serializable = False
    return report


def check_engine(engine, level="serializable"):
    """Extract the committed history of ``engine`` and check it."""
    history = committed_history(engine)
    return check_history(history, level=level)


def check_recorder(recorder, level="serializable"):
    """Check the history streamed into a :class:`HistoryRecorder`."""
    return check_history(recorder.history(), level=level)
