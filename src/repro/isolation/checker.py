"""Isolation checker: the test oracle used by unit and property-based tests.

Given a committed history the checker verifies the three conditions of the
paper's correctness definition (Definition 4.2.1): no aborted reads, no
intermediate reads, no circularity in the Direct Serialization Graph.
"""

from dataclasses import dataclass, field

from repro.errors import IsolationViolation
from repro.isolation.dsg import build_dsg
from repro.isolation.history import committed_history


@dataclass
class IsolationReport:
    """Outcome of checking one history."""

    serializable: bool = True
    aborted_reads: list = field(default_factory=list)
    intermediate_reads: list = field(default_factory=list)
    cycles: list = field(default_factory=list)
    num_transactions: int = 0
    num_edges: int = 0

    @property
    def ok(self):
        return (
            self.serializable
            and not self.aborted_reads
            and not self.intermediate_reads
        )

    def raise_on_violation(self):
        if not self.ok:
            raise IsolationViolation(self.describe())
        return self

    def describe(self):
        if self.ok:
            return (
                f"serializable history: {self.num_transactions} transactions, "
                f"{self.num_edges} dependency edges"
            )
        problems = []
        if self.aborted_reads:
            problems.append(f"{len(self.aborted_reads)} aborted reads")
        if self.intermediate_reads:
            problems.append(f"{len(self.intermediate_reads)} intermediate reads")
        if self.cycles:
            problems.append(f"cycle {self.cycles[0]}")
        return "isolation violation: " + ", ".join(problems)


def check_history(history, level="serializable"):
    """Check a history against an isolation level.

    ``level`` is one of ``"serializable"``, ``"repeatable-read"``,
    ``"read-committed"`` or ``"read-uncommitted"``; the corresponding DSG
    cycle restrictions follow Adya's definitions (item-level only, so
    repeatable read and serializable coincide, as noted in Section 2.2.3).
    """
    report = IsolationReport(num_transactions=len(history))
    committed = set(history.transactions)

    # Anomaly 1: aborted reads (a committed txn read a version that never committed).
    for txn in history.transactions.values():
        for key, writer, commit_seq in txn.reads:
            if writer in history.aborted_ids or (
                commit_seq is None and writer not in committed and writer != 0
            ):
                report.aborted_reads.append((txn.txn_id, key, writer))

    # Anomaly 2: intermediate reads are prevented structurally (the storage
    # module overwrites a transaction's earlier uncommitted version of the
    # same key), but double-check: a read's version must be the writer's
    # final installed version of that key.
    for txn in history.transactions.values():
        for key, writer, commit_seq in txn.reads:
            if writer not in committed or commit_seq is None:
                continue
            final_seq = None
            for seq, candidate_writer in history.version_orders.get(key, []):
                if candidate_writer == writer:
                    final_seq = seq
            if final_seq is not None and commit_seq != final_seq:
                report.intermediate_reads.append((txn.txn_id, key, writer))

    # Circularity.
    dsg = build_dsg(history)
    report.num_edges = dsg.num_edges
    kinds_by_level = {
        "read-uncommitted": {"ww"},
        "read-committed": {"ww", "wr"},
        "repeatable-read": {"ww", "wr", "rw"},
        "serializable": {"ww", "wr", "rw"},
    }
    kinds = kinds_by_level.get(level, {"ww", "wr", "rw"})
    cycle = dsg.find_cycle(kinds)
    if cycle:
        report.cycles.append(cycle)
        report.serializable = False
    return report


def check_engine(engine, level="serializable"):
    """Extract the committed history of ``engine`` and check it."""
    history = committed_history(engine)
    return check_history(history, level=level)
