"""Isolation checker: the test oracle used by unit and property-based tests.

Given a committed history the checker verifies the three conditions of the
paper's correctness definition (Definition 4.2.1): no aborted reads, no
intermediate reads, no circularity in the Direct Serialization Graph.

Circularity is answered natively (no networkx on this path): a recorder
built with a streaming level already holds the incremental verdict — its
:class:`~repro.isolation.streaming.StreamingDSGChecker` folded every edge
in at commit time — and :func:`check_history` falls back to one batch
Tarjan pass (:func:`repro.isolation.cycles.find_cycle`) over the natively
derived edges.  The networkx graph in :mod:`repro.isolation.dsg` remains
the cross-checked reference implementation.
"""

from dataclasses import dataclass, field

from repro.errors import IsolationViolation
from repro.isolation.cycles import find_cycle
from repro.isolation.dsg import iter_dsg_edges
from repro.isolation.history import committed_history
from repro.isolation.levels import ISOLATION_LEVELS, LEVEL_EDGE_KINDS, kinds_for

__all__ = [
    "ISOLATION_LEVELS",
    "LEVEL_EDGE_KINDS",
    "IsolationReport",
    "check_engine",
    "check_history",
    "check_recorder",
]


@dataclass
class IsolationReport:
    """Outcome of checking one history."""

    serializable: bool = True
    aborted_reads: list = field(default_factory=list)
    intermediate_reads: list = field(default_factory=list)
    cycles: list = field(default_factory=list)
    num_transactions: int = 0
    num_edges: int = 0

    @property
    def ok(self):
        return (
            self.serializable
            and not self.aborted_reads
            and not self.intermediate_reads
        )

    def raise_on_violation(self):
        if not self.ok:
            raise IsolationViolation(self.describe())
        return self

    def describe(self):
        if self.ok:
            return (
                f"serializable history: {self.num_transactions} transactions, "
                f"{self.num_edges} dependency edges"
            )
        problems = []
        if self.aborted_reads:
            problems.append(f"{len(self.aborted_reads)} aborted reads")
        if self.intermediate_reads:
            problems.append(f"{len(self.intermediate_reads)} intermediate reads")
        if self.cycles:
            problems.append(f"cycle {self.cycles[0]}")
        return "isolation violation: " + ", ".join(problems)


def _check_anomalies(history):
    """Aborted- and intermediate-read passes (Definition 4.2.1, items 1-2)."""
    report = IsolationReport(num_transactions=len(history))
    committed = history.committed_ids()

    # Anomaly 1: aborted reads (a committed txn read a version that never committed).
    for txn in history.transactions.values():
        for key, writer, commit_seq in txn.reads:
            if writer in history.aborted_ids or (
                commit_seq is None and writer not in committed and writer != 0
            ):
                report.aborted_reads.append((txn.txn_id, key, writer))

    # Anomaly 2: intermediate reads are prevented structurally (the storage
    # module overwrites a transaction's earlier uncommitted version of the
    # same key), but double-check: a read's version must be the writer's
    # final installed version of that key.  One pass over the version orders
    # builds the final-seq map; a per-read rescan would be quadratic on hot
    # keys.
    final_seqs = history.final_write_seqs()
    for txn in history.transactions.values():
        for key, writer, commit_seq in txn.reads:
            if writer not in committed or commit_seq is None:
                continue
            final_seq = final_seqs.get((key, writer))
            if final_seq is not None and commit_seq != final_seq:
                report.intermediate_reads.append((txn.txn_id, key, writer))
    return report


def check_history(history, level="serializable"):
    """Check a history against an isolation level.

    ``level`` is one of :data:`ISOLATION_LEVELS`; the corresponding DSG
    cycle restrictions follow Adya's definitions (item-level only, so
    repeatable read and serializable coincide, as noted in Section 2.2.3).
    An unknown level raises ``ValueError`` instead of silently checking
    serializability.
    """
    kinds = kinds_for(level)
    report = _check_anomalies(history)

    # Circularity: one native Tarjan pass over the restricted edge set.
    adjacency = {}
    num_edges = 0
    for source, target, kind in iter_dsg_edges(history):
        num_edges += 1
        if kind not in kinds:
            continue
        successors = adjacency.get(source)
        if successors is None:
            successors = adjacency[source] = set()
        successors.add(target)
    report.num_edges = num_edges
    cycle = find_cycle(adjacency)
    if cycle:
        report.cycles.append(cycle)
        report.serializable = False
    return report


def check_engine(engine, level="serializable"):
    """Extract the committed history of ``engine`` and check it."""
    history = committed_history(engine)
    return check_history(history, level=level)


def check_recorder(recorder, level="serializable"):
    """Check the history streamed into a :class:`HistoryRecorder`.

    When the recorder streams into an in-line DSG checker at the same
    level, the circularity verdict is already incremental — only the two
    linear anomaly passes run here.  Otherwise this falls back to the full
    post-hoc :func:`check_history` pass.
    """
    kinds = kinds_for(level)
    checker = recorder.streaming_checker
    if checker is not None and checker.kinds == kinds:
        report = IsolationReport(num_transactions=recorder.recorded_commits)
        report.aborted_reads = (
            list(checker.aborted_reads) + checker.pending_aborted_reads()
        )
        report.intermediate_reads = list(checker.intermediate_reads)
        report.num_edges = checker.num_edges
        cycle = checker.cycle
        if cycle:
            report.cycles.append(list(cycle))
            report.serializable = False
        if getattr(recorder, "crossed_crash", False):
            # Cross-crash mode: the streaming checker cannot retroactively
            # flag a surviving transaction whose read of a *vanished*
            # writer was folded in while that writer still looked
            # committed.  The stitched history has the vanished ids marked
            # aborted, so one linear anomaly pass over the retained
            # records recovers exactly those reads; the cycle verdict
            # stays incremental (purging cannot un-detect a real cycle).
            stitched = _check_anomalies(recorder.history())
            report.aborted_reads = list(
                dict.fromkeys(
                    [tuple(e) for e in report.aborted_reads]
                    + [tuple(e) for e in stitched.aborted_reads]
                )
            )
            report.intermediate_reads = list(
                dict.fromkeys(
                    [tuple(e) for e in report.intermediate_reads]
                    + [tuple(e) for e in stitched.intermediate_reads]
                )
            )
        return report
    return check_history(recorder.history(), level=level)
