"""Adya-style isolation theory used as a correctness oracle in tests.

The committed execution history of an engine is turned into a Direct
Serialization Graph (Section 2.2.3); isolation levels are characterised by
the anomalies (aborted/intermediate reads) and DSG cycles they proscribe.
"""

from repro.isolation.history import History, HistoryRecorder, committed_history
from repro.isolation.cycles import IncrementalCycleDetector, find_cycle
from repro.isolation.dsg import DirectSerializationGraph, build_dsg, iter_dsg_edges
from repro.isolation.levels import ISOLATION_LEVELS, LEVEL_EDGE_KINDS
from repro.isolation.streaming import StreamingDSGChecker
from repro.isolation.checker import (
    IsolationReport,
    check_engine,
    check_history,
    check_recorder,
)

__all__ = [
    "History",
    "HistoryRecorder",
    "committed_history",
    "IncrementalCycleDetector",
    "find_cycle",
    "DirectSerializationGraph",
    "build_dsg",
    "iter_dsg_edges",
    "ISOLATION_LEVELS",
    "LEVEL_EDGE_KINDS",
    "StreamingDSGChecker",
    "IsolationReport",
    "check_engine",
    "check_history",
    "check_recorder",
]
