"""Adya-style isolation theory used as a correctness oracle in tests.

The committed execution history of an engine is turned into a Direct
Serialization Graph (Section 2.2.3); isolation levels are characterised by
the anomalies (aborted/intermediate reads) and DSG cycles they proscribe.
"""

from repro.isolation.history import History, HistoryRecorder, committed_history
from repro.isolation.dsg import DirectSerializationGraph, build_dsg
from repro.isolation.checker import (
    IsolationReport,
    check_engine,
    check_history,
    check_recorder,
)

__all__ = [
    "History",
    "HistoryRecorder",
    "committed_history",
    "DirectSerializationGraph",
    "build_dsg",
    "IsolationReport",
    "check_engine",
    "check_history",
    "check_recorder",
]
