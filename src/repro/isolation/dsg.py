"""Direct Serialization Graphs (Adya, Section 2.2.3).

Nodes are committed transactions; edges are the three kinds of direct
dependencies: write-read (``wr``), write-write (``ww``) and read-write
anti-dependencies (``rw``).  Isolation levels are characterised by which
cycles they forbid.
"""

from dataclasses import dataclass, field

import networkx as nx


@dataclass
class DirectSerializationGraph:
    """A DSG with typed edges, built from a :class:`~repro.isolation.history.History`."""

    graph: nx.MultiDiGraph = field(default_factory=nx.MultiDiGraph)

    def add_edge(self, source, target, kind):
        if source == target:
            return
        self.graph.add_edge(source, target, kind=kind)

    def edges(self, kinds=None):
        for source, target, data in self.graph.edges(data=True):
            if kinds is None or data["kind"] in kinds:
                yield source, target, data["kind"]

    def subgraph(self, kinds):
        """A plain DiGraph restricted to the given edge kinds."""
        restricted = nx.DiGraph()
        restricted.add_nodes_from(self.graph.nodes)
        for source, target, kind in self.edges(kinds):
            restricted.add_edge(source, target)
        return restricted

    def has_cycle(self, kinds=None):
        restricted = self.subgraph(kinds or {"ww", "wr", "rw"})
        try:
            nx.find_cycle(restricted)
            return True
        except nx.NetworkXNoCycle:
            return False

    def find_cycle(self, kinds=None):
        restricted = self.subgraph(kinds or {"ww", "wr", "rw"})
        try:
            return nx.find_cycle(restricted)
        except nx.NetworkXNoCycle:
            return []

    @property
    def num_nodes(self):
        return self.graph.number_of_nodes()

    @property
    def num_edges(self):
        return self.graph.number_of_edges()


def build_dsg(history):
    """Construct the DSG of a committed history."""
    dsg = DirectSerializationGraph()
    committed = history.committed_ids()
    for txn_id in history.transactions:
        dsg.graph.add_node(txn_id)

    # ww edges: consecutive committed versions of each key.
    for key, order in history.version_orders.items():
        previous_writer = None
        for _seq, writer in order:
            if previous_writer is not None and previous_writer in committed and writer in committed:
                dsg.add_edge(previous_writer, writer, "ww")
            previous_writer = writer

    # wr and rw edges from each transaction's reads.
    for txn in history.transactions.values():
        for key, writer, commit_seq in txn.reads:
            if writer in committed and writer != txn.txn_id:
                dsg.add_edge(writer, txn.txn_id, "wr")
            if commit_seq is None:
                # Read of a version that never committed (should have been
                # prevented); the checker flags it as an aborted read.
                continue
            next_writer, _next_seq = history.next_writer_after(key, commit_seq)
            if next_writer is not None and next_writer in committed:
                dsg.add_edge(txn.txn_id, next_writer, "rw")
    return dsg
