"""Direct Serialization Graphs (Adya, Section 2.2.3).

Nodes are committed transactions; edges are the three kinds of direct
dependencies: write-read (``wr``), write-write (``ww``) and read-write
anti-dependencies (``rw``).  Isolation levels are characterised by which
cycles they forbid.

:func:`iter_dsg_edges` is the single source of truth for how a history
maps to dependency edges; both the networkx reference graph built here and
the native checker path (:mod:`repro.isolation.checker`) derive their edges
from it, so equivalence tests compare detectors, not derivations.
"""

from dataclasses import dataclass, field

import networkx as nx

from repro.storage.ranges import slice_sorted_pks

ALL_EDGE_KINDS = frozenset({"ww", "wr", "rw"})


def iter_dsg_edges(history):
    """Yield every ``(source, target, kind)`` dependency edge of a history."""
    committed = history.committed_ids()

    # ww edges: consecutive committed versions of each key.
    for order in history.version_orders.values():
        previous_writer = None
        for _seq, writer in order:
            if previous_writer is not None and previous_writer in committed and writer in committed:
                if previous_writer != writer:
                    yield previous_writer, writer, "ww"
            previous_writer = writer

    # wr and rw edges from each transaction's reads.
    for txn in history.transactions.values():
        for key, writer, commit_seq in txn.reads:
            if writer in committed and writer != txn.txn_id:
                yield writer, txn.txn_id, "wr"
            if commit_seq is None:
                # Read of a version that never committed (should have been
                # prevented); the checker flags it as an aborted read.
                continue
            next_writer, _next_seq = history.next_writer_after(key, commit_seq)
            if next_writer is not None and next_writer in committed:
                if next_writer != txn.txn_id:
                    yield txn.txn_id, next_writer, "rw"

    # Phantom rw edges from recorded scans: a scan anti-depends on the first
    # committed writer of every key its predicate covers but it never read —
    # the scan observed the key's absence, which precedes that version.
    # (The loader, writer 0, is skipped: its versions predate every scan, so
    # a scan that missed one simply had the version hidden by its CC; the
    # derivable constraint is against the first transactional writer.)
    scanners = [txn for txn in history.transactions.values() if txn.scans]
    if scanners:
        table_pks = {}
        first_writer = {}
        for key, order in history.version_orders.items():
            if not (isinstance(key, tuple) and len(key) == 2):
                continue
            writer = next(
                (w for _seq, w in order if w != 0 and w in committed), None
            )
            if writer is None:
                continue
            table, pk = key
            pks = table_pks.get(table)
            if pks is None:
                pks = table_pks[table] = []
            pks.append(pk)
            first_writer[key] = writer
        for pks in table_pks.values():
            pks.sort()
        for txn in scanners:
            read_keys = {key for key, _writer, _seq in txn.reads}
            for key_range in txn.scans:
                pks = table_pks.get(key_range.table)
                if not pks:
                    continue
                start, stop = slice_sorted_pks(pks, key_range.lo, key_range.hi)
                for pk in pks[start:stop]:
                    key = (key_range.table, pk)
                    if key in read_keys:
                        continue
                    writer = first_writer[key]
                    if writer != txn.txn_id:
                        yield txn.txn_id, writer, "rw"


@dataclass
class DirectSerializationGraph:
    """A DSG with typed edges, built from a :class:`~repro.isolation.history.History`.

    Kind-restricted views are memoised: repeated ``has_cycle``/``find_cycle``
    queries (one per isolation level, say) reuse one restricted ``DiGraph``
    per edge-kind frozenset instead of rebuilding it per query.  Mutate the
    graph through :meth:`add_edge` (which invalidates the cache); the cache
    also self-heals when nodes are added directly to ``graph``.
    """

    graph: nx.MultiDiGraph = field(default_factory=nx.MultiDiGraph)
    _subgraphs: dict = field(default_factory=dict, repr=False, compare=False)

    def add_edge(self, source, target, kind):
        if source == target:
            return
        self.graph.add_edge(source, target, kind=kind)
        if self._subgraphs:
            self._subgraphs.clear()

    def edges(self, kinds=None):
        for source, target, data in self.graph.edges(data=True):
            if kinds is None or data["kind"] in kinds:
                yield source, target, data["kind"]

    def subgraph(self, kinds):
        """A plain DiGraph restricted to the given edge kinds (cached)."""
        kinds = frozenset(kinds)
        cached = self._subgraphs.get(kinds)
        if cached is not None and cached.number_of_nodes() == self.graph.number_of_nodes():
            return cached
        restricted = nx.DiGraph()
        restricted.add_nodes_from(self.graph.nodes)
        for source, target, kind in self.edges(kinds):
            restricted.add_edge(source, target)
        self._subgraphs[kinds] = restricted
        return restricted

    def has_cycle(self, kinds=None):
        restricted = self.subgraph(kinds or ALL_EDGE_KINDS)
        try:
            nx.find_cycle(restricted)
            return True
        except nx.NetworkXNoCycle:
            return False

    def find_cycle(self, kinds=None):
        restricted = self.subgraph(kinds or ALL_EDGE_KINDS)
        try:
            return nx.find_cycle(restricted)
        except nx.NetworkXNoCycle:
            return []

    @property
    def num_nodes(self):
        return self.graph.number_of_nodes()

    @property
    def num_edges(self):
        return self.graph.number_of_edges()


def build_dsg(history):
    """Construct the (networkx reference) DSG of a committed history."""
    dsg = DirectSerializationGraph()
    for txn_id in history.transactions:
        dsg.graph.add_node(txn_id)
    for source, target, kind in iter_dsg_edges(history):
        dsg.add_edge(source, target, kind)
    return dsg
