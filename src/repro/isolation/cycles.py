"""Native cycle detection for dependency graphs — no networkx on the hot path.

Two detectors, sharing nothing but the edge-list cycle representation
(``[(u, v), (v, w), ..., (x, u)]``, the shape ``nx.find_cycle`` returns):

* :class:`IncrementalCycleDetector` — ordering-based incremental cycle
  detection (Pearce & Kelly's dynamic topological order).  Each ``add_edge``
  costs O(1) when the edge respects the current order (the overwhelmingly
  common case for edges streamed in commit order) and O(affected region)
  when it does not; the first edge that closes a cycle is reported with the
  full cycle path.  This is what the streaming DSG checker feeds at commit
  time.
* :func:`find_cycle` — batch fallback: one iterative Tarjan SCC pass over a
  prebuilt adjacency mapping, O(V + E).  Used by the post-hoc checker path
  (hand-built histories, recorders without streaming enabled).
"""


class IncrementalCycleDetector:
    """Maintain a topological order of a growing digraph; report the first cycle.

    Nodes are created implicitly by :meth:`add_edge` and assigned increasing
    order indices, so a stream of edges that mostly points forward (from
    earlier-created to later-created nodes — exactly what commit-ordered
    dependency edges look like) never triggers reordering.  A back edge
    ``u -> v`` with ``ord[u] > ord[v]`` triggers Pearce-Kelly discovery:
    a forward search from ``v`` bounded by ``ord[u]`` either reaches ``u``
    (cycle: reconstructed via parent pointers) or yields the set of nodes
    that must shift after a backward search from ``u``.

    Once a cycle is found the detector latches: ``cycle`` keeps the first
    cycle and later edges are recorded but no longer checked (a broken
    order cannot be repaired, and the checker only needs the first witness).
    """

    __slots__ = ("_out", "_in", "_ord", "_next_index", "cycle", "num_edges")

    def __init__(self):
        self._out = {}
        self._in = {}
        self._ord = {}
        self._next_index = 0
        self.cycle = None
        self.num_edges = 0

    def __contains__(self, node):
        return node in self._ord

    @property
    def num_nodes(self):
        return len(self._ord)

    def has_cycle(self):
        return self.cycle is not None

    def _add_node(self, node):
        if node not in self._ord:
            self._ord[node] = self._next_index
            self._next_index += 1
            self._out[node] = set()
            self._in[node] = set()

    def add_edge(self, source, target):
        """Insert one edge; returns the cycle (edge list) if it closed one."""
        if source == target:
            if self.cycle is None:
                self.cycle = [(source, source)]
            return self.cycle
        self._add_node(source)
        self._add_node(target)
        out_edges = self._out[source]
        if target in out_edges:
            return None
        out_edges.add(target)
        self._in[target].add(source)
        self.num_edges += 1
        if self.cycle is not None:
            return None
        order = self._ord
        lower, upper = order[target], order[source]
        if lower > upper:
            return None  # edge already respects the topological order
        # Forward discovery from target, bounded by the affected region.
        parents = {target: None}
        stack = [target]
        forward = [target]
        outs = self._out
        while stack:
            node = stack.pop()
            for successor in outs[node]:
                if successor == source:
                    # Cycle: source -> target -> ... -> node -> source.
                    path = [node]
                    while parents[path[-1]] is not None:
                        path.append(parents[path[-1]])
                    path.reverse()  # target ... node
                    edges = [(source, target)]
                    for index in range(len(path) - 1):
                        edges.append((path[index], path[index + 1]))
                    edges.append((path[-1], source))
                    self.cycle = edges
                    return edges
                if successor not in parents and order[successor] <= upper:
                    parents[successor] = node
                    forward.append(successor)
                    stack.append(successor)
        # No cycle: backward discovery from source, then reorder the region.
        backward_seen = {source}
        stack = [source]
        backward = [source]
        ins = self._in
        while stack:
            node = stack.pop()
            for predecessor in ins[node]:
                if predecessor not in backward_seen and order[predecessor] >= lower:
                    backward_seen.add(predecessor)
                    backward.append(predecessor)
                    stack.append(predecessor)
        # Reassign the region's indices: backward block first, forward after.
        backward.sort(key=order.__getitem__)
        forward.sort(key=order.__getitem__)
        slots = sorted(order[node] for node in backward + forward)
        for slot, node in zip(slots, backward + forward):
            order[node] = slot
        return None


def find_cycle(adjacency):
    """Find one cycle in ``{node: successors}``; edge list or ``None``.

    Batch fallback for the post-hoc checker path: a single iterative Tarjan
    strongly-connected-components pass (O(V + E), no recursion) locates a
    non-trivial SCC or a self-loop; a bounded walk inside that SCC then
    extracts a concrete cycle for the report.
    """
    index_of = {}
    lowlink = {}
    on_stack = set()
    scc_stack = []
    counter = 0
    target_scc = None

    for root in adjacency:
        if root in index_of:
            continue
        work = [(root, iter(adjacency.get(root, ())))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        scc_stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor == node:
                    return [(node, node)]
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter
                    counter += 1
                    scc_stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(adjacency.get(successor, ()))))
                    advanced = True
                    break
                if successor in on_stack:
                    if index_of[successor] < lowlink[node]:
                        lowlink[node] = index_of[successor]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index_of[node]:
                component = set()
                while True:
                    member = scc_stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                if len(component) > 1:
                    target_scc = component
                    break
        if target_scc is not None:
            break
    if target_scc is None:
        return None

    # Walk inside the SCC until a node repeats: that suffix is a cycle.
    start = next(iter(target_scc))
    path = [start]
    position = {start: 0}
    while True:
        current = path[-1]
        step = next(
            successor
            for successor in adjacency.get(current, ())
            if successor in target_scc
        )
        if step in position:
            loop = path[position[step]:]
            return [
                (loop[index], loop[(index + 1) % len(loop)])
                for index in range(len(loop))
            ]
        position[step] = len(path)
        path.append(step)
