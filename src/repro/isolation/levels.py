"""Isolation levels and the DSG edge kinds each one restricts.

Split out of :mod:`repro.isolation.checker` so that the streaming history
recorder (which needs the kind sets to configure its in-line cycle
detector) does not import the checker and create an import cycle.
"""

#: DSG cycle restrictions per isolation level (Adya's definitions,
#: item-level only, so repeatable read and serializable coincide).
LEVEL_EDGE_KINDS = {
    "read-uncommitted": frozenset({"ww"}),
    "read-committed": frozenset({"ww", "wr"}),
    "repeatable-read": frozenset({"ww", "wr", "rw"}),
    "serializable": frozenset({"ww", "wr", "rw"}),
}

#: The level names accepted everywhere a level is plumbed through.
ISOLATION_LEVELS = tuple(LEVEL_EDGE_KINDS)


def kinds_for(level):
    """The DSG edge-kind set of ``level``; ``ValueError`` on unknown names."""
    kinds = LEVEL_EDGE_KINDS.get(level)
    if kinds is None:
        raise ValueError(
            f"unknown isolation level {level!r}; choose one of {sorted(LEVEL_EDGE_KINDS)}"
        )
    return kinds
