"""Contention profiling (Section 5.3).

Two profilers are provided:

* :class:`ContentionProfiler` — the paper's blocking-time profiler with
  nested-wait attribution (Section 5.3.2).  Every CC mechanism reports each
  blocking interval (who waited for whom, and when); the analysis charges to
  a conflict edge only the time during which the blocker was itself running,
  recursively attributing nested waits to the inner conflict.  The output is
  a score per unordered pair of transaction types; the highest-scoring pair
  is the bottleneck conflict edge.
* :class:`LatencyProfiler` — the elementary latency-based technique proposed
  by Callas, kept as a baseline to reproduce Figure 5.5 (it misattributes the
  payment/stock_level bottleneck to payment alone).
"""

import bisect
from collections import Counter, defaultdict
from dataclasses import dataclass


@dataclass
class BlockingEvent:
    """One blocking interval: ``blocked`` waited for ``blocker``."""

    blocked_id: int
    blocked_type: str
    blocker_id: int
    blocker_type: str
    start: float
    end: float
    kind: str = "lock"

    @property
    def duration(self):
        return max(self.end - self.start, 0.0)


class ContentionProfiler:
    """Collects blocking events and computes conflict-edge scores."""

    def __init__(self, enabled=True):
        self.enabled = enabled
        self.events = []
        self.aborts = Counter()
        self.abort_edges = Counter()
        self._started_at = 0.0

    # -- recording interface used by the engine and CC mechanisms ---------------

    def record_wait(self, blocked, blocker, start, end, kind="lock"):
        if not self.enabled or blocker is None or end <= start:
            return
        self.events.append(
            BlockingEvent(
                blocked_id=blocked.txn_id,
                blocked_type=blocked.txn_type,
                blocker_id=blocker.txn_id,
                blocker_type=blocker.txn_type,
                start=start,
                end=end,
                kind=kind,
            )
        )

    def record_abort(self, txn, reason, conflicting=None):
        if not self.enabled:
            return
        self.aborts[reason] += 1
        if conflicting is not None:
            edge = tuple(sorted((txn.txn_type, conflicting.txn_type)))
            self.abort_edges[edge] += 1

    def reset(self, now=0.0):
        self.events = []
        self.aborts = Counter()
        self.abort_edges = Counter()
        self._started_at = now

    # -- analysis -------------------------------------------------------------------

    def _blocked_intervals_by_txn(self):
        intervals = defaultdict(list)
        for event in self.events:
            intervals[event.blocked_id].append((event.start, event.end))
        for txn_id in intervals:
            intervals[txn_id].sort()
        return intervals

    @staticmethod
    def _overlap(interval_list, start, end):
        """Total overlap between [start, end] and a sorted interval list."""
        if not interval_list or end <= start:
            return 0.0
        total = 0.0
        starts = [item[0] for item in interval_list]
        index = max(bisect.bisect_left(starts, start) - 1, 0)
        for s, e in interval_list[index:]:
            if s >= end:
                break
            total += max(0.0, min(e, end) - max(s, start))
        return total

    def scores(self, kinds=None):
        """Directed scores: ``(blocker_type, blocked_type) -> attributed seconds``.

        The time a blocker spent itself blocked is charged (recursively, via
        the other blocking events) to the inner conflict instead.
        """
        blocked_intervals = self._blocked_intervals_by_txn()
        directed = Counter()
        for event in self.events:
            if kinds is not None and event.kind not in kinds:
                continue
            nested = self._overlap(
                blocked_intervals.get(event.blocker_id, []), event.start, event.end
            )
            effective = max(event.duration - nested, 0.0)
            directed[(event.blocker_type, event.blocked_type)] += effective
        return directed

    def edge_scores(self, kinds=None, abort_penalty=0.0):
        """Undirected conflict-edge scores (Section 5.3.2)."""
        edges = Counter()
        for (blocker, blocked), score in self.scores(kinds).items():
            edge = tuple(sorted((blocker, blocked)))
            edges[edge] += score
        if abort_penalty:
            for edge, count in self.abort_edges.items():
                edges[edge] += count * abort_penalty
        return edges

    def bottleneck_edge(self, kinds=None, abort_penalty=0.0, minimum_score=0.0):
        """The highest-scoring conflict edge, or ``None`` if nothing qualifies."""
        edges = self.edge_scores(kinds, abort_penalty)
        if not edges:
            return None
        edge, score = edges.most_common(1)[0]
        if score <= minimum_score:
            return None
        return edge, score

    def report(self, top=5):
        lines = ["contention profile:"]
        for edge, score in self.edge_scores(abort_penalty=0.0).most_common(top):
            lines.append(f"  {edge[0]} <-> {edge[1]}: {score:.3f}s blocked")
        for reason, count in self.aborts.most_common(top):
            lines.append(f"  aborts[{reason}] = {count}")
        return "\n".join(lines)


class LatencyProfiler:
    """Callas' latency-based profiling baseline (Section 5.3.1, Figure 5.5).

    It compares per-type mean latencies between a low-load and a high-load
    measurement and reports the transaction types whose latency inflates the
    most — which, as the paper shows, can miss the true bottleneck edge.
    """

    def __init__(self):
        self.samples = {}

    def record(self, label, stats_summary):
        """Record the per-type mean latencies of one measurement."""
        self.samples[label] = {
            name: data["mean_latency"]
            for name, data in stats_summary["per_type"].items()
            if data["commits"]
        }

    def latency_inflation(self, low_label, high_label):
        """Per-type latency ratio between the two measurements."""
        low = self.samples.get(low_label, {})
        high = self.samples.get(high_label, {})
        inflation = {}
        for name, high_latency in high.items():
            low_latency = low.get(name)
            if low_latency:
                inflation[name] = high_latency / low_latency
        return inflation

    def suspected_bottlenecks(self, low_label, high_label, threshold=2.0):
        """Transaction types whose latency inflated beyond ``threshold``."""
        inflation = self.latency_inflation(low_label, high_label)
        return sorted(
            [name for name, ratio in inflation.items() if ratio >= threshold],
            key=lambda name: -inflation[name],
        )
