"""Testing-stage reconfiguration driver (Section 5.5).

Wraps the engine's two reconfiguration protocols — the partial restart and
the online update — and measures the throughput dip each causes, which is the
data behind Figure 5.19.
"""

from dataclasses import dataclass, field


@dataclass
class ReconfigurationOutcome:
    """Timing and throughput impact of one reconfiguration."""

    protocol: str
    started_at: float
    finished_at: float
    throughput_before: float
    throughput_after: float
    throughput_series: list = field(default_factory=list)

    @property
    def duration(self):
        return self.finished_at - self.started_at


class ReconfigurationDriver:
    """Switches a live engine between configurations and measures the impact."""

    def __init__(self, engine):
        self.engine = engine
        self.history = []

    def _window_throughput(self, window=0.25):
        series = self.engine.stats.throughput_series()
        if not series:
            return 0.0
        recent = [rate for start, rate in series if start >= self.engine.env.now - window]
        if not recent:
            recent = [series[-1][1]]
        return sum(recent) / len(recent)

    def switch(self, new_configuration, protocol="online", force_abort_after=None):
        """Coroutine: apply ``new_configuration`` using the chosen protocol."""
        env = self.engine.env
        before = self._window_throughput()
        started = env.now
        if protocol == "partial-restart":
            yield from self.engine.reconfigure_partial_restart(
                new_configuration, force_abort_after=force_abort_after
            )
        elif protocol == "online":
            yield from self.engine.reconfigure_online(new_configuration)
        else:
            raise ValueError(f"unknown reconfiguration protocol {protocol!r}")
        finished = env.now
        after = self._window_throughput()
        outcome = ReconfigurationOutcome(
            protocol=protocol,
            started_at=started,
            finished_at=finished,
            throughput_before=before,
            throughput_after=after,
            throughput_series=list(self.engine.stats.throughput_series()),
        )
        self.history.append(outcome)
        return outcome
