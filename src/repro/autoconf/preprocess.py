"""CC-specific preprocessing hooks (Section 5.4.2).

Two kinds of preprocessing are supported, mirroring the paper:

1. Static analysis / code adjustment for a CC mechanism — runtime pipelining
   derives its pipeline steps from the group's transaction profiles, and the
   result is recorded in the spec params so a proposed configuration can be
   inspected (and rejected) before it is ever installed.
2. Local configuration refinement — a CC node may rewrite its own subtree;
   the shipped refinement is *partition-by-instance* for TSO groups, which
   splits one TSO group into per-instance groups keyed by an argument of the
   transactions (e.g. the SEATS flight id).
"""

from repro.analysis.rp_analysis import analyze_pipeline
from repro.errors import AnalysisError


def preprocess_runtime_pipelining(spec, profiles):
    """Record the derived pipeline in the spec params; raise if unusable."""
    group_profiles = [profiles[name] for name in spec.all_transactions()]
    analysis = analyze_pipeline(group_profiles)
    spec.params["pipeline_steps"] = [sorted(step) for step in analysis.steps]
    spec.params["pipeline_efficiency"] = analysis.pipeline_efficiency
    return analysis


def preprocess_tso_promises(spec, profiles):
    """Enable the promise optimisation where profiles declare write keys."""
    promised = [
        name
        for name in spec.all_transactions()
        if profiles[name].promise_keys is not None
    ]
    spec.params["promises"] = promised
    return promised


def partition_by_instance(spec, instance_key, label_suffix="per-instance"):
    """Refine a leaf spec into per-instance CC instances (Section 5.4.2)."""
    if not spec.is_leaf:
        raise AnalysisError("partition-by-instance applies to leaf groups only")
    spec.instance_key = instance_key
    if spec.label:
        spec.label = f"{spec.label} [{label_suffix}]"
    return spec


def apply_preprocessing(configuration, profiles, instance_keys=None):
    """Run every applicable preprocessing step over a candidate configuration.

    ``instance_keys`` optionally maps a transaction type to an
    ``args -> partition value`` callable; a TSO leaf whose transactions all
    have the same callable is partitioned by instance.
    """
    instance_keys = instance_keys or {}
    notes = []
    for spec in configuration.root.iter_nodes():
        if spec.cc == "rp":
            analysis = preprocess_runtime_pipelining(spec, profiles)
            notes.append(
                f"rp group {spec.all_transactions()}: {analysis.num_steps} steps"
            )
        if spec.cc == "tso":
            preprocess_tso_promises(spec, profiles)
            if spec.is_leaf and spec.instance_key is None:
                keys = [instance_keys.get(name) for name in spec.transactions]
                if keys and all(key is not None for key in keys):
                    partition_by_instance(spec, keys[0])
                    notes.append(
                        f"tso group {spec.all_transactions()}: partitioned by instance"
                    )
    return notes
