"""The iterative automatic-configuration algorithm (Figure 5.1).

Each iteration:

1. **Analysis** — run the workload under the current configuration with the
   contention profiler enabled and identify the bottleneck conflict edge.
2. **Optimization** — ask the optimizer for localized configuration rewrites
   that target that edge, then run CC-specific preprocessing on each.
3. **Testing** — measure every candidate (fresh database, same workload) and
   keep the best if it beats the current configuration.

The loop stops when no bottleneck is found, when no candidate improves
throughput, or after ``max_iterations``.
"""

from dataclasses import dataclass, field

from repro.autoconf.optimizer import ConfigurationOptimizer
from repro.autoconf.preprocess import apply_preprocessing
from repro.autoconf.profiler import ContentionProfiler
from repro.harness.configs import initial_configuration as _initial_configuration
from repro.harness.runner import BenchmarkRunner


def initial_configuration(workload):
    """The Figure 5.2 starting configuration for a workload."""
    types = workload.transaction_types()
    read_only = {name for name, ttype in types.items() if ttype.read_only}
    return _initial_configuration(set(types), read_only)


@dataclass
class IterationRecord:
    """What happened during one iteration of the algorithm."""

    iteration: int
    bottleneck: tuple
    bottleneck_score: float
    candidates: list
    chosen: str
    baseline_throughput: float
    best_throughput: float
    improved: bool


@dataclass
class AutoConfigResult:
    """Final outcome of the automatic configuration process."""

    initial_throughput: float
    final_throughput: float
    configuration: object
    iterations: list = field(default_factory=list)

    @property
    def speedup(self):
        if self.initial_throughput <= 0:
            return float("inf")
        return self.final_throughput / self.initial_throughput

    def describe(self):
        lines = [
            f"automatic configuration: {self.initial_throughput:.0f} -> "
            f"{self.final_throughput:.0f} txn/s ({self.speedup:.2f}x) in "
            f"{len(self.iterations)} iterations"
        ]
        for record in self.iterations:
            lines.append(
                f"  iter {record.iteration}: bottleneck {record.bottleneck} "
                f"(score {record.bottleneck_score:.3f}) -> {record.chosen} "
                f"({record.baseline_throughput:.0f} -> {record.best_throughput:.0f} txn/s)"
            )
        lines.append(self.configuration.describe())
        return "\n".join(lines)


class AutoConfigurator:
    """Runs the iterative configuration algorithm against a workload."""

    def __init__(
        self,
        workload,
        clients=60,
        duration=1.0,
        warmup=0.3,
        max_iterations=4,
        improvement_threshold=1.03,
        options=None,
        instance_keys=None,
        mix=None,
        seed=11,
    ):
        self.workload = workload
        self.clients = clients
        self.duration = duration
        self.warmup = warmup
        self.max_iterations = max_iterations
        self.improvement_threshold = improvement_threshold
        self.options = options
        self.instance_keys = instance_keys or {}
        self.mix = mix
        self.seed = seed
        self.optimizer = ConfigurationOptimizer(workload.transaction_types())

    # -- measurement ---------------------------------------------------------------

    def _measure(self, configuration, with_profiler=False):
        profiler = ContentionProfiler() if with_profiler else None
        runner = BenchmarkRunner(
            self.workload,
            configuration,
            options=self.options,
            profiler=profiler,
            seed=self.seed,
            mix=self.mix,
        )
        try:
            result = runner.run(self.clients, duration=self.duration, warmup=self.warmup)
        finally:
            # Always stop: it also unfreezes the GC state frozen at construction.
            runner.stop()
        return result, profiler

    # -- main loop ---------------------------------------------------------------------

    def run(self, starting_configuration=None):
        """Execute the iterative algorithm; returns an :class:`AutoConfigResult`."""
        current = starting_configuration or initial_configuration(self.workload)
        current = current.clone(name="auto-0")
        apply_preprocessing(
            current, self._profiles(), instance_keys=self.instance_keys
        )
        baseline, profiler = self._measure(current, with_profiler=True)
        initial_throughput = baseline.throughput
        iterations = []
        for iteration in range(1, self.max_iterations + 1):
            bottleneck = profiler.bottleneck_edge(abort_penalty=0.02) if profiler else None
            if bottleneck is None:
                break
            edge, score = bottleneck
            candidates = self.optimizer.propose(
                current, edge, name_prefix=f"auto-{iteration}"
            )
            if not candidates:
                break
            best_candidate = None
            best_result = None
            for candidate in candidates:
                apply_preprocessing(
                    candidate.configuration,
                    self._profiles(),
                    instance_keys=self.instance_keys,
                )
                result, _ = self._measure(candidate.configuration)
                if best_result is None or result.throughput > best_result.throughput:
                    best_candidate, best_result = candidate, result
            improved = (
                best_result is not None
                and best_result.throughput
                > baseline.throughput * self.improvement_threshold
            )
            iterations.append(
                IterationRecord(
                    iteration=iteration,
                    bottleneck=edge,
                    bottleneck_score=score,
                    candidates=[c.rationale for c in candidates],
                    chosen=best_candidate.rationale if improved else "keep current",
                    baseline_throughput=baseline.throughput,
                    best_throughput=best_result.throughput if best_result else 0.0,
                    improved=improved,
                )
            )
            if not improved:
                break
            current = best_candidate.configuration
            baseline, profiler = self._measure(current, with_profiler=True)
        return AutoConfigResult(
            initial_throughput=initial_throughput,
            final_throughput=baseline.throughput,
            configuration=current,
            iterations=iterations,
        )

    def _profiles(self):
        return {
            name: ttype.profile
            for name, ttype in self.workload.transaction_types().items()
        }
