"""Automatic configuration of the MCC federation (Chapter 5).

The package contains the four pieces of the iterative configuration
algorithm of Figure 5.1: the contention profiler (analysis stage), the
configuration optimizer (optimization stage), CC-specific preprocessing, and
the reconfiguration/testing machinery, all orchestrated by the controller.
"""

from repro.autoconf.profiler import BlockingEvent, ContentionProfiler, LatencyProfiler
from repro.autoconf.optimizer import ConfigurationOptimizer, OptimizationCandidate
from repro.autoconf.preprocess import apply_preprocessing, partition_by_instance
from repro.autoconf.controller import (
    AutoConfigResult,
    AutoConfigurator,
    initial_configuration,
)
from repro.autoconf.reconfigure import ReconfigurationDriver, ReconfigurationOutcome

__all__ = [
    "BlockingEvent",
    "ContentionProfiler",
    "LatencyProfiler",
    "ConfigurationOptimizer",
    "OptimizationCandidate",
    "apply_preprocessing",
    "partition_by_instance",
    "AutoConfigurator",
    "AutoConfigResult",
    "initial_configuration",
    "ReconfigurationDriver",
    "ReconfigurationOutcome",
]
