"""The optimization stage (Section 5.4): propose new MCC configurations.

Given the bottleneck conflict edge reported by the profiler, the optimizer
produces candidate configurations following the three adjustment strategies
of Section 5.4.1 — all of which keep changes as local as possible:

* **Case 1** (both endpoints are the same transaction type): split the leaf,
  moving the type into a new leaf with a better-suited CC, under a new
  internal node running the original CC.
* **Case 2** (two types in the same leaf group): split the leaf into two
  leaves under a new internal node whose CC is chosen to handle the conflict.
* **Case 3** (types in different groups): move one type beneath a node along
  the path from the lowest common ancestor to the other type, or insert a new
  cross-group CC along that path.

CC-specific filters (Section 5.4.1 "Filtering Candidate Configurations")
remove candidates whose mechanisms are not designed for contention or cannot
enforce consistent ordering efficiently at the position they would occupy.
"""

from dataclasses import dataclass, field

from repro.cc.base import CC_REGISTRY
from repro.core.config import CCSpec, Configuration
from repro.errors import ConfigurationError


@dataclass
class OptimizationCandidate:
    """One proposed configuration plus a human-readable rationale."""

    configuration: Configuration
    rationale: str
    strategy: str
    edge: tuple = ()

    def __repr__(self):
        return f"<Candidate {self.configuration.name}: {self.rationale}>"


class ConfigurationOptimizer:
    """Generates candidate configurations for a bottleneck conflict edge."""

    #: CCs considered when creating a new contention-handling group.
    DEFAULT_LEAF_CANDIDATES = ("rp", "tso", "ssi")
    #: CCs considered for a new cross-group (internal) node.
    DEFAULT_CROSS_CANDIDATES = ("ssi", "rp", "2pl")

    def __init__(self, transaction_types, leaf_candidates=None, cross_candidates=None):
        self.transaction_types = dict(transaction_types)
        self.leaf_candidates = tuple(leaf_candidates or self.DEFAULT_LEAF_CANDIDATES)
        self.cross_candidates = tuple(cross_candidates or self.DEFAULT_CROSS_CANDIDATES)

    # -- helpers ----------------------------------------------------------------------

    def _is_read_only(self, txn_type):
        return self.transaction_types[txn_type].read_only

    def _cc_class(self, name):
        return CC_REGISTRY[name]

    def _filter_leaf_cc(self, cc_name, txn_types):
        """CC filter for in-group candidates (must handle contention)."""
        cls = self._cc_class(cc_name)
        if not cls.handles_contention:
            return False
        if cls.requires_profiles:
            # RP needs stored-procedure profiles for every member type.
            for txn_type in txn_types:
                if not self.transaction_types[txn_type].profile.accesses:
                    return False
        return True

    def _filter_cross_cc(self, cc_name, child_type_groups):
        """CC filter for cross-group candidates (consistent-ordering cost)."""
        cls = self._cc_class(cc_name)
        if not cls.efficient_internal:
            # TSO / OCC / NoOp are not efficient internal nodes (batching or
            # missing delegation support).
            return False
        if cc_name == "ssi":
            # SSI is only efficient without batching, i.e. with at most one
            # update child group (Section 4.4.3).
            update_children = sum(
                1
                for group in child_type_groups
                if any(not self._is_read_only(t) for t in group)
            )
            if update_children > 1:
                return False
        if cls.requires_profiles:
            for group in child_type_groups:
                for txn_type in group:
                    if not self.transaction_types[txn_type].profile.accesses:
                        return False
        return True

    @staticmethod
    def _find_parent(root, target):
        for spec in root.iter_nodes():
            if any(child is target for child in spec.children):
                return spec
        return None

    @staticmethod
    def _path_to(root, target):
        """List of specs from ``root`` down to ``target`` (inclusive)."""
        if root is target:
            return [root]
        for child in root.children:
            path = ConfigurationOptimizer._path_to(child, target)
            if path:
                return [root] + path
        return []

    def _clone_with(self, configuration, mutate):
        """Clone the configuration and apply ``mutate(clone_root)``."""
        clone = configuration.root.clone()
        mutate(clone)
        return clone

    # -- candidate generation ---------------------------------------------------------------

    def propose(self, configuration, edge, name_prefix="candidate"):
        """Generate filtered candidates for the bottleneck ``edge``."""
        type_a, type_b = edge
        leaf_a = configuration.leaf_for(type_a)
        leaf_b = configuration.leaf_for(type_b)
        if type_a == type_b:
            candidates = self._case_single_type(configuration, type_a)
        elif leaf_a is leaf_b:
            candidates = self._case_same_group(configuration, type_a, type_b)
        else:
            candidates = self._case_cross_group(configuration, type_a, type_b)
        # Deduplicate structurally identical candidates and drop no-ops.
        unique = []
        seen = {configuration.signature()}
        for index, candidate in enumerate(candidates):
            signature = candidate.configuration.signature()
            if signature in seen:
                continue
            seen.add(signature)
            candidate.configuration.name = f"{name_prefix}-{len(unique)}"
            candidate.edge = edge
            unique.append(candidate)
        return unique

    # Case 1: conflict among instances of one transaction type.
    def _case_single_type(self, configuration, txn_type):
        candidates = []
        original_leaf = configuration.leaf_for(txn_type)
        original_cc = original_leaf.cc
        for cc_name in self.leaf_candidates:
            if cc_name == original_cc and len(original_leaf.transactions) == 1:
                continue
            if not self._filter_leaf_cc(cc_name, (txn_type,)):
                continue

            def mutate(root, cc_name=cc_name):
                target = root.find_leaf_of(txn_type)
                self._split_leaf(root, target, (txn_type,), cc_name)

            try:
                new_root = self._clone_with(configuration, mutate)
                candidates.append(
                    OptimizationCandidate(
                        configuration=Configuration(new_root),
                        rationale=(
                            f"optimize self-conflicts of {txn_type} with {cc_name}"
                        ),
                        strategy="single-type",
                    )
                )
            except ConfigurationError:
                continue
        return candidates

    # Case 2: two types in the same leaf group.
    def _case_same_group(self, configuration, type_a, type_b):
        candidates = []
        for cross_cc in self.cross_candidates:
            if not self._filter_cross_cc(cross_cc, [(type_a,), (type_b,)]):
                continue
            for leaf_cc_a in self._leaf_choices(type_a):
                for leaf_cc_b in self._leaf_choices(type_b):

                    def mutate(root, cross_cc=cross_cc, cc_a=leaf_cc_a, cc_b=leaf_cc_b):
                        target = root.find_leaf_of(type_a)
                        self._split_pair(root, target, type_a, type_b, cross_cc, cc_a, cc_b)

                    try:
                        new_root = self._clone_with(configuration, mutate)
                        candidates.append(
                            OptimizationCandidate(
                                configuration=Configuration(new_root),
                                rationale=(
                                    f"separate {type_a} ({leaf_cc_a}) and {type_b} "
                                    f"({leaf_cc_b}) under cross-group {cross_cc}"
                                ),
                                strategy="same-group",
                            )
                        )
                    except ConfigurationError:
                        continue
        return candidates

    # Case 3: types currently in different groups.
    def _case_cross_group(self, configuration, type_a, type_b):
        candidates = []
        for mover, anchor in ((type_b, type_a), (type_a, type_b)):
            for cross_cc in self.cross_candidates:
                if not self._filter_cross_cc(cross_cc, [(mover,), (anchor,)]):
                    continue

                def mutate(root, mover=mover, anchor=anchor, cross_cc=cross_cc):
                    self._move_next_to(root, mover, anchor, cross_cc)

                try:
                    new_root = self._clone_with(configuration, mutate)
                    candidates.append(
                        OptimizationCandidate(
                            configuration=Configuration(new_root),
                            rationale=(
                                f"regulate {mover}/{anchor} conflicts with a new "
                                f"{cross_cc} node above {anchor}'s group"
                            ),
                            strategy="cross-group",
                        )
                    )
                except ConfigurationError:
                    continue
        return candidates

    def _leaf_choices(self, txn_type):
        if self._is_read_only(txn_type):
            return ("none",)
        choices = [
            cc for cc in self.leaf_candidates if self._filter_leaf_cc(cc, (txn_type,))
        ]
        return tuple(choices[:2]) or ("2pl",)

    # -- tree surgery -------------------------------------------------------------------------

    def _split_leaf(self, root, target_leaf, moved_types, new_cc):
        """Case 1 surgery: replace ``target_leaf`` with original-CC node over
        {remaining leaf, new leaf(new_cc, moved_types)}."""
        remaining = tuple(t for t in target_leaf.transactions if t not in moved_types)
        new_leaf = CCSpec(cc=new_cc, transactions=tuple(moved_types))
        if not remaining:
            # The whole leaf moves: just change (or wrap) its CC.
            if new_cc == target_leaf.cc:
                raise ConfigurationError("no structural change")
            target_leaf.cc = new_cc
            return
        sibling = CCSpec(cc=target_leaf.cc, transactions=remaining)
        wrapper_children = [sibling, new_leaf]
        target_leaf.transactions = ()
        target_leaf.children = wrapper_children

    def _split_pair(self, root, target_leaf, type_a, type_b, cross_cc, cc_a, cc_b):
        """Case 2 surgery: pull two types out of a leaf under a new cross CC."""
        remaining = tuple(
            t for t in target_leaf.transactions if t not in (type_a, type_b)
        )
        pair_node = CCSpec(
            cc=cross_cc,
            children=[
                CCSpec(cc=cc_a, transactions=(type_a,)),
                CCSpec(cc=cc_b, transactions=(type_b,)),
            ],
        )
        if not remaining:
            target_leaf.cc = pair_node.cc
            target_leaf.transactions = ()
            target_leaf.children = pair_node.children
            return
        sibling = CCSpec(cc=target_leaf.cc, transactions=remaining)
        original_cc = target_leaf.cc
        target_leaf.cc = original_cc
        target_leaf.transactions = ()
        target_leaf.children = [sibling, pair_node]

    def _move_next_to(self, root, mover, anchor, cross_cc):
        """Case 3 surgery: insert a ``cross_cc`` node above the anchor's group
        regulating {anchor's group, mover}."""
        mover_leaf = root.find_leaf_of(mover)
        anchor_leaf = root.find_leaf_of(anchor)
        if mover_leaf is None or anchor_leaf is None:
            raise ConfigurationError("transaction type not found")
        # Detach the mover from its current leaf.
        if mover_leaf.transactions == (mover,):
            parent = self._find_parent(root, mover_leaf)
            if parent is None:
                raise ConfigurationError("cannot detach the root leaf")
            parent.children = [c for c in parent.children if c is not mover_leaf]
            if len(parent.children) == 1 and parent.children[0].is_leaf:
                # Collapse a now-degenerate internal node.
                only = parent.children[0]
                parent.cc = only.cc
                parent.transactions = only.transactions
                parent.instance_key = only.instance_key
                parent.children = []
            moved_leaf = mover_leaf
        else:
            mover_leaf.transactions = tuple(
                t for t in mover_leaf.transactions if t != mover
            )
            moved_leaf = CCSpec(
                cc="none" if self._is_read_only(mover) else mover_leaf.cc,
                transactions=(mover,),
            )
        # Wrap the anchor's leaf with the new cross-group node.
        anchor_leaf = root.find_leaf_of(anchor)
        original = CCSpec(
            cc=anchor_leaf.cc,
            transactions=tuple(anchor_leaf.transactions),
            children=[c for c in anchor_leaf.children],
            instance_key=anchor_leaf.instance_key,
            params=dict(anchor_leaf.params),
        )
        anchor_leaf.cc = cross_cc
        anchor_leaf.transactions = ()
        anchor_leaf.instance_key = None
        anchor_leaf.params = {}
        anchor_leaf.children = [original, moved_leaf]
