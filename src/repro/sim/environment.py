"""The discrete-event simulation environment and process machinery."""

import heapq
from itertools import count

from repro.errors import SimulationError
from repro.sim.events import Event, Interrupt, Timeout


class Process(Event):
    """A running process: wraps a generator and is itself an Event.

    The process event triggers when the generator returns (with the return
    value) or raises (with the exception), so processes can wait for each
    other with ``yield other_process``.
    """

    def __init__(self, env, generator, name=""):
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._target = None
        self._interrupts = []
        self._generation = 0
        # Kick off the process at the current simulation time.
        init = Event(env, name=f"init:{self.name}")
        init.succeed(None)
        self._subscribe(init)

    @property
    def is_alive(self):
        return not self.triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        self._interrupts.append(Interrupt(cause))
        wakeup = Event(self.env, name=f"interrupt:{self.name}")
        wakeup.succeed(None)
        self._subscribe(wakeup, interrupting=True)

    def _subscribe(self, event, interrupting=False):
        if not interrupting:
            self._target = event
        generation = self._generation
        event.callbacks.append(lambda ev: self._resume(ev, generation))
        if getattr(event, "_processed", False):
            # The event already fired; resume on the next scheduler step.
            self.env._schedule_callback(lambda: self._resume(event, generation))

    def _resume(self, event, generation=None):
        if self.triggered:
            return
        if generation is not None and generation != self._generation:
            # Stale wake-up from an event we are no longer waiting on
            # (e.g. the original target after an interrupt).
            return
        self._generation += 1
        try:
            if self._interrupts:
                interrupt = self._interrupts.pop(0)
                next_event = self.generator.throw(interrupt)
            elif event._is_error:
                next_event = self.generator.throw(event.value)
            else:
                next_event = self.generator.send(event.value)
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            self._finish(exception=exc)
            return
        if not isinstance(next_event, Event):
            self._finish(
                exception=SimulationError(
                    f"process {self.name!r} yielded {next_event!r}, not an Event"
                )
            )
            return
        self._subscribe(next_event)

    def _finish(self, value=None, exception=None):
        self.generator.close()
        if exception is not None:
            if not self.callbacks and not isinstance(exception, Interrupt):
                # Nobody is waiting for this process: re-raise so bugs in the
                # engine do not pass silently.
                raise exception
            self.fail(exception)
        else:
            self.succeed(value)


class Environment:
    """Priority-queue based discrete-event simulation environment."""

    def __init__(self, initial_time=0.0):
        self._now = float(initial_time)
        self._queue = []
        self._seq = count()
        self._active = True

    @property
    def now(self):
        """Current virtual time, in seconds."""
        return self._now

    # -- scheduling ------------------------------------------------------

    def _schedule_event(self, event, delay=0.0):
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), event))

    def _schedule_callback(self, callback, delay=0.0):
        event = Event(self, name="callback")
        event._value = None
        event._is_error = False
        event.callbacks.append(lambda _ev: callback())
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), event))

    # -- public API ------------------------------------------------------

    def process(self, generator, name=""):
        """Start running ``generator`` as a simulation process."""
        return Process(self, generator, name=name)

    def event(self, name=""):
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay, value=None):
        """Return an event that triggers ``delay`` virtual seconds from now."""
        return Timeout(self, delay, value=value)

    def run(self, until=None):
        """Run the simulation.

        ``until`` may be a number (virtual-time horizon), an
        :class:`~repro.sim.events.Event` (run until it triggers), or ``None``
        (run until the event queue drains).
        """
        stop_event = until if isinstance(until, Event) else None
        horizon = until if isinstance(until, (int, float)) else None
        while self._queue:
            time, _seq, event = self._queue[0]
            if horizon is not None and time > horizon:
                self._now = float(horizon)
                return None
            heapq.heappop(self._queue)
            self._now = time
            self._dispatch(event)
            if stop_event is not None and stop_event.triggered:
                if stop_event._is_error:
                    raise stop_event.value
                return stop_event.value
        if horizon is not None:
            self._now = float(horizon)
        if stop_event is not None and not stop_event.triggered:
            raise SimulationError("run(until=event): queue drained before event fired")
        return None

    def _dispatch(self, event):
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)
