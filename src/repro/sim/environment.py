"""The discrete-event simulation environment and process machinery."""

from heapq import heappop as _heappop, heappush as _heappush
from itertools import count

from repro.errors import SimulationError
from repro.sim.events import Event, Interrupt, Timeout


class _ResumeSentinel:
    """Fake 'event' used to resume a process with (None, no-error)."""

    __slots__ = ()
    _value = None
    _is_error = False


_RESUME = _ResumeSentinel()


class Process(Event):
    """A running process: wraps a generator and is itself an Event.

    The process event triggers when the generator returns (with the return
    value) or raises (with the exception), so processes can wait for each
    other with ``yield other_process``.
    """

    __slots__ = ("generator", "_target", "_interrupts")

    def __init__(self, env, generator, name=""):
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._target = None
        self._interrupts = []
        # Kick off the process at the current simulation time.  The scheduler
        # invokes the bound method directly — no throwaway "init" Event.
        env._schedule_callback(self._start)

    @property
    def is_alive(self):
        return not self.triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        self._interrupts.append(Interrupt(cause))
        self.env._schedule_callback(self._wake)

    def _start(self):
        if not self.triggered:
            self._target = _RESUME
            self(_RESUME)

    def _wake(self):
        # Scheduled (non-event) wake-up used by interrupt().  If the pending
        # interrupt was already delivered by another resume in the meantime,
        # there is nothing left to do.
        if self.triggered or not self._interrupts:
            return
        self._target = _RESUME
        self(_RESUME)

    def _subscribe(self, event):
        self._target = event
        if event._processed:
            # The event already fired; resume on the next scheduler step.
            self.env._schedule_callback(lambda: self(event))
        else:
            # The process object is its own callback (no closure per resume).
            event.callbacks.append(self)

    def __call__(self, event):
        # The process object is the callback registered on its target event;
        # this is the hottest resume path, so it delegates straight to _step.
        if self.triggered or event is not self._target:
            # Stale wake-up from an event we are no longer waiting on
            # (e.g. the original target after an interrupt).
            return
        self._target = None
        generator = self.generator
        try:
            if self._interrupts:
                next_event = generator.throw(self._interrupts.pop(0))
            elif event._is_error:
                next_event = generator.throw(event._value)
            else:
                next_event = generator.send(event._value)
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            self._finish(exception=exc)
            return
        if not isinstance(next_event, Event):
            self._finish(
                exception=SimulationError(
                    f"process {self.name!r} yielded {next_event!r}, not an Event"
                )
            )
            return
        self._subscribe(next_event)

    def _finish(self, value=None, exception=None):
        self.generator.close()
        if exception is not None:
            if not self.callbacks and not isinstance(exception, Interrupt):
                # Nobody is waiting for this process: re-raise so bugs in the
                # engine do not pass silently.
                raise exception
            self.fail(exception)
        else:
            self.succeed(value)


class Environment:
    """Priority-queue based discrete-event simulation environment.

    The run queue holds two kinds of entries: :class:`Event` objects (whose
    callbacks run when dispatched) and bare callables (scheduler hooks used
    by the process machinery, dispatched by calling them) — the latter avoid
    allocating a throwaway Event per process resume.
    """

    __slots__ = ("_now", "_queue", "_seq", "_active")

    def __init__(self, initial_time=0.0):
        self._now = float(initial_time)
        self._queue = []
        self._seq = count()
        self._active = True

    @property
    def now(self):
        """Current virtual time, in seconds."""
        return self._now

    # -- scheduling ------------------------------------------------------

    def _schedule_event(self, event, delay=0.0):
        _heappush(self._queue, (self._now + delay, next(self._seq), event))

    def _schedule_callback(self, callback, delay=0.0):
        _heappush(self._queue, (self._now + delay, next(self._seq), callback))

    # -- public API ------------------------------------------------------

    def process(self, generator, name=""):
        """Start running ``generator`` as a simulation process."""
        return Process(self, generator, name=name)

    def event(self, name=""):
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay, value=None):
        """Return an event that triggers ``delay`` virtual seconds from now."""
        return Timeout(self, delay, value=value)

    def run(self, until=None):
        """Run the simulation.

        ``until`` may be a number (virtual-time horizon), an
        :class:`~repro.sim.events.Event` (run until it triggers), or ``None``
        (run until the event queue drains).
        """
        stop_event = until if isinstance(until, Event) else None
        horizon = until if isinstance(until, (int, float)) else None
        queue = self._queue
        while queue:
            entry = queue[0]
            if horizon is not None and entry[0] > horizon:
                self._now = float(horizon)
                return None
            _heappop(queue)
            self._now = entry[0]
            item = entry[2]
            if isinstance(item, Event):
                item._processed = True
                callbacks = item.callbacks
                item.callbacks = []
                for callback in callbacks:
                    callback(item)
            else:
                item()
            if stop_event is not None and stop_event.triggered:
                if stop_event._is_error:
                    raise stop_event.value
                return stop_event.value
        if horizon is not None:
            self._now = float(horizon)
        if stop_event is not None and not stop_event.triggered:
            raise SimulationError("run(until=event): queue drained before event fired")
        return None
