"""Simple cluster cost model: network round-trips and server CPU.

The paper's cluster (Section 4.6) has transaction coordinators (TCs) and data
servers (DSs) connected by a 10 GbE network with ~0.1 ms ping.  The four-phase
protocol is optimised so that each phase costs a single TC-to-DS round-trip
regardless of the CC-tree depth (Section 4.5.2); individual CC mechanisms may
add extra round-trips (SSI's timestamp server, RP's per-step coordination).

The :class:`NetworkModel` captures these costs as virtual-time delays, and
:class:`ClusterModel` adds a bounded CPU pool so throughput saturates when the
cluster runs out of compute, exactly like the real testbed.
"""

from dataclasses import dataclass, field

from repro.sim.resources import Resource


@dataclass
class NetworkModel:
    """Virtual-time network cost parameters (seconds)."""

    rtt: float = 120e-6
    timestamp_rtt: float = 120e-6
    jitter: float = 0.0

    def round_trip(self):
        """Cost of one TC <-> DS round-trip."""
        return self.rtt

    def timestamp_round_trip(self):
        """Cost of contacting the centralized timestamp / batch server."""
        return self.timestamp_rtt


@dataclass
class CostModel:
    """Per-operation CPU cost parameters (seconds)."""

    operation_cpu: float = 12e-6
    phase_cpu: float = 6e-6
    cc_layer_cpu: float = 4e-6
    commit_cpu: float = 10e-6
    durability_flush_cpu: float = 15e-6

    def operation_cost(self, cc_layers):
        """CPU cost of one read/write that traverses ``cc_layers`` CC nodes."""
        return self.operation_cpu + self.cc_layer_cpu * cc_layers

    def phase_cost(self, cc_layers):
        """CPU cost of one non-operation phase (start/validate/commit)."""
        return self.phase_cpu + self.cc_layer_cpu * cc_layers


@dataclass
class ClusterModel:
    """Aggregate cluster resources: CPU pool plus network model.

    ``cpu_slots`` bounds how many operations the cluster can execute at the
    same virtual time, which is what makes uncontended throughput saturate.
    """

    env: object
    cpu_slots: int = 64
    network: NetworkModel = field(default_factory=NetworkModel)
    costs: CostModel = field(default_factory=CostModel)

    def __post_init__(self):
        self.cpu = Resource(self.env, capacity=self.cpu_slots, name="cluster-cpu")

    def compute(self, duration):
        """Consume cluster CPU for ``duration`` virtual seconds."""
        if duration <= 0:
            return
        yield from self.cpu.use(duration)

    def network_delay(self, round_trips=1):
        """Wait for ``round_trips`` network round-trips (no CPU held)."""
        delay = self.network.round_trip() * round_trips
        if delay > 0:
            yield self.env.timeout(delay)
