"""Cluster cost and message model: network round-trips, faults and server CPU.

The paper's cluster (Section 4.6) has transaction coordinators (TCs) and data
servers (DSs) connected by a 10 GbE network with ~0.1 ms ping.  The four-phase
protocol is optimised so that each phase costs a single TC-to-DS round-trip
regardless of the CC-tree depth (Section 4.5.2); individual CC mechanisms may
add extra round-trips (SSI's timestamp server, RP's per-step coordination).

The :class:`NetworkModel` captures these costs as virtual-time delays —
including seeded, deterministic jitter — and :class:`ClusterModel` adds a
bounded CPU pool so throughput saturates when the cluster runs out of
compute, exactly like the real testbed.

Beyond the constant-delay pipe, :meth:`ClusterModel.send` is a real message
layer: every protocol round-trip the engine routes through it consults the
attached :class:`~repro.sim.faults.MessageFaultInjector` (if any) and may be
dropped, delayed, duplicated, reordered or caught in a TC/DS partition
window.  Per-destination :class:`LinkState` records what happened on each
link, and the :class:`Delivery` outcome tells the engine whether the request
reached the servers and whether the reply made it back — the engine's
timeout/retry/backoff loop (:meth:`TebaldiEngine._robust_exchange`) is built
on exactly that distinction.
"""

from dataclasses import dataclass, field

import random

from repro.errors import ConfigurationError
from repro.sim.resources import Resource

#: Destination token for the centralized timestamp / batch server (the one
#: extra machine of Section 4.6).  Sends addressed to it are charged the
#: ``timestamp_rtt`` and can be partitioned away from the TC like any DS.
TIMESTAMP_SERVER = "ts"


@dataclass
class NetworkModel:
    """Virtual-time network cost parameters (seconds).

    ``jitter`` adds a seeded, deterministic ``uniform(0, jitter)`` component
    to every round-trip.  With ``jitter=0.0`` (the default) no RNG is ever
    consulted, so jitter-free schedules are byte-identical to the historical
    constant-delay model — pinned by the ``bench_speed`` fingerprints.
    """

    rtt: float = 120e-6
    timestamp_rtt: float = 120e-6
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.rtt < 0:
            raise ConfigurationError(f"network rtt must be >= 0, got {self.rtt}")
        if self.timestamp_rtt < 0:
            raise ConfigurationError(
                f"network timestamp_rtt must be >= 0, got {self.timestamp_rtt}"
            )
        if self.jitter < 0:
            raise ConfigurationError(
                f"network jitter must be >= 0, got {self.jitter}"
            )
        self._rng = None

    def _jitter(self):
        if self.jitter <= 0:
            return 0.0
        rng = self._rng
        if rng is None:
            # random.Random over integers only (no salted hashes), so the
            # jitter stream reproduces across processes for a fixed seed.
            rng = self._rng = random.Random((int(self.seed) << 8) ^ 0x31EB)
        return rng.uniform(0.0, self.jitter)

    def round_trip(self):
        """Cost of one TC <-> DS round-trip (jittered when enabled)."""
        return self.rtt + self._jitter()

    def timestamp_round_trip(self):
        """Cost of contacting the centralized timestamp / batch server."""
        return self.timestamp_rtt + self._jitter()


@dataclass
class CostModel:
    """Per-operation CPU cost parameters (seconds)."""

    operation_cpu: float = 12e-6
    phase_cpu: float = 6e-6
    cc_layer_cpu: float = 4e-6
    commit_cpu: float = 10e-6
    durability_flush_cpu: float = 15e-6

    def operation_cost(self, cc_layers):
        """CPU cost of one read/write that traverses ``cc_layers`` CC nodes."""
        return self.operation_cpu + self.cc_layer_cpu * cc_layers

    def phase_cost(self, cc_layers):
        """CPU cost of one non-operation phase (start/validate/commit)."""
        return self.phase_cpu + self.cc_layer_cpu * cc_layers


@dataclass
class Delivery:
    """Outcome of one :meth:`ClusterModel.send` exchange, as the TC sees it.

    ``request_reached`` and ``delivered`` are distinct on purpose: a lost
    *reply* leaves the request applied at the servers while the TC times
    out — the case that makes retransmit idempotency (commit-ticket dedup
    in the durability layer) load-bearing rather than decorative.
    """

    delivered: bool
    request_reached: bool
    delay: float
    fault: str = ""
    duplicated: bool = False


@dataclass
class LinkState:
    """Per TC->destination link bookkeeping (message counts, fault windows)."""

    dst: object
    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    reordered: int = 0
    partitioned_until: float = 0.0


@dataclass
class ClusterModel:
    """Aggregate cluster resources: CPU pool, network model, message layer.

    ``cpu_slots`` bounds how many operations the cluster can execute at the
    same virtual time, which is what makes uncontended throughput saturate.
    ``message_faults`` (a :class:`~repro.sim.faults.MessageFaultInjector`)
    is attached by the degraded harness; without one, :meth:`send` is a
    plain jittered round-trip that always delivers.
    """

    env: object
    cpu_slots: int = 64
    network: NetworkModel = field(default_factory=NetworkModel)
    costs: CostModel = field(default_factory=CostModel)
    message_faults: object = None

    def __post_init__(self):
        self.cpu = Resource(self.env, capacity=self.cpu_slots, name="cluster-cpu")
        self.links = {}

    def compute(self, duration):
        """Consume cluster CPU for ``duration`` virtual seconds."""
        if duration <= 0:
            return
        yield from self.cpu.use(duration)

    def network_delay(self, round_trips=1):
        """Wait for ``round_trips`` network round-trips (no CPU held)."""
        if round_trips < 0:
            raise ConfigurationError(
                f"network round_trips must be >= 0, got {round_trips}"
            )
        delay = 0.0
        for _ in range(int(round_trips)):
            delay += self.network.round_trip()
        if delay > 0:
            yield self.env.timeout(delay)

    def link(self, dst):
        """The (lazily created) per-destination link state."""
        state = self.links.get(dst)
        if state is None:
            state = self.links[dst] = LinkState(dst)
        return state

    def send(self, dsts=(0,), phase="rpc", txn_id=None, round_trips=1, timeout=None):
        """Coroutine: one TC -> servers exchange over the message layer.

        Waits out the (jittered, possibly faulted) exchange and returns a
        :class:`Delivery`.  ``dsts`` names the destination servers (data
        server ids, or :data:`TIMESTAMP_SERVER`); ``timeout`` is how long
        the TC waits for a reply that never comes before giving up on this
        attempt (default: four base round-trips).  The send itself never
        retries — that is the engine's job — and never raises on a fault.
        """
        if round_trips < 1:
            raise ConfigurationError(
                f"send round_trips must be >= 1, got {round_trips}"
            )
        network = self.network
        per_trip = (
            network.timestamp_round_trip
            if all(dst == TIMESTAMP_SERVER for dst in dsts)
            else network.round_trip
        )
        delay = 0.0
        for _ in range(int(round_trips)):
            delay += per_trip()
        if timeout is None:
            timeout = 4 * delay
        links = [self.link(dst) for dst in dsts]
        for link in links:
            link.sent += 1
        faults = self.message_faults
        fault = (
            faults.disposition(self.env.now, dsts, phase)
            if faults is not None
            else None
        )
        if fault is None:
            if delay > 0:
                yield self.env.timeout(delay)
            for link in links:
                link.delivered += 1
            return Delivery(delivered=True, request_reached=True, delay=delay)
        kind = fault.kind
        if kind == "delay":
            # A latency spike: the exchange completes, just late.  The TC
            # accepts late replies (no spurious retransmit on slow links).
            delay *= fault.magnitude
            for link in links:
                link.delayed += 1
            yield self.env.timeout(delay)
            for link in links:
                link.delivered += 1
            return Delivery(True, True, delay, fault="delay")
        if kind == "reorder":
            # Held back behind later traffic: an extra ``magnitude`` base
            # round-trips, so messages sent afterwards overtake this one.
            delay += fault.magnitude * network.rtt
            for link in links:
                link.reordered += 1
            yield self.env.timeout(delay)
            for link in links:
                link.delivered += 1
            return Delivery(True, True, delay, fault="reorder")
        if kind == "duplicate":
            for link in links:
                link.duplicated += 1
            yield self.env.timeout(delay)
            for link in links:
                link.delivered += 1
            return Delivery(True, True, delay, fault="duplicate", duplicated=True)
        if kind == "partition":
            for link in links:
                link.dropped += 1
                if faults is not None:
                    link.partitioned_until = max(
                        link.partitioned_until, faults.partitioned_until(link.dst)
                    )
            if timeout > 0:
                yield self.env.timeout(timeout)
            return Delivery(False, False, timeout, fault="partition")
        # kind == "drop"
        for link in links:
            link.dropped += 1
        if fault.lost_reply:
            # The request made it to every server; the *reply* was lost.
            # The servers applied the request — only retransmit dedup keeps
            # the inevitable retry from applying it twice.
            if timeout > 0:
                yield self.env.timeout(timeout)
            return Delivery(False, True, timeout, fault="drop-reply")
        if timeout > 0:
            yield self.env.timeout(timeout)
        return Delivery(False, False, timeout, fault="drop")
