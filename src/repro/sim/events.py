"""Events for the discrete-event simulation kernel.

An :class:`Event` is a one-shot synchronisation object.  Processes yield an
event to suspend until the event is triggered; the value (or exception)
passed when triggering is delivered to every waiting process.
"""

from repro.errors import SimulationError

_PENDING = object()


class Event:
    """A one-shot event that processes can wait on.

    Events start *pending*.  Calling :meth:`succeed` or :meth:`fail` triggers
    the event exactly once; afterwards the environment resumes every process
    that yielded it.  Triggering twice is an error.
    """

    def __init__(self, env, name=""):
        self.env = env
        self.name = name
        self.callbacks = []
        self._value = _PENDING
        self._is_error = False

    @property
    def triggered(self):
        """True once succeed() or fail() has been called."""
        return self._value is not _PENDING

    @property
    def ok(self):
        """True if the event was triggered with a value (not an exception)."""
        return self.triggered and not self._is_error

    @property
    def value(self):
        if not self.triggered:
            raise SimulationError(f"event {self.name!r} has no value yet")
        return self._value

    def succeed(self, value=None):
        """Trigger the event with ``value``; wakes all waiters."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._value = value
        self._is_error = False
        self.env._schedule_event(self)
        return self

    def fail(self, exception):
        """Trigger the event with an exception that is raised in waiters."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception")
        self._value = exception
        self._is_error = True
        self.env._schedule_event(self)
        return self

    def __repr__(self):
        state = "triggered" if self.triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """An event that triggers automatically after a virtual-time delay."""

    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env, name=f"timeout({delay})")
        self.delay = delay
        self._value = value
        self._is_error = False
        env._schedule_event(self, delay=delay)

    @property
    def triggered(self):
        # A timeout is conceptually triggered from creation; the environment
        # controls when callbacks run.
        return True


def any_of(env, events, name="any_of"):
    """Return an event that triggers when the first of ``events`` triggers.

    The combined event succeeds with ``(index, value)`` of the first event to
    fire, or fails with its exception.  Used for lock waits with deadlock
    timeouts.
    """
    combined = Event(env, name=name)

    def _make_callback(index):
        def _on_trigger(event):
            if combined.triggered:
                return
            if event._is_error:
                combined.fail(event.value)
            else:
                combined.succeed((index, event.value))

        return _on_trigger

    for index, event in enumerate(events):
        event.callbacks.append(_make_callback(index))
        if getattr(event, "_processed", False) and not combined.triggered:
            if event._is_error:
                combined.fail(event.value)
            else:
                combined.succeed((index, event.value))
    return combined


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    Used by the deadlock-timeout machinery in 2PL and by the reconfiguration
    protocols to force-abort in-flight transactions.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause
