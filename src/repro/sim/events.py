"""Events for the discrete-event simulation kernel.

An :class:`Event` is a one-shot synchronisation object.  Processes yield an
event to suspend until the event is triggered; the value (or exception)
passed when triggering is delivered to every waiting process.

Events are the single most allocated object of the simulator, so the class
is deliberately lean: ``__slots__``, no precomputed display names, and the
hot state (``_value``/``_is_error``/``_processed``) is read directly by the
scheduler instead of through properties.
"""

from heapq import heappush

from repro.errors import SimulationError

_PENDING = object()


class Event:
    """A one-shot event that processes can wait on.

    Events start *pending*.  Calling :meth:`succeed` or :meth:`fail` triggers
    the event exactly once; afterwards the environment resumes every process
    that yielded it.  Triggering twice is an error.
    """

    __slots__ = ("env", "name", "callbacks", "_value", "_is_error", "_processed")

    def __init__(self, env, name=""):
        self.env = env
        self.name = name
        self.callbacks = []
        self._value = _PENDING
        self._is_error = False
        self._processed = False

    @property
    def triggered(self):
        """True once succeed() or fail() has been called."""
        return self._value is not _PENDING

    @property
    def ok(self):
        """True if the event was triggered with a value (not an exception)."""
        return self.triggered and not self._is_error

    @property
    def value(self):
        if self._value is _PENDING:
            raise SimulationError(f"event {self.name!r} has no value yet")
        return self._value

    def succeed(self, value=None):
        """Trigger the event with ``value``; wakes all waiters."""
        if self._value is not _PENDING:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._value = value
        self._is_error = False
        self.env._schedule_event(self)
        return self

    def fail(self, exception):
        """Trigger the event with an exception that is raised in waiters."""
        if self._value is not _PENDING:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception")
        self._value = exception
        self._is_error = True
        self.env._schedule_event(self)
        return self

    def __repr__(self):
        state = "triggered" if self.triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """An event that triggers automatically after a virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ and scheduling — timeouts are the most
        # allocated event kind of the simulator.
        self.env = env
        self.name = "timeout"
        self.callbacks = []
        self._value = value
        self._is_error = False
        self._processed = False
        self.delay = delay
        heappush(env._queue, (env._now + delay, next(env._seq), self))

    @property
    def triggered(self):
        # A timeout is conceptually triggered from creation; the environment
        # controls when callbacks run.
        return True

    def __repr__(self):
        state = "processed" if self._processed else "scheduled"
        return f"<Timeout({self.delay}) {state}>"


class AnyOf(Event):
    """Event that triggers when the first of its source events triggers.

    Succeeds with ``(index, value)`` of the first event to fire, or fails
    with its exception.  The combined event registers *itself* as the
    callback on every source (no closures), and detaches from the remaining
    unfired events once resolved — so repeatedly waiting on a long-lived
    event (a transaction ``finish_event``, a ``Condition``'s current event)
    does not accumulate dead callbacks.
    """

    __slots__ = ("events",)

    def __init__(self, env, events, name="any_of"):
        # Inlined Event.__init__ (hot path: one AnyOf per blocking wait).
        self.env = env
        self.name = name
        self.callbacks = []
        self._value = _PENDING
        self._is_error = False
        self._processed = False
        self.events = events
        for index, event in enumerate(events):
            if event._processed:
                # Already fired and dispatched: resolve immediately.
                if event._is_error:
                    self.fail(event._value)
                else:
                    self.succeed((index, event._value))
                break
            event.callbacks.append(self)
        if self._value is not _PENDING:
            self._detach()

    def _detach(self):
        for event in self.events:
            try:
                event.callbacks.remove(self)
            except ValueError:
                pass

    def __call__(self, event):
        if self._value is not _PENDING:
            return
        if event._is_error:
            self.fail(event._value)
        else:
            self.succeed((self.events.index(event), event._value))
        self._detach()


def any_of(env, events, name="any_of"):
    """Return an event that triggers when the first of ``events`` triggers.

    See :class:`AnyOf`; used for lock waits with deadlock timeouts.
    """
    return AnyOf(env, events, name=name)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    Used by the deadlock-timeout machinery in 2PL and by the reconfiguration
    protocols to force-abort in-flight transactions.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause
