"""Seeded fault injection: deterministic crash and message-fault schedules.

A :class:`FaultPlan` names the adversarial points at which the simulated
cluster loses its volatile state (a "crash"): mid-commit between per-server
precommit flushes (a torn precommit record set), immediately after a durable
precommit but before the commit becomes visible, or around/inside a GCP
epoch flush (a torn epoch).  The plan is pure data derived from the run
seed, so every failure schedule — and therefore every recovery and every
oracle verdict — reproduces byte-identically for a fixed seed.

The :class:`FaultInjector` is the runtime half: the durability module calls
:meth:`FaultInjector.trip` at each instrumented site, and when the planned
occurrence of a site is reached the injector declares the crash, freezes
the caller (the durability manager stops persisting anything) and fires the
crash event the harness is waiting on.  The harness then tears the world
down, drives WAL recovery, and resumes the workload — see
:mod:`repro.harness.crash`.

The *message* half mirrors the same split: a :class:`MessageFaultPlan` is
seed-derived pure data naming what goes wrong on the TC/DS wire (drop,
delay spike, duplicate, reorder, partition-and-heal), and the
:class:`MessageFaultInjector` is consulted by
:meth:`~repro.sim.network.ClusterModel.send` for every protocol exchange.
The engine's timeout/retry/backoff loop and the durability layer's
commit-ticket dedup are what make the system survive the plan — see
:mod:`repro.harness.degraded`.
"""

import random
from dataclasses import dataclass

#: Instrumented crash sites, in the durability module:
#:
#: * ``precommit-record`` — after one per-server precommit record is
#:   appended (and, in synchronous mode, flushed).  Firing with
#:   ``index < total - 1`` leaves a *torn* precommit set behind.
#: * ``precommit-done``  — after the full precommit set is persisted but
#:   before the commit becomes visible: the transaction is durable yet
#:   unacknowledged (the "ghost" recovery case).
#: * ``gcp-before``      — at the start of a GCP epoch advance: nothing of
#:   the closing epoch is durable yet.
#: * ``gcp-server``      — after one server's epoch flush inside the
#:   advance: a torn epoch (some servers flushed, marker not advanced).
#: * ``gcp-after``       — after the persistent-epoch marker advanced.
#: * ``operation``       — after an operation log append (soak noise).
SITES = (
    "precommit-record",
    "precommit-done",
    "gcp-before",
    "gcp-server",
    "gcp-after",
    "operation",
)

#: Sites used by seeded plans.  ``operation`` is excluded by default: it
#: adds nothing a precommit-site crash does not cover, and including it
#: would skew short runs toward the least interesting point.
DEFAULT_SITES = SITES[:-1]


@dataclass(frozen=True)
class CrashPoint:
    """Crash at the ``occurrence``-th trip of ``site`` (1-based, counted
    from the start of the current incarnation)."""

    site: str
    occurrence: int = 1

    def __post_init__(self):
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; known: {SITES}")
        if self.occurrence < 1:
            raise ValueError(f"occurrence must be >= 1, got {self.occurrence}")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered tuple of crash points: one simulated crash per point."""

    points: tuple = ()

    @classmethod
    def from_seed(cls, seed, crashes=1, sites=DEFAULT_SITES, max_occurrence=25):
        """Derive a deterministic plan from the run seed.

        Uses ``random.Random`` over integers only (no salted hashes), so the
        schedule is identical across processes and interpreter restarts.
        """
        if crashes < 0:
            raise ValueError(f"crashes must be >= 0, got {crashes}")
        rng = random.Random((int(seed) << 8) ^ 0xFA17)
        points = tuple(
            CrashPoint(site=rng.choice(tuple(sites)),
                       occurrence=rng.randint(1, max_occurrence))
            for _ in range(crashes)
        )
        return cls(points=points)

    def __len__(self):
        return len(self.points)


class FaultInjector:
    """Runtime crash scheduler driven by the durability module's trip calls.

    One injector lives for the whole (multi-incarnation) run; the harness
    re-arms it with the new environment after every recovery, which resets
    the per-site occurrence counters and moves on to the next planned point.
    """

    def __init__(self, plan=None):
        self.plan = plan or FaultPlan()
        self.crashed = False
        self.crash_info = None
        #: One info dict per crash that actually fired, in order.
        self.crash_log = []
        self._counts = {}
        self._next_index = 0
        self._event = None
        self._env = None

    def has_pending(self):
        """True if a planned crash point has not fired yet."""
        return self._next_index < len(self.plan.points)

    def arm(self, env):
        """Start a new incarnation: fresh crash event, counters reset.

        Returns the event the harness should wait on; it fires when (and
        only when) the next planned crash point trips.  If the plan is
        exhausted the event simply never triggers.
        """
        self.crashed = False
        self.crash_info = None
        self._counts = {}
        self._env = env
        self._event = env.event(name="crash")
        return self._event

    def trip(self, site, **detail):
        """Notify the injector that an instrumented site was reached.

        Returns ``True`` exactly once per planned crash point — at the
        planned occurrence of the planned site — after which the caller
        must stop persisting state (the machine is "down").
        """
        if self.crashed or self._next_index >= len(self.plan.points):
            return False
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        point = self.plan.points[self._next_index]
        if point.site != site or point.occurrence != count:
            return False
        self.crashed = True
        self._next_index += 1
        self.crash_info = {
            "site": site,
            "occurrence": count,
            "time": self._env.now if self._env is not None else None,
            "detail": dict(detail),
        }
        self.crash_log.append(self.crash_info)
        if self._event is not None and not self._event.triggered:
            self._event.succeed(self.crash_info)
        return True


# ---------------------------------------------------------------------------
# Message faults (the network half of the failure model)
# ---------------------------------------------------------------------------

#: Message fault kinds applied by the message layer:
#:
#: * ``drop``      — the exchange is lost.  With ``lost_reply`` set, the
#:   *request* reaches every destination (and is applied there) but the
#:   reply never returns: the TC times out and retransmits, so only
#:   receiver-side dedup keeps the retry from double-applying.
#: * ``delay``     — a latency spike: the exchange completes, ``magnitude``
#:   times slower.
#: * ``duplicate`` — the request is delivered twice; the duplicate must be
#:   absorbed by the receiver (commit-ticket dedup at the durability
#:   layer, idempotent allocation at the timestamp server).
#: * ``reorder``   — the message is held back ``magnitude`` extra base
#:   round-trips, so traffic sent after it overtakes it.
#: * ``partition`` — the TC loses the affected destinations for
#:   ``duration`` virtual seconds; every send that touches a partitioned
#:   destination fails until the window heals.
MESSAGE_FAULT_KINDS = ("drop", "delay", "duplicate", "reorder", "partition")


@dataclass(frozen=True)
class MessageFault:
    """One planned message fault.

    ``occurrence`` is the *gap*: the fault fires on the occurrence-th
    counted send after the previous fault fired (1 = the very next send).
    Gap-based scheduling guarantees every planned point fires in order no
    matter how the workload interleaves — an absolute send index could be
    starved by an earlier long partition.  Sends failing merely because
    they fall inside an active partition window are not counted and do not
    consume plan points.

    ``phases`` restricts the point to protocol phases by name ("start",
    "validate", "precommit", "timestamp"); once the gap is reached the
    point stays armed until a send of a matching phase comes along.  An
    empty tuple (the default, and what seeded plans use) matches any
    phase.  Adversarial tests use it to aim a fault at exactly the
    exchange whose idempotency they are probing.
    """

    kind: str
    occurrence: int = 1
    magnitude: float = 4.0
    duration: float = 0.02
    servers: tuple = ()
    lost_reply: bool = False
    phases: tuple = ()

    def __post_init__(self):
        if self.kind not in MESSAGE_FAULT_KINDS:
            raise ValueError(
                f"unknown message fault kind {self.kind!r}; "
                f"known: {MESSAGE_FAULT_KINDS}"
            )
        if self.occurrence < 1:
            raise ValueError(f"occurrence must be >= 1, got {self.occurrence}")
        if self.magnitude <= 0:
            raise ValueError(f"magnitude must be > 0, got {self.magnitude}")
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")


@dataclass(frozen=True)
class MessageFaultPlan:
    """An ordered tuple of message faults, fired gap-by-gap over the run."""

    points: tuple = ()

    @classmethod
    def from_seed(cls, seed, faults=4, kinds=MESSAGE_FAULT_KINDS, require=(),
                  max_gap=30):
        """Derive a deterministic message fault plan from the run seed.

        ``require`` pins the kinds of the first ``len(require)`` points
        (the chaos cells use ``("drop", "partition")`` so every cell sees
        at least one drop+retry and one partition-and-heal window); the
        rest are drawn from ``kinds``.  All per-point attributes are drawn
        from ``random.Random`` over integers only, so the plan reproduces
        byte-identically across processes and interpreter restarts.
        """
        if faults < 0:
            raise ValueError(f"faults must be >= 0, got {faults}")
        count = max(int(faults), len(require))
        rng = random.Random((int(seed) << 8) ^ 0x5E7D)
        points = []
        for index in range(count):
            # Every attribute is drawn unconditionally so that pinning a
            # kind via ``require`` never shifts the stream of later points.
            drawn_kind = rng.choice(tuple(kinds))
            occurrence = rng.randint(1, max_gap)
            magnitude = float(rng.randint(2, 6))
            duration = rng.uniform(0.005, 0.03)
            lost_reply = bool(rng.getrandbits(1))
            kind = require[index] if index < len(require) else drawn_kind
            points.append(
                MessageFault(
                    kind=kind,
                    occurrence=occurrence,
                    magnitude=magnitude,
                    duration=duration,
                    lost_reply=lost_reply,
                )
            )
        return cls(points=tuple(points))

    def __len__(self):
        return len(self.points)


#: Disposition returned for sends that fall inside an already-open partition
#: window: they fail like the partition that opened the window, but they do
#: not consume plan points (the window is a state, not an event).
_PARTITION_WINDOW = MessageFault(kind="partition", occurrence=1, duration=1e-9)


class MessageFaultInjector:
    """Runtime message-fault scheduler consulted by the message layer.

    :meth:`~repro.sim.network.ClusterModel.send` calls :meth:`disposition`
    once per exchange; the injector answers with the fault to apply (or
    ``None``).  Partition points open a heal-by-time window over the
    affected destinations; subsequent sends touching a partitioned
    destination keep failing — without consuming further plan points —
    until virtual time passes the heal point.
    """

    def __init__(self, plan=None):
        self.plan = plan or MessageFaultPlan()
        #: One record per planned fault that fired, in order.
        self.fault_log = []
        self.stats = {"sends": 0, "faults": 0, "partitioned_sends": 0}
        self._next_index = 0
        self._since_last = 0
        self._partitioned_until = {}

    @property
    def enabled(self):
        """True when the plan injects anything at all.  An empty plan keeps
        the engine on the plain (chaos-free) path, byte-identical to a run
        with no injector attached."""
        return bool(self.plan.points)

    def has_pending(self):
        return self._next_index < len(self.plan.points)

    def partitioned_until(self, dst):
        """Virtual time at which the window over ``dst`` heals (0 if none)."""
        return self._partitioned_until.get(dst, 0.0)

    def disposition(self, now, dsts, phase):
        """The fault to apply to a send at ``now`` addressed to ``dsts``."""
        for dst in dsts:
            if now < self._partitioned_until.get(dst, 0.0):
                self.stats["partitioned_sends"] += 1
                return _PARTITION_WINDOW
        self.stats["sends"] += 1
        if self._next_index >= len(self.plan.points):
            return None
        self._since_last += 1
        point = self.plan.points[self._next_index]
        if self._since_last < point.occurrence:
            return None
        if point.phases and phase not in point.phases:
            return None
        self._next_index += 1
        self._since_last = 0
        self.stats["faults"] += 1
        self.fault_log.append(
            {
                "kind": point.kind,
                "time": now,
                "phase": phase,
                "dsts": tuple(dsts),
                "lost_reply": point.lost_reply,
            }
        )
        if point.kind == "partition":
            heal = now + point.duration
            for dst in point.servers or tuple(dsts):
                self._partitioned_until[dst] = max(
                    self._partitioned_until.get(dst, 0.0), heal
                )
            self.fault_log[-1]["heals_at"] = heal
        return point
