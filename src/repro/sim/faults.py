"""Seeded fault injection: deterministic crash schedules for the simulator.

A :class:`FaultPlan` names the adversarial points at which the simulated
cluster loses its volatile state (a "crash"): mid-commit between per-server
precommit flushes (a torn precommit record set), immediately after a durable
precommit but before the commit becomes visible, or around/inside a GCP
epoch flush (a torn epoch).  The plan is pure data derived from the run
seed, so every failure schedule — and therefore every recovery and every
oracle verdict — reproduces byte-identically for a fixed seed.

The :class:`FaultInjector` is the runtime half: the durability module calls
:meth:`FaultInjector.trip` at each instrumented site, and when the planned
occurrence of a site is reached the injector declares the crash, freezes
the caller (the durability manager stops persisting anything) and fires the
crash event the harness is waiting on.  The harness then tears the world
down, drives WAL recovery, and resumes the workload — see
:mod:`repro.harness.crash`.
"""

import random
from dataclasses import dataclass

#: Instrumented crash sites, in the durability module:
#:
#: * ``precommit-record`` — after one per-server precommit record is
#:   appended (and, in synchronous mode, flushed).  Firing with
#:   ``index < total - 1`` leaves a *torn* precommit set behind.
#: * ``precommit-done``  — after the full precommit set is persisted but
#:   before the commit becomes visible: the transaction is durable yet
#:   unacknowledged (the "ghost" recovery case).
#: * ``gcp-before``      — at the start of a GCP epoch advance: nothing of
#:   the closing epoch is durable yet.
#: * ``gcp-server``      — after one server's epoch flush inside the
#:   advance: a torn epoch (some servers flushed, marker not advanced).
#: * ``gcp-after``       — after the persistent-epoch marker advanced.
#: * ``operation``       — after an operation log append (soak noise).
SITES = (
    "precommit-record",
    "precommit-done",
    "gcp-before",
    "gcp-server",
    "gcp-after",
    "operation",
)

#: Sites used by seeded plans.  ``operation`` is excluded by default: it
#: adds nothing a precommit-site crash does not cover, and including it
#: would skew short runs toward the least interesting point.
DEFAULT_SITES = SITES[:-1]


@dataclass(frozen=True)
class CrashPoint:
    """Crash at the ``occurrence``-th trip of ``site`` (1-based, counted
    from the start of the current incarnation)."""

    site: str
    occurrence: int = 1

    def __post_init__(self):
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; known: {SITES}")
        if self.occurrence < 1:
            raise ValueError(f"occurrence must be >= 1, got {self.occurrence}")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered tuple of crash points: one simulated crash per point."""

    points: tuple = ()

    @classmethod
    def from_seed(cls, seed, crashes=1, sites=DEFAULT_SITES, max_occurrence=25):
        """Derive a deterministic plan from the run seed.

        Uses ``random.Random`` over integers only (no salted hashes), so the
        schedule is identical across processes and interpreter restarts.
        """
        if crashes < 0:
            raise ValueError(f"crashes must be >= 0, got {crashes}")
        rng = random.Random((int(seed) << 8) ^ 0xFA17)
        points = tuple(
            CrashPoint(site=rng.choice(tuple(sites)),
                       occurrence=rng.randint(1, max_occurrence))
            for _ in range(crashes)
        )
        return cls(points=points)

    def __len__(self):
        return len(self.points)


class FaultInjector:
    """Runtime crash scheduler driven by the durability module's trip calls.

    One injector lives for the whole (multi-incarnation) run; the harness
    re-arms it with the new environment after every recovery, which resets
    the per-site occurrence counters and moves on to the next planned point.
    """

    def __init__(self, plan=None):
        self.plan = plan or FaultPlan()
        self.crashed = False
        self.crash_info = None
        #: One info dict per crash that actually fired, in order.
        self.crash_log = []
        self._counts = {}
        self._next_index = 0
        self._event = None
        self._env = None

    def has_pending(self):
        """True if a planned crash point has not fired yet."""
        return self._next_index < len(self.plan.points)

    def arm(self, env):
        """Start a new incarnation: fresh crash event, counters reset.

        Returns the event the harness should wait on; it fires when (and
        only when) the next planned crash point trips.  If the plan is
        exhausted the event simply never triggers.
        """
        self.crashed = False
        self.crash_info = None
        self._counts = {}
        self._env = env
        self._event = env.event(name="crash")
        return self._event

    def trip(self, site, **detail):
        """Notify the injector that an instrumented site was reached.

        Returns ``True`` exactly once per planned crash point — at the
        planned occurrence of the planned site — after which the caller
        must stop persisting state (the machine is "down").
        """
        if self.crashed or self._next_index >= len(self.plan.points):
            return False
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        point = self.plan.points[self._next_index]
        if point.site != site or point.occurrence != count:
            return False
        self.crashed = True
        self._next_index += 1
        self.crash_info = {
            "site": site,
            "occurrence": count,
            "time": self._env.now if self._env is not None else None,
            "detail": dict(detail),
        }
        self.crash_log.append(self.crash_info)
        if self._event is not None and not self._event.triggered:
            self._event.succeed(self.crash_info)
        return True
