"""Deterministic discrete-event simulation kernel.

This package is the substrate that replaces the paper's CloudLab cluster:
closed-loop clients, data-server CPUs and the network are all simulated in
virtual time so that the concurrency-control behaviour (blocking, aborts,
pipelining) determines throughput, not the Python GIL.

The programming model is the classic process-based one (SimPy-like): a
*process* is a generator that yields :class:`~repro.sim.events.Event`
instances; ``yield from`` composes sub-coroutines.
"""

from repro.sim.environment import Environment
from repro.sim.events import Event, Interrupt, Timeout
from repro.sim.faults import (
    FaultInjector,
    FaultPlan,
    MessageFault,
    MessageFaultInjector,
    MessageFaultPlan,
)
from repro.sim.resources import Condition, Resource, WaitQueue
from repro.sim.network import ClusterModel, Delivery, LinkState, NetworkModel

__all__ = [
    "Environment",
    "Event",
    "Interrupt",
    "Timeout",
    "Condition",
    "Resource",
    "WaitQueue",
    "ClusterModel",
    "Delivery",
    "LinkState",
    "NetworkModel",
    "FaultInjector",
    "FaultPlan",
    "MessageFault",
    "MessageFaultInjector",
    "MessageFaultPlan",
]
