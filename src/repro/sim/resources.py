"""Synchronisation and resource primitives built on the simulation kernel."""

from collections import deque

from repro.errors import SimulationError
from repro.sim.events import Event


class WaitQueue:
    """A FIFO queue of waiting processes, woken explicitly.

    This is the building block used for lock wait-lists and pipeline-step
    hand-offs: a coroutine calls ``yield from queue.wait()`` and is resumed
    when another coroutine calls :meth:`notify_all` (or :meth:`notify_one`).
    """

    __slots__ = ("env", "name", "_waiters")

    def __init__(self, env, name=""):
        self.env = env
        self.name = name
        self._waiters = deque()

    def __len__(self):
        return len(self._waiters)

    def wait(self):
        """Suspend the calling coroutine until notified."""
        event = Event(self.env, name=f"wait:{self.name}")
        self._waiters.append(event)
        value = yield event
        return value

    def notify_one(self, value=None):
        """Wake the oldest waiter, if any."""
        while self._waiters:
            event = self._waiters.popleft()
            if not event.triggered:
                event.succeed(value)
                return True
        return False

    def notify_all(self, value=None):
        """Wake every waiter."""
        count = 0
        while self.notify_one(value):
            count += 1
        return count

    def fail_all(self, exception):
        """Wake every waiter with an exception (used on force-abort)."""
        while self._waiters:
            event = self._waiters.popleft()
            if not event.triggered:
                event.fail(exception)


class Condition:
    """Broadcast condition variable: wait until the next notification."""

    __slots__ = ("env", "name", "_event")

    def __init__(self, env, name=""):
        self.env = env
        self.name = name
        self._event = Event(env, name=f"cond:{name}")

    def wait(self):
        """Wait for the next :meth:`notify_all` call."""
        event = self._event
        yield event
        return event.value

    def wait_for(self, predicate):
        """Wait (re-checking after each notification) until ``predicate()``."""
        while not predicate():
            yield from self.wait()

    def notify_all(self, value=None):
        """Wake every process currently waiting and reset the condition."""
        event, self._event = self._event, Event(self.env, name=f"cond:{self.name}")
        if not event.triggered:
            event.succeed(value)


class Resource:
    """A counting resource with FIFO admission (models server CPU slots)."""

    __slots__ = ("env", "name", "capacity", "_in_use", "_waiters")

    def __init__(self, env, capacity, name=""):
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.env = env
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters = deque()

    @property
    def in_use(self):
        return self._in_use

    @property
    def queued(self):
        return len(self._waiters)

    def acquire(self):
        """Acquire one slot, waiting FIFO if the resource is saturated."""
        if self._in_use < self.capacity:
            self._in_use += 1
            return
        event = Event(self.env, name=f"acquire:{self.name}")
        self._waiters.append(event)
        yield event
        # The releasing process transferred its slot to us.

    def release(self):
        """Release one slot, handing it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        while self._waiters:
            event = self._waiters.popleft()
            if not event.triggered:
                event.succeed(None)
                return
        self._in_use -= 1

    def use(self, duration):
        """Hold one slot for ``duration`` virtual seconds (acquire/delay/release)."""
        yield from self.acquire()
        try:
            yield self.env.timeout(duration)
        finally:
            self.release()
