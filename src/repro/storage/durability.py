"""Durability protocol: write-ahead logging, 2PC-style precommit records,
asynchronous flushing with global checkpoint (GCP) epochs, and recovery
(Section 4.5.4 of the paper).

The manager is deliberately independent of the concurrency-control module: a
committed-but-not-yet-durable transaction looks exactly like a durable one to
every CC mechanism, which is what keeps the overhead at ~5% in Table 4.2.
"""

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import RecoveryError
from repro.storage.backends import InMemoryBackend
from repro.storage.wal import LogRecord, WriteAheadLog


@dataclass
class DurabilityConfig:
    """Configuration of the durability module."""

    enabled: bool = False
    asynchronous: bool = True
    gcp_epoch_length: float = 1.0
    num_servers: int = 4
    sync_flush_delay: float = 200e-6
    async_flush_delay: float = 50e-6


class DurabilityManager:
    """Coordinates per-data-server WALs and the GCP asynchronous flush."""

    def __init__(self, config=None, backend_factory=InMemoryBackend):
        self.config = config or DurabilityConfig()
        self.backends = [backend_factory() for _ in range(self.config.num_servers)]
        self.logs = [
            WriteAheadLog(server_id, backend)
            for server_id, backend in enumerate(self.backends)
        ]
        self._current_gcp_epoch = [1] * self.config.num_servers
        self._persistent_gcp_epoch = 0
        self._durable_waiters = defaultdict(list)
        self.records_written = 0

    @property
    def enabled(self):
        return self.config.enabled

    @property
    def persistent_gcp_epoch(self):
        return self._persistent_gcp_epoch

    def server_for(self, key):
        """Hash-partition a storage key onto a data server."""
        return hash(key) % self.config.num_servers

    def current_epoch(self, server_id):
        return self._current_gcp_epoch[server_id]

    # -- logging -----------------------------------------------------------

    def log_operation(self, txn, key, value):
        """Append an operation log for a buffered write."""
        if not self.enabled:
            return None
        server_id = self.server_for(key)
        record = LogRecord(
            kind="operation",
            txn_id=txn.txn_id,
            server_id=server_id,
            payload={"key": repr(key), "value": value},
            gcp_epoch=self._current_gcp_epoch[server_id],
        )
        self.logs[server_id].append(record)
        self.records_written += 1
        return record

    def precommit(self, txn, writes):
        """Write one precommit record per participating data server.

        ``writes`` is the list of (key, value) pairs buffered by the
        transaction.  Returns the transaction's *global* GCP epoch id (the
        maximum over participants), which the coordinator propagates in the
        commit notification.
        """
        if not self.enabled:
            return 0
        by_server = defaultdict(list)
        for key, value in writes:
            by_server[self.server_for(key)].append((repr(key), value))
        participants = sorted(by_server) if by_server else [0]
        global_epoch = 0
        for server_id in participants:
            epoch = self._current_gcp_epoch[server_id]
            global_epoch = max(global_epoch, epoch)
            record = LogRecord(
                kind="precommit",
                txn_id=txn.txn_id,
                server_id=server_id,
                payload={
                    "participants": len(participants),
                    "writes": by_server.get(server_id, []),
                },
                gcp_epoch=epoch,
            )
            self.logs[server_id].append(record)
            self.records_written += 1
        if not self.config.asynchronous:
            for server_id in participants:
                self.logs[server_id].flush()
            self._persistent_gcp_epoch = max(
                self._persistent_gcp_epoch, global_epoch
            )
        return global_epoch

    def commit_notification(self, txn, global_epoch):
        """Apply the commit notification: bump lagging servers' epochs."""
        if not self.enabled:
            return
        for server_id in range(self.config.num_servers):
            if global_epoch > self._current_gcp_epoch[server_id]:
                self._current_gcp_epoch[server_id] = global_epoch

    def flush_delay(self):
        """Virtual-time cost charged to the committing transaction."""
        if not self.enabled:
            return 0.0
        if self.config.asynchronous:
            return self.config.async_flush_delay
        return self.config.sync_flush_delay

    # -- asynchronous flushing (GCP protocol) --------------------------------

    def advance_gcp_epoch(self):
        """Close the current GCP epoch: flush its logs and open the next one.

        Returns the epoch that became persistent.
        """
        if not self.enabled:
            return 0
        closing = max(self._current_gcp_epoch)
        for server_id, log in enumerate(self.logs):
            log.flush(up_to_epoch=closing)
            self._current_gcp_epoch[server_id] = closing + 1
        self._persistent_gcp_epoch = max(self._persistent_gcp_epoch, closing)
        self._notify_durable()
        return closing

    def _notify_durable(self):
        for epoch in list(self._durable_waiters):
            if epoch <= self._persistent_gcp_epoch:
                for event in self._durable_waiters.pop(epoch):
                    if not event.triggered:
                        event.succeed(epoch)

    def wait_durable(self, env, global_epoch):
        """Coroutine: wait until ``global_epoch`` has been made persistent."""
        if not self.enabled or global_epoch <= self._persistent_gcp_epoch:
            return self._persistent_gcp_epoch
        event = env.event(name=f"durable-epoch-{global_epoch}")
        self._durable_waiters[global_epoch].append(event)
        value = yield event
        return value

    def run_flusher(self, env, stop_event=None):
        """Background process flushing GCP epochs periodically."""
        while stop_event is None or not stop_event.triggered:
            yield env.timeout(self.config.gcp_epoch_length)
            self.advance_gcp_epoch()

    # -- recovery ---------------------------------------------------------------

    def recover(self):
        """Replay persistent logs and rebuild the latest committed state.

        Implements the three-step recovery of Section 4.5.4 (minus the CC
        state rebuild, which the engine performs):

        1. retrieve durable records from every server;
        2. discard transactions with fewer precommit records than their
           participant count, or whose GCP epoch exceeds the persistent one;
        3. reconstruct the latest value of every object from the surviving
           precommit records, in log-sequence order.
        """
        precommits = defaultdict(list)
        order = []
        for log in self.logs:
            for record in log.persisted_records():
                if record.kind != "precommit":
                    continue
                precommits[record.txn_id].append(record)
                order.append(record)
        survivors = set()
        for txn_id, records in precommits.items():
            expected = records[0].payload.get("participants", len(records))
            if len(records) < expected:
                continue
            max_epoch = max(r.gcp_epoch for r in records)
            if self._persistent_gcp_epoch and max_epoch > self._persistent_gcp_epoch:
                continue
            survivors.add(txn_id)
        state = {}
        order.sort(key=lambda r: (r.gcp_epoch, r.txn_id, r.server_id, r.lsn))
        for record in order:
            if record.txn_id not in survivors:
                continue
            for key_repr, value in record.payload.get("writes", []):
                state[key_repr] = value
        return RecoveryResult(
            recovered_transactions=survivors,
            discarded_transactions=set(precommits) - survivors,
            state=state,
        )


@dataclass
class RecoveryResult:
    """Outcome of a recovery pass."""

    recovered_transactions: set
    discarded_transactions: set
    state: dict

    def require_transaction(self, txn_id):
        if txn_id not in self.recovered_transactions:
            raise RecoveryError(f"transaction {txn_id} did not survive recovery")
        return True
