"""Durability protocol: write-ahead logging, 2PC-style precommit records,
asynchronous flushing with global checkpoint (GCP) epochs, and recovery
(Section 4.5.4 of the paper).

The manager is deliberately independent of the concurrency-control module: a
committed-but-not-yet-durable transaction looks exactly like a durable one to
every CC mechanism, which is what keeps the overhead at ~5% in Table 4.2.

Fault injection: when a :class:`~repro.sim.faults.FaultInjector` is attached
(``manager.faults``), the manager notifies it at every instrumented site —
between per-server precommit appends/flushes, after a complete precommit,
and around the per-server flushes of a GCP epoch advance.  When the injector
declares a crash the manager *halts*: every subsequent append or flush is a
no-op, modelling a machine that is down.  :meth:`crash` then discards the
volatile state (log buffers, waiters) and :meth:`recover` replays whatever
made it to the persistent backends.
"""

import zlib
from collections import defaultdict
from dataclasses import dataclass, field
from itertools import count

from repro.errors import ConfigurationError, RecoveryError
from repro.storage.backends import InMemoryBackend
from repro.storage.wal import LogRecord, WriteAheadLog, decode_key, encode_key


@dataclass
class DurabilityConfig:
    """Configuration of the durability module."""

    enabled: bool = False
    asynchronous: bool = True
    gcp_epoch_length: float = 1.0
    num_servers: int = 4
    sync_flush_delay: float = 200e-6
    async_flush_delay: float = 50e-6

    def __post_init__(self):
        if self.num_servers < 1:
            raise ConfigurationError(
                f"durability num_servers must be >= 1, got {self.num_servers}"
            )
        if self.gcp_epoch_length <= 0:
            raise ConfigurationError(
                "durability gcp_epoch_length must be positive, "
                f"got {self.gcp_epoch_length}"
            )
        if self.sync_flush_delay < 0 or self.async_flush_delay < 0:
            raise ConfigurationError(
                "durability flush delays must be non-negative, got "
                f"sync={self.sync_flush_delay} async={self.async_flush_delay}"
            )


class DurabilityManager:
    """Coordinates per-data-server WALs and the GCP asynchronous flush."""

    def __init__(self, config=None, backend_factory=InMemoryBackend, faults=None):
        self.config = config or DurabilityConfig()
        self.backends = [backend_factory() for _ in range(self.config.num_servers)]
        self.logs = [
            WriteAheadLog(server_id, backend)
            for server_id, backend in enumerate(self.backends)
        ]
        self._current_gcp_epoch = [1] * self.config.num_servers
        self._persistent_gcp_epoch = 0
        self._durable_waiters = defaultdict(list)
        self._precommit_ticket = count(1)
        # Retransmit dedup: txn id -> global epoch of the already-applied
        # precommit.  A duplicated or retried precommit request must apply
        # exactly once (one ticket, one record set); the flag exists so the
        # chaos suite's mutation test can break the dedup and prove the
        # harness catches the resulting double-apply.
        self.dedup_enabled = True
        self._precommit_epochs = {}
        self.duplicate_precommits = 0
        self.records_written = 0
        #: Optional FaultInjector; assigned by the crash harness.
        self.faults = faults
        self._halted = False

    @property
    def enabled(self):
        return self.config.enabled

    @property
    def halted(self):
        """True after an injected crash fired: the machine is down."""
        return self._halted

    @property
    def persistent_gcp_epoch(self):
        return self._persistent_gcp_epoch

    def server_for(self, key):
        """Hash-partition a storage key onto a data server.

        Uses CRC32 of the key's repr rather than ``hash()``: Python string
        hashing is salted per interpreter, and the partitioning must be
        byte-identical across processes for fault schedules and recovered
        survivor sets to reproduce from a seed.
        """
        return zlib.crc32(repr(key).encode("utf-8")) % self.config.num_servers

    def participants_for(self, writes):
        """Sorted participant server ids of a write set (``(0,)`` if empty).

        The coordinator addresses its precommit exchange to exactly these
        servers, so a partition over any participant stalls the commit."""
        servers = {self.server_for(key) for key, _value in writes}
        return tuple(sorted(servers)) if servers else (0,)

    def current_epoch(self, server_id):
        return self._current_gcp_epoch[server_id]

    def _trip(self, site, **detail):
        """Report an instrumented site to the fault injector; on a planned
        crash the manager halts (everything volatile is about to be lost)."""
        if self.faults is None:
            return False
        if self.faults.trip(site, **detail):
            self._halted = True
            return True
        return False

    # -- logging -----------------------------------------------------------

    def log_operation(self, txn, key, value):
        """Append an operation log for a buffered write."""
        if not self.enabled or self._halted:
            return None
        server_id = self.server_for(key)
        record = LogRecord(
            kind="operation",
            txn_id=txn.txn_id,
            server_id=server_id,
            payload={"key": encode_key(key), "value": value},
            gcp_epoch=self._current_gcp_epoch[server_id],
        )
        self.logs[server_id].append(record)
        self.records_written += 1
        self._trip("operation", txn_id=txn.txn_id, server_id=server_id)
        return record

    def precommit(self, txn, writes):
        """Write one precommit record per participating data server.

        ``writes`` is the list of (key, value) pairs buffered by the
        transaction.  Returns the transaction's *global* GCP epoch id (the
        maximum over participants), which the coordinator propagates in the
        commit notification.

        Every record carries the participant count (recovery must not trust
        a partial set to describe itself) and a monotonically increasing
        ``ticket``: precommit happens atomically with the in-memory commit,
        so ticket order *is* commit order, and recovery replays surviving
        records in ticket order to rebuild the latest value of every key.

        In synchronous mode each record is flushed as it is appended; a
        crash injected between records leaves a durable *torn* precommit
        set, which recovery must discard.

        The call is *idempotent* per transaction: a retransmitted or
        duplicated precommit request returns the already-assigned global
        epoch without allocating a new ticket or appending new records,
        so a reply lost on the wire cannot double-apply the commit.
        """
        if not self.enabled or self._halted:
            return 0
        if self.dedup_enabled:
            cached = self._precommit_epochs.get(txn.txn_id)
            if cached is not None:
                self.duplicate_precommits += 1
                return cached
        by_server = defaultdict(list)
        for key, value in writes:
            by_server[self.server_for(key)].append((encode_key(key), value))
        participants = sorted(by_server) if by_server else [0]
        total = len(participants)
        ticket = next(self._precommit_ticket)
        synchronous = not self.config.asynchronous
        global_epoch = 0
        for index, server_id in enumerate(participants):
            epoch = self._current_gcp_epoch[server_id]
            global_epoch = max(global_epoch, epoch)
            record = LogRecord(
                kind="precommit",
                txn_id=txn.txn_id,
                server_id=server_id,
                payload={
                    "participants": total,
                    "ticket": ticket,
                    "writes": by_server.get(server_id, []),
                },
                gcp_epoch=epoch,
            )
            self.logs[server_id].append(record)
            self.records_written += 1
            if synchronous:
                self.logs[server_id].flush()
            if self._trip(
                "precommit-record",
                txn_id=txn.txn_id,
                index=index,
                total=total,
            ):
                return 0
        if synchronous:
            self._persistent_gcp_epoch = max(
                self._persistent_gcp_epoch, global_epoch
            )
        self._precommit_epochs[txn.txn_id] = global_epoch
        self._trip("precommit-done", txn_id=txn.txn_id)
        return global_epoch

    def commit_notification(self, txn, global_epoch):
        """Apply the commit notification: bump lagging servers' epochs."""
        if not self.enabled or self._halted:
            return
        for server_id in range(self.config.num_servers):
            if global_epoch > self._current_gcp_epoch[server_id]:
                self._current_gcp_epoch[server_id] = global_epoch

    def flush_delay(self):
        """Virtual-time cost charged to the committing transaction."""
        if not self.enabled:
            return 0.0
        if self.config.asynchronous:
            return self.config.async_flush_delay
        return self.config.sync_flush_delay

    # -- asynchronous flushing (GCP protocol) --------------------------------

    def advance_gcp_epoch(self):
        """Close the current GCP epoch: flush its logs and open the next one.

        Returns the epoch that became persistent (0 if nothing happened).
        A crash injected between the per-server flushes leaves a *torn*
        epoch behind: some servers' records are durable but the persistent
        marker never advanced, so recovery discards the whole epoch.
        """
        if not self.enabled or self._halted:
            return 0
        if self._trip("gcp-before"):
            return 0
        closing = max(self._current_gcp_epoch)
        for server_id, log in enumerate(self.logs):
            log.flush(up_to_epoch=closing)
            if self._trip("gcp-server", server_id=server_id, epoch=closing):
                return 0
        for server_id in range(self.config.num_servers):
            self._current_gcp_epoch[server_id] = closing + 1
        self._persistent_gcp_epoch = max(self._persistent_gcp_epoch, closing)
        self._trip("gcp-after", epoch=closing)
        self._notify_durable()
        return closing

    def _notify_durable(self):
        for epoch in list(self._durable_waiters):
            if epoch <= self._persistent_gcp_epoch:
                for event in self._durable_waiters.pop(epoch):
                    if not event.triggered:
                        event.succeed(epoch)

    def wait_durable(self, env, global_epoch):
        """Coroutine: wait until ``global_epoch`` has been made persistent."""
        if not self.enabled or global_epoch <= self._persistent_gcp_epoch:
            return self._persistent_gcp_epoch
        event = env.event(name=f"durable-epoch-{global_epoch}")
        self._durable_waiters[global_epoch].append(event)
        value = yield event
        return value

    def run_flusher(self, env, stop_event=None):
        """Background process flushing GCP epochs periodically."""
        while stop_event is None or not stop_event.triggered:
            yield env.timeout(self.config.gcp_epoch_length)
            self.advance_gcp_epoch()

    # -- crash / recovery ---------------------------------------------------

    def crash(self):
        """Lose all volatile state: log buffers, waiters, epoch counters.

        Persistent backends survive.  Clears the halt so the manager can be
        reused by the next incarnation (after :meth:`recover`).
        """
        for log in self.logs:
            log.crash()
        self._durable_waiters.clear()
        # The dedup table is volatile.  Losing it is benign: a post-crash
        # retransmit appends a fresh record set with a fresh ticket over the
        # *same* writes, and per-key last-ticket-wins replay converges.
        self._precommit_epochs.clear()
        self._halted = False
        resume = self._persistent_gcp_epoch + 1
        self._current_gcp_epoch = [resume] * self.config.num_servers

    def recover(self):
        """Replay persistent logs and rebuild the latest committed state.

        Implements the three-step recovery of Section 4.5.4 (minus the CC
        state rebuild, which the engine performs):

        1. retrieve durable records from every server (checkpoint records
           first: they are the base state of the current incarnation);
        2. discard transactions with fewer precommit records than their
           participant count — every record must carry the count, a record
           set is never trusted to describe its own completeness — or whose
           GCP epoch exceeds the persistent one.  The epoch filter always
           applies: before the first GCP advance the persistent epoch is 0,
           so asynchronous-mode records (epoch >= 1) are correctly discarded
           — nothing was durably flushed yet.  Synchronous precommits bump
           the persistent epoch at flush time and therefore pass.
        3. reconstruct the latest value of every object from the surviving
           precommit records, in precommit-ticket (= commit) order.
        """
        base_state = {}
        base_writers = {}
        precommits = defaultdict(list)
        for log in self.logs:
            for record in log.persisted_records():
                if record.kind == "checkpoint":
                    key = decode_key(record.payload["key"])
                    base_state[key] = record.payload.get("value")
                    base_writers[key] = record.payload.get("writer", 0)
                elif record.kind == "precommit":
                    precommits[record.txn_id].append(record)
        survivors = set()
        replayable = []
        for txn_id, records in precommits.items():
            counts = [
                r.payload["participants"]
                for r in records
                if "participants" in r.payload
            ]
            if len(counts) != len(records):
                continue
            if len(records) < max(counts):
                continue
            if max(r.gcp_epoch for r in records) > self._persistent_gcp_epoch:
                continue
            survivors.add(txn_id)
            replayable.extend(records)
        state = dict(base_state)
        writers = dict(base_writers)
        replayable.sort(
            key=lambda r: (r.payload.get("ticket", 0), r.server_id, r.lsn)
        )
        for record in replayable:
            for encoded_key, value in record.payload.get("writes", []):
                key = decode_key(encoded_key)
                state[key] = value
                writers[key] = record.txn_id
        return RecoveryResult(
            recovered_transactions=survivors,
            discarded_transactions=set(precommits) - survivors,
            state=state,
            state_writers=writers,
        )

    def checkpoint(self, result):
        """Persist a recovery result as the base state of a new incarnation.

        Wipes every server's durable log and replaces it with one flushed
        ``checkpoint`` record per recovered key.  This prevents records of a
        *discarded* epoch from resurrecting at the next recovery (once later
        epochs become persistent, a torn epoch's complete record sets would
        otherwise pass the epoch filter), and resets LSNs and GCP epochs so
        the next incarnation starts clean.  Returns the number of
        checkpoint records written.
        """
        if not self.enabled:
            return 0
        for server_id, (log, backend) in enumerate(zip(self.logs, self.backends)):
            for key, _value in backend.scan(f"wal/{server_id}/"):
                backend.delete(key)
            log.reset()
        written = 0
        for key in sorted(result.state, key=repr):
            server_id = self.server_for(key)
            record = LogRecord(
                kind="checkpoint",
                txn_id=0,
                server_id=server_id,
                payload={
                    "key": encode_key(key),
                    "value": result.state[key],
                    "writer": result.state_writers.get(key, 0),
                },
                gcp_epoch=0,
            )
            self.logs[server_id].append(record)
            written += 1
        for log in self.logs:
            log.flush()
        self._persistent_gcp_epoch = 0
        self._current_gcp_epoch = [1] * self.config.num_servers
        self._halted = False
        return written


@dataclass
class RecoveryResult:
    """Outcome of a recovery pass."""

    recovered_transactions: set
    discarded_transactions: set
    state: dict
    #: key -> txn id of the surviving writer that produced ``state[key]``
    #: (0 for initial-load values restored from a checkpoint).
    state_writers: dict = field(default_factory=dict)

    def require_transaction(self, txn_id):
        if txn_id not in self.recovered_transactions:
            raise RecoveryError(f"transaction {txn_id} did not survive recovery")
        return True
