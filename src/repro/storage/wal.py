"""Write-ahead logging primitives used by the durability protocol."""

from dataclasses import dataclass, field
from itertools import count
from typing import Any


def encode_key(key):
    """Encode a storage key for a WAL payload.

    Composite keys are tuples; JSON-backed backends round-trip tuples as
    lists, so the codec normalises to lists on the way in and restores
    tuples on the way out.  Scalars pass through unchanged.
    """
    if isinstance(key, tuple):
        return [encode_key(part) for part in key]
    return key


def decode_key(encoded):
    """Inverse of :func:`encode_key`."""
    if isinstance(encoded, (list, tuple)):
        return tuple(decode_key(part) for part in encoded)
    return encoded


@dataclass
class LogRecord:
    """One write-ahead log record.

    ``kind`` is one of ``"operation"`` (a buffered write), ``"precommit"``
    (the per-data-server precommit record carrying the participant count and
    write ordering) or ``"commit"`` (commit notification, used only to speed
    up recovery).
    """

    kind: str
    txn_id: int
    server_id: int
    payload: dict = field(default_factory=dict)
    gcp_epoch: int = 0
    lsn: int = 0

    def to_dict(self):
        return {
            "kind": self.kind,
            "txn_id": self.txn_id,
            "server_id": self.server_id,
            "payload": self.payload,
            "gcp_epoch": self.gcp_epoch,
            "lsn": self.lsn,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            kind=data["kind"],
            txn_id=data["txn_id"],
            server_id=data["server_id"],
            payload=data.get("payload", {}),
            gcp_epoch=data.get("gcp_epoch", 0),
            lsn=data.get("lsn", 0),
        )


class WriteAheadLog:
    """Per-data-server write-ahead log.

    Records are appended to a volatile buffer and become durable when
    :meth:`flush` persists them to the backend (synchronously at precommit,
    or asynchronously in GCP-epoch batches).
    """

    def __init__(self, server_id, backend):
        self.server_id = server_id
        self.backend = backend
        self._lsn = count(1)
        self._buffer = []
        self.flush_count = 0

    def append(self, record):
        """Append a record to the volatile tail of the log."""
        record.lsn = next(self._lsn)
        record.server_id = self.server_id
        self._buffer.append(record)
        return record

    @property
    def pending(self):
        """Number of records not yet persisted."""
        return len(self._buffer)

    def flush(self, up_to_epoch=None):
        """Persist buffered records (optionally only up to a GCP epoch)."""
        remaining = []
        flushed = 0
        for record in self._buffer:
            if up_to_epoch is not None and record.gcp_epoch > up_to_epoch:
                remaining.append(record)
                continue
            key = f"wal/{self.server_id}/{record.lsn:012d}"
            self.backend.put(key, record.to_dict())
            flushed += 1
        self._buffer = remaining
        if flushed:
            self.flush_count += 1
        return flushed

    def crash(self):
        """Simulate a machine crash: the volatile tail of the log is lost.

        Records already persisted by :meth:`flush` survive in the backend;
        everything still buffered vanishes without trace.
        """
        lost = len(self._buffer)
        self._buffer = []
        return lost

    def reset(self, lsn_start=1):
        """Restart the log for a new incarnation (after a checkpoint wiped
        the backend): empty buffer, LSNs restart from ``lsn_start``."""
        self._buffer = []
        self._lsn = count(lsn_start)

    def persisted_records(self):
        """Read back every durable record of this server from the backend."""
        records = []
        for _key, value in sorted(self.backend.scan(f"wal/{self.server_id}/")):
            records.append(LogRecord.from_dict(value))
        return records
