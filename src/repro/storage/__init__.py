"""Multi-version storage module, garbage collection and durability.

Tebaldi separates concurrency control from storage (Section 4.3): the storage
module keeps every committed and uncommitted write of each object so that both
single-version and multi-version CC mechanisms can be federated on top of it.
"""

from repro.storage.versions import Version
from repro.storage.mvstore import MultiVersionStore
from repro.storage.tables import Catalog, Table, TableSchema, composite_key
from repro.storage.gc import GarbageCollector
from repro.storage.wal import LogRecord, WriteAheadLog
from repro.storage.durability import DurabilityManager, DurabilityConfig
from repro.storage.backends import InMemoryBackend, FileBackend

__all__ = [
    "Version",
    "MultiVersionStore",
    "Table",
    "TableSchema",
    "Catalog",
    "composite_key",
    "GarbageCollector",
    "LogRecord",
    "WriteAheadLog",
    "DurabilityManager",
    "DurabilityConfig",
    "InMemoryBackend",
    "FileBackend",
]
