"""Key ranges: the predicate objects behind scan/range access.

A scan names the keys it *may* observe with a :class:`KeyRange` — a table
plus an inclusive ``[lo, hi]`` bound over that table's primary keys.  The
same object travels through every layer: the storage module enumerates the
matching keys, CC mechanisms register it as a predicate lock (2PL/RP), a
snapshot read set (SSI) or a timestamped range read (TSO), and the
isolation oracle replays it to derive the rw anti-dependencies of keys the
scan *missed* (phantoms).

Primary keys within one table share a shape (all scalars or all same-arity
tuples), so plain tuple comparison orders them.  Prefix scans over
composite keys use the :data:`TOP` sentinel, which compares greater than
every concrete key component: the range ``[(w, d, name), (w, d, name, TOP)]``
matches exactly the keys whose first three components equal the prefix.
"""

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Any, Optional


class _Top:
    """Sentinel ordering above every concrete key component."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __lt__(self, other):
        return False

    def __le__(self, other):
        return other is self

    def __gt__(self, other):
        return other is not self

    def __ge__(self, other):
        return True

    def __eq__(self, other):
        return other is self

    def __hash__(self):
        return hash("repro.storage.ranges.TOP")

    def __repr__(self):
        return "TOP"

    def __reduce__(self):
        # Pickle round-trips (fork workers) preserve the singleton identity.
        return (_Top, ())


#: Compares greater than any concrete primary-key component.
TOP = _Top()


@dataclass(frozen=True)
class KeyRange:
    """An inclusive primary-key range ``[lo, hi]`` over one table.

    ``None`` bounds are unbounded on that side.  Containment is defined on
    the *primary key* part of a storage key (storage keys are
    ``(table, pk)`` pairs, see :func:`repro.storage.tables.composite_key`).
    """

    table: str
    lo: Any = None
    hi: Any = None

    def contains_pk(self, pk):
        """Whether a primary key of this table falls inside the range."""
        if self.lo is not None and pk < self.lo:
            return False
        if self.hi is not None and self.hi < pk:
            return False
        return True

    def contains_key(self, key):
        """Whether a full storage key ``(table, pk)`` falls inside the range."""
        if not isinstance(key, tuple) or len(key) != 2 or key[0] != self.table:
            return False
        return self.contains_pk(key[1])

    def truncated(self, hi):
        """A copy of this range with the upper bound tightened to ``hi``.

        Used by limited scans: a scan that stopped early only depended on
        the key space up to the last key it enumerated.
        """
        return KeyRange(self.table, self.lo, hi)

    def describe(self):
        return f"{self.table}[{self.lo!r}..{self.hi!r}]"


def bounded_range(table, lo=None, hi=None):
    """An inclusive ``[lo, hi]`` range over ``table``."""
    return KeyRange(table, lo, hi)


def prefix_range(table, *prefix):
    """The range matching every composite key starting with ``prefix``.

    For a single-column table a one-element prefix is the exact key; for
    composite keys the range spans every extension of the prefix (a shorter
    tuple compares below each of its extensions, and ``prefix + (TOP,)``
    compares above them).
    """
    if not prefix:
        return KeyRange(table, None, None)
    if len(prefix) == 1:
        return KeyRange(table, prefix[0], prefix[0])
    return KeyRange(table, tuple(prefix), tuple(prefix) + (TOP,))


def slice_sorted_pks(pks, lo=None, hi=None):
    """The ``[start, stop)`` index slice of a sorted pk list inside a range."""
    start = 0 if lo is None else bisect_left(pks, lo)
    stop = len(pks) if hi is None else bisect_right(pks, hi)
    return start, stop
