"""Object versions stored by the multi-version storage module."""

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(slots=True)
class Version:
    """A single version of a data object.

    Attributes
    ----------
    key:
        The storage key this version belongs to.
    value:
        The row/value written.  ``None`` represents a deleted object.
    writer:
        Id of the writing transaction.
    writer_type:
        Static transaction type of the writer (used by the profiler).
    committed:
        Whether the writing transaction committed.
    commit_seq:
        Global commit sequence number assigned at commit time; defines the
        total version order that Adya's model requires.
    timestamp:
        Optional CC-specific timestamp (SSI commit timestamp, TSO timestamp).
    start_timestamp:
        SSI start timestamp of the writer, used for snapshot visibility.
    epoch:
        Garbage-collection epoch of the writer.
    """

    key: Any
    value: Any
    writer: int
    writer_type: str = ""
    committed: bool = False
    commit_seq: Optional[int] = None
    timestamp: Optional[float] = None
    start_timestamp: Optional[float] = None
    epoch: int = 0
    metadata: dict = field(default_factory=dict)

    def mark_committed(self, commit_seq, timestamp=None):
        """Flip the version to committed state with its global order."""
        self.committed = True
        self.commit_seq = commit_seq
        if timestamp is not None:
            self.timestamp = timestamp

    def __repr__(self):
        state = "C" if self.committed else "U"
        return (
            f"<Version {self.key!r} writer={self.writer} {state}"
            f" seq={self.commit_seq} ts={self.timestamp}>"
        )
