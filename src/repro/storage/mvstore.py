"""The multi-version key-value store used by every CC mechanism.

The store keeps, per key, the ordered chain of committed versions plus the
set of uncommitted (in-flight) versions.  CC mechanisms never mutate the
chains directly; they go through the engine, which calls
:meth:`MultiVersionStore.install`, :meth:`commit_transaction` and
:meth:`abort_transaction`.
"""

from collections import defaultdict
from itertools import count

from repro.errors import StorageError
from repro.storage.versions import Version


class MultiVersionStore:
    """In-memory multi-version storage for a Tebaldi instance."""

    def __init__(self):
        self._committed = defaultdict(list)
        self._uncommitted = defaultdict(list)
        self._writes_by_txn = defaultdict(list)
        self._commit_seq = count(1)
        self._last_commit_seq = 0

    # -- loading / reading -------------------------------------------------

    def load(self, key, value, writer=0, writer_type="loader"):
        """Install an initial committed version (database population)."""
        version = Version(key=key, value=value, writer=writer, writer_type=writer_type)
        version.mark_committed(next(self._commit_seq), timestamp=0.0)
        self._last_commit_seq = version.commit_seq
        self._committed[key].append(version)
        return version

    def keys(self):
        """All keys that have at least one committed version."""
        return self._committed.keys()

    def committed_versions(self, key):
        """Committed versions of ``key`` in install (commit-sequence) order."""
        return self._committed.get(key, [])

    def uncommitted_versions(self, key):
        """In-flight uncommitted versions of ``key`` (install order)."""
        return self._uncommitted.get(key, [])

    def latest_committed(self, key):
        """Most recently committed version of ``key`` or ``None``."""
        chain = self._committed.get(key)
        return chain[-1] if chain else None

    def latest_committed_before(self, key, timestamp, strict=True):
        """Latest committed version with CC timestamp below ``timestamp``.

        Used by snapshot reads (SSI) and timestamp-ordering reads (TSO).
        Versions without a timestamp (written under single-version CCs) fall
        back to treating their commit as happening at timestamp 0, i.e. they
        are visible to every snapshot.
        """
        chain = self._committed.get(key, [])
        # Commit timestamps are assigned in commit order, so the chain is
        # timestamp-ordered and the newest visible version is found by
        # scanning backwards and stopping at the first match.
        for version in reversed(chain):
            ts = version.timestamp if version.timestamp is not None else 0.0
            visible = ts < timestamp if strict else ts <= timestamp
            if visible:
                return version
        return None

    def own_uncommitted(self, key, txn_id):
        """The uncommitted version of ``key`` written by ``txn_id``, if any."""
        for version in reversed(self._uncommitted.get(key, [])):
            if version.writer == txn_id:
                return version
        return None

    def version_by_writer(self, key, txn_id):
        """The (committed or uncommitted) version of ``key`` written by a txn."""
        for version in reversed(self._uncommitted.get(key, [])):
            if version.writer == txn_id:
                return version
        for version in reversed(self._committed.get(key, [])):
            if version.writer == txn_id:
                return version
        return None

    def last_commit_seq(self):
        """Commit sequence number of the most recent commit."""
        return self._last_commit_seq

    # -- writing -------------------------------------------------------------

    def install(self, key, value, txn):
        """Install an uncommitted version written by ``txn``.

        A transaction that writes the same key twice overwrites its own
        uncommitted version (the intermediate value is superseded, matching
        the buffered-writes model of the paper).
        """
        for version in self._uncommitted.get(key, []):
            if version.writer == txn.txn_id:
                version.value = value
                return version
        version = Version(
            key=key,
            value=value,
            writer=txn.txn_id,
            writer_type=txn.txn_type,
            epoch=txn.gc_epoch,
            timestamp=txn.cc_timestamp,
            start_timestamp=txn.start_timestamp,
        )
        self._uncommitted[key].append(version)
        self._writes_by_txn[txn.txn_id].append(version)
        return version

    def commit_transaction(self, txn, timestamp=None):
        """Move every uncommitted version of ``txn`` to the committed chains.

        Returns the list of committed versions.  The global commit sequence
        defines the total order of versions per object.
        """
        versions = self._writes_by_txn.pop(txn.txn_id, [])
        committed = []
        for version in versions:
            seq = next(self._commit_seq)
            version.mark_committed(seq, timestamp=timestamp)
            self._last_commit_seq = seq
            chain = self._uncommitted.get(version.key, [])
            if version in chain:
                chain.remove(version)
            self._committed[version.key].append(version)
            committed.append(version)
        return committed

    def abort_transaction(self, txn):
        """Discard every uncommitted version written by ``txn``."""
        versions = self._writes_by_txn.pop(txn.txn_id, [])
        for version in versions:
            chain = self._uncommitted.get(version.key, [])
            if version in chain:
                chain.remove(version)
        return len(versions)

    def writes_of(self, txn_id):
        """Uncommitted versions currently installed by ``txn_id``."""
        return list(self._writes_by_txn.get(txn_id, []))

    # -- garbage collection ---------------------------------------------------

    def prune(self, key, keep_last=1):
        """Drop all but the last ``keep_last`` committed versions of ``key``."""
        if keep_last < 1:
            raise StorageError("prune() must keep at least one version")
        chain = self._committed.get(key)
        if not chain or len(chain) <= keep_last:
            return 0
        removed = len(chain) - keep_last
        self._committed[key] = chain[-keep_last:]
        return removed

    def prune_epochs(self, max_epoch, keep_last=1):
        """Drop committed versions from GC epochs ``<= max_epoch``.

        The newest committed version of each key is always retained so that
        future readers observe the current database state.
        """
        removed = 0
        for key, chain in self._committed.items():
            if len(chain) <= keep_last:
                continue
            keep = chain[-keep_last:]
            head = [
                v for v in chain[:-keep_last] if v.epoch > max_epoch
            ]
            new_chain = head + keep
            removed += len(chain) - len(new_chain)
            self._committed[key] = new_chain
        return removed

    def version_count(self):
        """Total number of committed versions currently retained."""
        return sum(len(chain) for chain in self._committed.values())

    # -- snapshot / recovery helpers -------------------------------------------

    def latest_state(self):
        """Map of key -> value of the latest committed version (for recovery)."""
        return {
            key: chain[-1].value
            for key, chain in self._committed.items()
            if chain
        }

    def clear(self):
        """Drop all state (used by recovery before replaying logs)."""
        self._committed.clear()
        self._uncommitted.clear()
        self._writes_by_txn.clear()
        self._commit_seq = count(1)
        self._last_commit_seq = 0
