"""The multi-version key-value store used by every CC mechanism.

The store keeps, per key, the ordered chain of committed versions plus the
set of uncommitted (in-flight) versions.  CC mechanisms never mutate the
chains directly; they go through the engine, which calls
:meth:`MultiVersionStore.install`, :meth:`commit_transaction` and
:meth:`abort_transaction`.

Hot-path lookups are index-backed rather than scan-based:

* uncommitted versions are kept per key in a ``{writer_id: version}`` map,
  so :meth:`own_uncommitted` (one call per read) is O(1);
* each committed chain carries a parallel array of effective timestamps, so
  :meth:`latest_committed_before` is a :func:`bisect.bisect` while the chain
  stays timestamp-ordered (the common case — timestamps are assigned in
  commit order), with a transparent fallback to the linear scan when mixed
  CCs break monotonicity;
* each chain tracks its committed ``{writer_id: version}`` map so
  :meth:`version_by_writer` never scans;
* all of that per-key state lives on one :class:`_Chain` object, so the
  common lookups cost a single dict probe.

The store also maintains a per-table ordered key index so that range scans
(:meth:`range_keys`) are a bisect plus a slice instead of a full key sweep.
The index covers committed *and* uncommitted keys: a scan must enumerate an
in-flight insert so the per-key CC hooks (locks, snapshot visibility) can
decide what the scanning transaction observes.
"""

from bisect import bisect_left, bisect_right, insort
from itertools import count

from repro.errors import StorageError
from repro.storage.ranges import slice_sorted_pks
from repro.storage.versions import Version


class _Chain:
    """Committed-version state of one key."""

    __slots__ = ("versions", "ts", "monotone", "by_writer")

    def __init__(self):
        self.versions = []
        # Effective timestamps parallel to ``versions`` (None treated as 0.0).
        self.ts = []
        # Whether ``ts`` is nondecreasing (bisect-safe).
        self.monotone = True
        # writer_id -> committed version (last committed write wins).
        self.by_writer = {}

    def append(self, version, ts):
        ts_list = self.ts
        if ts_list and ts < ts_list[-1]:
            self.monotone = False
        self.versions.append(version)
        ts_list.append(ts)
        self.by_writer[version.writer] = version

    def replace(self, new_versions, removed, effective_ts):
        """Install a pruned version list and refresh the derived indexes."""
        self.versions = new_versions
        self.ts = [effective_ts(version) for version in new_versions]
        ts_list = self.ts
        self.monotone = all(
            ts_list[i] <= ts_list[i + 1] for i in range(len(ts_list) - 1)
        )
        by_writer = self.by_writer
        for version in removed:
            if by_writer.get(version.writer) is version:
                del by_writer[version.writer]


class MultiVersionStore:
    """In-memory multi-version storage for a Tebaldi instance."""

    def __init__(self):
        # key -> _Chain of committed versions (commit-sequence order).
        self._committed = {}
        # key -> {writer_id: uncommitted version}, insertion (install) order.
        self._uncommitted = {}
        self._writes_by_txn = {}
        self._commit_seq = count(1)
        self._last_commit_seq = 0
        # table -> (sorted pk list, pk membership set): the ordered key
        # index behind range scans.  Keys enter on first load/install and
        # leave only when an aborted insert leaves no version behind.
        self._table_index = {}
        # key -> {writer_id: seq}: pre-assigned version slots declared by a
        # sequencing CC (deterministic batch execution) before the writers
        # run.  A slot is *resolved* when the writer installs the version
        # (install pops it) and *retracted* when the writer finishes without
        # writing the key.  Declared keys join the table index immediately
        # so range scans enumerate pending inserts.
        self._slots = {}
        # writer_id -> [declared keys]: for retraction at finish.
        self._slots_by_txn = {}

    # -- ordered key index ---------------------------------------------------

    def _index_key(self, key):
        if not isinstance(key, tuple) or len(key) != 2:
            return
        table, pk = key
        entry = self._table_index.get(table)
        if entry is None:
            entry = self._table_index[table] = ([], set())
        pks, members = entry
        if pk not in members:
            members.add(pk)
            insort(pks, pk)

    def _unindex_dead_key(self, key):
        """Drop an index entry whose key has no versions left (aborted insert)."""
        if key in self._committed or key in self._uncommitted or key in self._slots:
            return
        if not isinstance(key, tuple) or len(key) != 2:
            return
        table, pk = key
        entry = self._table_index.get(table)
        if entry is None:
            return
        pks, members = entry
        if pk in members:
            members.discard(pk)
            index = bisect_left(pks, pk)
            if index < len(pks) and pks[index] == pk:
                del pks[index]

    def range_keys(self, table, lo=None, hi=None):
        """Storage keys of ``table`` with ``lo <= pk <= hi``, in key order.

        Includes keys whose only versions are uncommitted (in-flight
        inserts): scans must surface them so CC hooks can block on or
        snapshot-hide them.  Returns a fresh list — safe to iterate while
        the store mutates underneath (the scan itself may block per key).
        """
        entry = self._table_index.get(table)
        if entry is None:
            return []
        pks, _members = entry
        start, stop = slice_sorted_pks(pks, lo, hi)
        return [(table, pk) for pk in pks[start:stop]]

    # -- committed-chain bookkeeping ----------------------------------------

    @staticmethod
    def _effective_ts(version):
        return version.timestamp if version.timestamp is not None else 0.0

    def _append_committed(self, key, version):
        chain = self._committed.get(key)
        if chain is None:
            chain = self._committed[key] = _Chain()
        chain.append(version, self._effective_ts(version))

    # -- loading / reading -------------------------------------------------

    def load(self, key, value, writer=0, writer_type="loader"):
        """Install an initial committed version (database population)."""
        version = Version(key=key, value=value, writer=writer, writer_type=writer_type)
        version.mark_committed(next(self._commit_seq), timestamp=0.0)
        self._last_commit_seq = version.commit_seq
        self._append_committed(key, version)
        self._index_key(key)
        return version

    def keys(self):
        """All keys that have at least one committed version."""
        return self._committed.keys()

    def committed_versions(self, key):
        """Committed versions of ``key`` in install (commit-sequence) order."""
        chain = self._committed.get(key)
        return chain.versions if chain is not None else []

    def uncommitted_versions(self, key):
        """In-flight uncommitted versions of ``key`` (install order)."""
        per_key = self._uncommitted.get(key)
        if not per_key:
            return []
        return list(per_key.values())

    def uncommitted_map(self, key):
        """The live ``{writer_id: version}`` map of ``key`` (or ``None``).

        Hot-path variant of :meth:`uncommitted_versions` that avoids the
        list copy; callers must not mutate the store while iterating it.
        """
        return self._uncommitted.get(key)

    def latest_committed(self, key):
        """Most recently committed version of ``key`` or ``None``."""
        chain = self._committed.get(key)
        return chain.versions[-1] if chain is not None else None

    def latest_committed_before(self, key, timestamp, strict=True):
        """Latest committed version with CC timestamp below ``timestamp``.

        Used by snapshot reads (SSI) and timestamp-ordering reads (TSO).
        Versions without a timestamp (written under single-version CCs) fall
        back to treating their commit as happening at timestamp 0, i.e. they
        are visible to every snapshot.
        """
        chain = self._committed.get(key)
        if chain is None:
            return None
        ts_list = chain.ts
        if chain.monotone:
            # Timestamps are assigned in commit order, so the chain is
            # timestamp-ordered and the newest visible version is the one
            # just left of the bisection point.
            if strict:
                index = bisect_left(ts_list, timestamp)
            else:
                index = bisect_right(ts_list, timestamp)
            return chain.versions[index - 1] if index else None
        # Mixed-CC chain (out-of-order timestamps): scan backwards and stop
        # at the first visible version, exactly as before the index rewrite.
        versions = chain.versions
        for index in range(len(versions) - 1, -1, -1):
            ts = ts_list[index]
            if ts < timestamp if strict else ts <= timestamp:
                return versions[index]
        return None

    def own_uncommitted(self, key, txn_id):
        """The uncommitted version of ``key`` written by ``txn_id``, if any."""
        per_key = self._uncommitted.get(key)
        if per_key is None:
            return None
        return per_key.get(txn_id)

    def version_by_writer(self, key, txn_id):
        """The (committed or uncommitted) version of ``key`` written by a txn."""
        per_key = self._uncommitted.get(key)
        if per_key is not None:
            version = per_key.get(txn_id)
            if version is not None:
                return version
        chain = self._committed.get(key)
        if chain is not None:
            return chain.by_writer.get(txn_id)
        return None

    def last_commit_seq(self):
        """Commit sequence number of the most recent commit."""
        return self._last_commit_seq

    # -- pre-assigned version slots (deterministic batch execution) -----------

    def declare_slots(self, txn_id, seq, keys):
        """Pre-assign version slots for a sequenced transaction.

        Called once per transaction when its batch seals: every declared
        write key gets a slot carrying the transaction's position ``seq`` in
        the batch total order.  Readers sequenced after ``seq`` wait until
        the slot resolves (the version is installed) or is retracted; the
        keys join the table index immediately so range scans enumerate
        pending inserts before the writer has executed.
        """
        recorded = self._slots_by_txn.get(txn_id)
        if recorded is None:
            recorded = self._slots_by_txn[txn_id] = []
        for key in keys:
            per_key = self._slots.get(key)
            if per_key is None:
                per_key = self._slots[key] = {}
            per_key[txn_id] = seq
            recorded.append(key)
            self._index_key(key)

    def slot_writers(self, key):
        """Live ``{writer_id: seq}`` of unresolved pre-assigned slots (or None)."""
        return self._slots.get(key)

    def unresolved_slots_of(self, txn_id):
        """Declared keys of ``txn_id`` whose slots are still unresolved."""
        keys = self._slots_by_txn.get(txn_id)
        if not keys:
            return []
        slots = self._slots
        return [key for key in keys if txn_id in slots.get(key, ())]

    def retract_slots(self, txn_id):
        """Drop the remaining unresolved slots of a finished transaction."""
        keys = self._slots_by_txn.pop(txn_id, None)
        if not keys:
            return 0
        removed = 0
        for key in keys:
            per_key = self._slots.get(key)
            if per_key is not None and per_key.pop(txn_id, None) is not None:
                removed += 1
                if not per_key:
                    del self._slots[key]
                    self._unindex_dead_key(key)
        return removed

    # -- writing -------------------------------------------------------------

    def install(self, key, value, txn):
        """Install an uncommitted version written by ``txn``.

        A transaction that writes the same key twice overwrites its own
        uncommitted version (the intermediate value is superseded, matching
        the buffered-writes model of the paper).
        """
        txn_id = txn.txn_id
        per_key = self._uncommitted.get(key)
        if per_key is None:
            per_key = self._uncommitted[key] = {}
            if key not in self._committed:
                # A brand-new key: make it scannable immediately so range
                # reads enumerate the in-flight insert (and block on it).
                self._index_key(key)
        else:
            own = per_key.get(txn_id)
            if own is not None:
                own.value = value
                return own
        version = Version(
            key=key,
            value=value,
            writer=txn_id,
            writer_type=txn.txn_type,
            epoch=txn.gc_epoch,
            timestamp=txn.cc_timestamp,
            start_timestamp=txn.start_timestamp,
        )
        per_key[txn_id] = version
        if self._slots:
            # Installing the version resolves the writer's pre-assigned slot.
            slot_map = self._slots.get(key)
            if slot_map is not None and slot_map.pop(txn_id, None) is not None:
                if not slot_map:
                    del self._slots[key]
        writes = self._writes_by_txn.get(txn_id)
        if writes is None:
            writes = self._writes_by_txn[txn_id] = []
        writes.append(version)
        return version

    def commit_transaction(self, txn, timestamp=None):
        """Move every uncommitted version of ``txn`` to the committed chains.

        Returns the list of committed versions.  The global commit sequence
        defines the total order of versions per object.
        """
        versions = self._writes_by_txn.pop(txn.txn_id, [])
        uncommitted = self._uncommitted
        committed_chains = self._committed
        seq = self._last_commit_seq
        for version in versions:
            seq = next(self._commit_seq)
            # Inlined mark_committed / _append_committed (hot commit loop).
            version.committed = True
            version.commit_seq = seq
            if timestamp is not None:
                version.timestamp = timestamp
            key = version.key
            per_key = uncommitted.get(key)
            if per_key is not None:
                per_key.pop(version.writer, None)
                if not per_key:
                    del uncommitted[key]
            chain = committed_chains.get(key)
            if chain is None:
                chain = committed_chains[key] = _Chain()
            ts = version.timestamp
            ts = ts if ts is not None else 0.0
            ts_list = chain.ts
            if ts_list and ts < ts_list[-1]:
                chain.monotone = False
            chain.versions.append(version)
            ts_list.append(ts)
            chain.by_writer[version.writer] = version
        self._last_commit_seq = seq
        if self._slots_by_txn:
            # Declared-but-unwritten keys (conditional writes) release their
            # slots at commit so sequenced readers stop waiting.
            self.retract_slots(txn.txn_id)
        return versions

    def abort_transaction(self, txn):
        """Discard every uncommitted version written by ``txn``."""
        if self._slots_by_txn:
            self.retract_slots(txn.txn_id)
        versions = self._writes_by_txn.pop(txn.txn_id, [])
        for version in versions:
            per_key = self._uncommitted.get(version.key)
            if per_key is not None:
                per_key.pop(version.writer, None)
                if not per_key:
                    del self._uncommitted[version.key]
                    self._unindex_dead_key(version.key)
        return len(versions)

    def writes_of(self, txn_id):
        """Uncommitted versions currently installed by ``txn_id``."""
        return list(self._writes_by_txn.get(txn_id, []))

    # -- garbage collection ---------------------------------------------------

    def prune(self, key, keep_last=1):
        """Drop all but the last ``keep_last`` committed versions of ``key``."""
        if keep_last < 1:
            raise StorageError("prune() must keep at least one version")
        chain = self._committed.get(key)
        if chain is None or len(chain.versions) <= keep_last:
            return 0
        removed = chain.versions[:-keep_last]
        chain.replace(chain.versions[-keep_last:], removed, self._effective_ts)
        return len(removed)

    def prune_epochs(self, max_epoch, keep_last=1):
        """Drop committed versions from GC epochs ``<= max_epoch``.

        The newest committed version of each key is always retained so that
        future readers observe the current database state.
        """
        removed = 0
        for chain in self._committed.values():
            versions = chain.versions
            if len(versions) <= keep_last:
                continue
            head = [v for v in versions[:-keep_last] if v.epoch > max_epoch]
            if len(head) + keep_last == len(versions):
                continue
            dropped = [v for v in versions[:-keep_last] if v.epoch <= max_epoch]
            chain.replace(head + versions[-keep_last:], dropped, self._effective_ts)
            removed += len(dropped)
        return removed

    def version_count(self):
        """Total number of committed versions currently retained."""
        return sum(len(chain.versions) for chain in self._committed.values())

    # -- snapshot / recovery helpers -------------------------------------------

    def restore_version(self, key, value, writer, writer_type="recovered",
                        commit_seq=None):
        """Install a committed version rebuilt from the durable log.

        Used by crash recovery after re-populating the initial load: the
        surviving transactions' final writes are appended with their
        original commit sequence (so the cross-crash version order is
        preserved) and timestamp 0.0 (visible to every snapshot, like
        loaded data).  ``commit_seq`` defaults to the next sequence.
        """
        if commit_seq is None:
            commit_seq = next(self._commit_seq)
        version = Version(key=key, value=value, writer=writer,
                          writer_type=writer_type)
        version.mark_committed(commit_seq, timestamp=0.0)
        if commit_seq > self._last_commit_seq:
            self._last_commit_seq = commit_seq
        self._append_committed(key, version)
        self._index_key(key)
        return version

    def advance_commit_seq(self, floor):
        """Fast-forward the commit-sequence counter past ``floor``.

        After recovery the rebuilt store must hand out sequences strictly
        above every pre-crash sequence, so the stitched cross-crash history
        keeps one total version order per key.
        """
        if floor > self._last_commit_seq:
            self._last_commit_seq = floor
        self._commit_seq = count(self._last_commit_seq + 1)

    def latest_state(self):
        """Map of key -> value of the latest committed version (for recovery)."""
        return {
            key: chain.versions[-1].value
            for key, chain in self._committed.items()
            if chain.versions
        }

    def clear(self):
        """Drop all state (used by recovery before replaying logs)."""
        self._committed.clear()
        self._uncommitted.clear()
        self._writes_by_txn.clear()
        self._table_index.clear()
        self._slots.clear()
        self._slots_by_txn.clear()
        self._commit_seq = count(1)
        self._last_commit_seq = 0
