"""Persistent key-value backends used by the durability module.

The paper outsources persistence to an off-the-shelf key-value store (Redis or
RocksDB); the only requirement is a durable PUT/GET interface (Section 4.5.4).
This module provides two substitutes with the same interface:

* :class:`InMemoryBackend` — a dictionary, useful for tests that need to
  inspect what was "persisted" without touching the filesystem.
* :class:`FileBackend` — an append-only log file with an in-memory index,
  the closest laptop-scale equivalent of a log-structured store.
"""

import json
import os


class InMemoryBackend:
    """Dictionary-backed 'persistent' store (survives engine restarts only)."""

    def __init__(self):
        self._data = {}
        self.put_count = 0

    def put(self, key, value):
        self._data[key] = value
        self.put_count += 1

    def get(self, key, default=None):
        return self._data.get(key, default)

    def scan(self, prefix=""):
        """All (key, value) pairs whose key starts with ``prefix``."""
        return [(k, v) for k, v in self._data.items() if k.startswith(prefix)]

    def delete(self, key):
        self._data.pop(key, None)

    def close(self):
        """No resources to release for the in-memory backend."""

    def __len__(self):
        return len(self._data)


class FileBackend:
    """Append-only JSON-lines file with an in-memory index.

    Every :meth:`put` appends one line ``{"k": ..., "v": ...}``; on open the
    file is replayed to rebuild the index, so the latest value per key wins.
    """

    def __init__(self, path):
        self.path = path
        self._index = {}
        self.put_count = 0
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if os.path.exists(path):
            self._replay()
        self._file = open(path, "a", encoding="utf-8")

    def _replay(self):
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                self._index[record["k"]] = record["v"]

    def put(self, key, value):
        record = json.dumps({"k": key, "v": value}, default=str)
        self._file.write(record + "\n")
        self._file.flush()
        self._index[key] = value
        self.put_count += 1

    def get(self, key, default=None):
        return self._index.get(key, default)

    def scan(self, prefix=""):
        return [(k, v) for k, v in self._index.items() if k.startswith(prefix)]

    def delete(self, key):
        self._index.pop(key, None)

    def close(self):
        self._file.close()

    def __len__(self):
        return len(self._index)
