"""Table abstraction over the key-value store.

Tebaldi is a transactional key-value store with support for tables and
variable-sized columns (Section 4.5).  Rows are dictionaries; the storage key
of a row is ``(table_name, primary_key_tuple)``.  Secondary indexes are plain
tables whose rows hold the primary key of the indexed row, mirroring how the
paper adapts TPC-C and SEATS to the key-value interface.
"""

from dataclasses import dataclass, field


def composite_key(table, *parts):
    """Build the storage key for a row of ``table`` with primary key ``parts``."""
    if len(parts) == 1:
        return (table, parts[0])
    return (table, tuple(parts))


@dataclass(frozen=True)
class TableSchema:
    """Static description of a table: name, key columns and value columns."""

    name: str
    key_columns: tuple
    value_columns: tuple = ()
    description: str = ""

    def key_for(self, *parts):
        if len(parts) != len(self.key_columns):
            raise ValueError(
                f"table {self.name!r} expects {len(self.key_columns)} key parts, "
                f"got {len(parts)}"
            )
        return composite_key(self.name, *parts)


@dataclass
class Table:
    """Convenience wrapper binding a schema to loader-time population."""

    schema: TableSchema
    rows: dict = field(default_factory=dict)

    @property
    def name(self):
        return self.schema.name

    def insert(self, key_parts, row):
        """Record a row to be loaded into the store at population time."""
        key = self.schema.key_for(*key_parts)
        self.rows[key] = dict(row)
        return key

    def load_into(self, store):
        """Install every staged row as an initial committed version."""
        for key, row in self.rows.items():
            store.load(key, dict(row))
        return len(self.rows)


class Catalog:
    """A named collection of tables (one per workload)."""

    def __init__(self, tables=()):
        self._tables = {}
        for table in tables:
            self.add(table)

    def add(self, table):
        self._tables[table.name] = table
        return table

    def __getitem__(self, name):
        return self._tables[name]

    def __contains__(self, name):
        return name in self._tables

    def __iter__(self):
        return iter(self._tables.values())

    def table_names(self):
        return list(self._tables)

    def load_into(self, store):
        """Load every table into ``store``; returns total rows loaded."""
        return sum(table.load_into(store) for table in self._tables.values())
