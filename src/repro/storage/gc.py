"""Epoch-based garbage collection of stale versions (Section 4.5.3).

Tebaldi assigns a GC epoch id to every transaction and periodically advances
the epoch.  Once every transaction of an epoch has finished and every CC node
confirms that it will never order an ongoing or future transaction before a
transaction of that epoch, all superseded versions of the epoch are pruned.
"""

from collections import defaultdict


class GarbageCollector:
    """Tracks GC epochs and prunes superseded committed versions."""

    def __init__(self, store, epoch_length=1.0):
        self.store = store
        self.epoch_length = epoch_length
        self._current_epoch = 1
        self._active = defaultdict(int)
        self._finished_epochs = set()
        # Highest epoch whose versions have been pruned; collection only ever
        # extends the contiguous confirmed prefix above this point.
        self._collected_through = 0
        self._collected_versions = 0
        self._collections = 0
        self._paused = False

    @property
    def current_epoch(self):
        return self._current_epoch

    @property
    def collected_versions(self):
        return self._collected_versions

    def pause(self):
        """Stop collecting (used by the reconfiguration clean-up phase)."""
        self._paused = True

    def resume(self):
        self._paused = False

    def register_transaction(self, txn):
        """Assign the current epoch to a starting transaction."""
        txn.gc_epoch = self._current_epoch
        self._active[txn.gc_epoch] += 1
        return txn.gc_epoch

    def finish_transaction(self, txn):
        """Mark a transaction as finished (committed or aborted).

        Idempotent per transaction: abort-during-commit cleanup paths may
        reach this twice, and a double decrement would drive the epoch's
        active count negative — retiring an epoch that still has live
        transactions.
        """
        if txn.gc_finished:
            return
        txn.gc_finished = True
        epoch = txn.gc_epoch
        remaining = self._active[epoch] - 1
        assert remaining >= 0, (
            f"GC epoch {epoch} active count went negative "
            f"(finish without register for txn {txn.txn_id})"
        )
        self._active[epoch] = remaining
        if remaining <= 0 and epoch < self._current_epoch:
            self._finished_epochs.add(epoch)
            del self._active[epoch]

    def advance_epoch(self):
        """Close the current epoch and open a new one."""
        closing = self._current_epoch
        self._current_epoch += 1
        if self._active.get(closing, 0) <= 0:
            self._finished_epochs.add(closing)
            self._active.pop(closing, None)
        return self._current_epoch

    def collect(self, cc_nodes=()):
        """Prune versions of fully-finished epochs once every CC confirms.

        ``cc_nodes`` is the list of CC mechanisms in the active tree; each is
        asked (via ``can_garbage_collect(epoch)``) to confirm that no ongoing
        or future transaction can be ordered before the epoch's transactions.
        """
        if self._paused or not self._finished_epochs:
            return 0
        # ``prune_epochs(max_epoch)`` drops *every* superseded version up to
        # ``max_epoch``, so only the contiguous confirmed prefix of finished
        # epochs may be collected: skipping over an unfinished or unconfirmed
        # epoch would silently drop versions that transactions of that epoch
        # (or snapshot readers ordered before them) still need.
        prefix = []
        expected = self._collected_through + 1
        for epoch in sorted(self._finished_epochs):
            if epoch != expected:
                break
            if not all(node.can_garbage_collect(epoch) for node in cc_nodes):
                break
            prefix.append(epoch)
            expected += 1
        if not prefix:
            return 0
        max_epoch = prefix[-1]
        removed = self.store.prune_epochs(max_epoch)
        self._finished_epochs.difference_update(prefix)
        self._collected_through = max_epoch
        self._collected_versions += removed
        self._collections += 1
        return removed

    def run(self, env, cc_nodes_provider, stop_event=None):
        """Background GC process: advance the epoch and collect periodically."""
        while stop_event is None or not stop_event.triggered:
            yield env.timeout(self.epoch_length)
            self.advance_epoch()
            self.collect(cc_nodes_provider())
