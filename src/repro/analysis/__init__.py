"""Static analysis utilities: transaction profiles, runtime-pipelining
analysis and transaction chopping (SC-graph) analysis."""

from repro.analysis.profiles import TransactionProfile, TransactionType
from repro.analysis.rp_analysis import RPAnalysis, analyze_pipeline
from repro.analysis.chopping import SCGraph, check_choppable

__all__ = [
    "TransactionProfile",
    "TransactionType",
    "RPAnalysis",
    "analyze_pipeline",
    "SCGraph",
    "check_choppable",
]
