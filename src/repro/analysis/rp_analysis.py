"""Static analysis for runtime pipelining (Section 4.4.2).

RP builds a directed graph of tables whose edges follow the access order of
the transactions in the group, condenses strongly connected components and
topologically sorts them: each condensed component becomes one pipeline
*step*.  Circular table dependencies (e.g. TPC-C ``new_order`` together with
``stock_level``) merge tables into a single coarse step, which is exactly why
grouping choices matter so much in the paper's evaluation.
"""

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import AnalysisError


@dataclass
class RPAnalysis:
    """Result of the runtime-pipelining static analysis for one group."""

    steps: list = field(default_factory=list)
    table_to_step: dict = field(default_factory=dict)
    merged_components: list = field(default_factory=list)

    @property
    def num_steps(self):
        return len(self.steps)

    def step_of(self, table):
        """Pipeline step index of ``table`` (unknown tables map to the last step)."""
        if table in self.table_to_step:
            return self.table_to_step[table]
        return max(len(self.steps) - 1, 0)

    @property
    def pipeline_efficiency(self):
        """Fraction of tables that got their own step (1.0 = finest pipeline)."""
        if not self.table_to_step:
            return 1.0
        return self.num_steps / len(self.table_to_step)

    def describe(self):
        lines = [f"runtime pipeline with {self.num_steps} steps"]
        for index, tables in enumerate(self.steps):
            lines.append(f"  step {index}: {', '.join(sorted(tables))}")
        return "\n".join(lines)


def analyze_pipeline(profiles):
    """Compute the pipeline steps for a group of transaction profiles.

    Parameters
    ----------
    profiles:
        Iterable of :class:`~repro.analysis.profiles.TransactionProfile`.

    Returns
    -------
    RPAnalysis
    """
    profiles = list(profiles)
    if not profiles:
        raise AnalysisError("runtime pipelining needs at least one profile")
    graph = nx.DiGraph()
    positions = {}
    for profile in profiles:
        for table, position in profile.table_positions().items():
            graph.add_node(table)
            positions.setdefault(table, []).append(position)
        for earlier, later in profile.access_pairs():
            if earlier != later:
                graph.add_edge(earlier, later)
    condensation = nx.condensation(graph)

    def _component_key(component_id):
        members = condensation.nodes[component_id]["members"]
        scores = [sum(positions[t]) / len(positions[t]) for t in members]
        return sum(scores) / len(scores)

    # Topological order with positional tie-breaking: among unordered tables,
    # prefer the ones transactions access earlier, so that a table touched
    # only at the tail of some transaction (e.g. TPC-C history) does not land
    # in the middle of the pipeline and stall dependents needlessly.
    order = list(nx.lexicographical_topological_sort(condensation, key=_component_key))
    steps = []
    merged = []
    for component_id in order:
        tables = frozenset(condensation.nodes[component_id]["members"])
        steps.append(tables)
        if len(tables) > 1:
            merged.append(tables)
    table_to_step = {}
    for index, tables in enumerate(steps):
        for table in tables:
            table_to_step[table] = index
    return RPAnalysis(steps=steps, table_to_step=table_to_step, merged_components=merged)
