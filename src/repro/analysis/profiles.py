"""Static transaction profiles.

CC mechanisms that rely on static analysis (runtime pipelining, transaction
chopping) and preprocessing (TSO promises) need a static description of each
transaction type: the ordered sequence of table accesses and whether the
transaction is read-only.  Workloads declare one
:class:`TransactionProfile` per stored procedure; this mirrors the paper's
requirement that such transactions be implemented as stored procedures
(Section 5.4.2).
"""

from dataclasses import dataclass, field
from typing import Callable, Optional

READ = "r"
WRITE = "w"


@dataclass(frozen=True)
class TransactionProfile:
    """Static description of one transaction type.

    ``accesses`` is the ordered tuple of ``(table, mode)`` pairs the
    transaction performs, where mode is ``"r"`` or ``"w"``.  Repeated
    accesses to the same table may be collapsed; order is what matters for
    runtime pipelining.
    """

    name: str
    accesses: tuple = ()
    read_only: bool = False
    promise_keys: Optional[Callable] = None
    #: ``args -> iterable of (table, lo, hi)``: the range predicates the
    #: transaction's scans may touch, declarable from the arguments alone.
    #: Used by mechanisms that pre-declare access sets (deterministic batch
    #: execution builds its dependency graph from declared write keys and
    #: declared scan ranges); ``None`` means the type declares no ranges.
    scan_ranges: Optional[Callable] = None
    description: str = ""

    def tables(self):
        """Tables touched, in first-access order."""
        seen = []
        for table, _mode in self.accesses:
            if table not in seen:
                seen.append(table)
        return seen

    def write_tables(self):
        return [table for table, mode in self.accesses if mode == WRITE]

    def read_tables(self):
        return [table for table, mode in self.accesses if mode == READ]

    def access_pairs(self):
        """Ordered (earlier_table, later_table) pairs implied by the profile.

        Two kinds of edges are produced for the runtime-pipelining analysis:
        the total order given by first-access positions, and adjacency edges
        over the *full* access sequence.  A transaction that loops back to an
        earlier table (delivery, stock_level, hot_item) therefore contributes
        a cycle, which correctly forces those tables into one merged step.
        """
        tables = self.tables()
        pairs = []
        for i, earlier in enumerate(tables):
            for later in tables[i + 1:]:
                pairs.append((earlier, later))
        previous = None
        for table, _mode in self.accesses:
            if previous is not None and table != previous:
                pairs.append((previous, table))
            previous = table
        return pairs

    def table_positions(self):
        """Normalised first-access position of each table (0 = first, 1 = last)."""
        tables = self.tables()
        if len(tables) <= 1:
            return {table: 0.0 for table in tables}
        return {
            table: index / (len(tables) - 1) for index, table in enumerate(tables)
        }


@dataclass
class TransactionType:
    """A registered transaction type: procedure plus static profile."""

    name: str
    procedure: Callable
    profile: TransactionProfile
    weight: float = 1.0
    params: dict = field(default_factory=dict)

    @property
    def read_only(self):
        return self.profile.read_only

    def __post_init__(self):
        if self.profile.name != self.name:
            raise ValueError(
                f"profile name {self.profile.name!r} does not match "
                f"transaction type {self.name!r}"
            )
