"""Transaction chopping analysis (SC-graph, Section 2.3.1).

Transaction chopping splits transactions into pieces; the chopping is valid
only when the SC-graph — sibling (S) edges chaining the pieces of one
transaction, conflict (C) edges connecting pieces of different transactions
that may conflict — contains no cycle with both an S and a C edge.

Tebaldi itself uses runtime pipelining rather than chopping, but the analysis
is part of the MCC toolbox (Callas supported it as an in-group mechanism) and
the optimizer uses :func:`check_choppable` as one of its CC-specific filters.
"""

from dataclasses import dataclass, field

import networkx as nx


@dataclass
class SCGraph:
    """The sibling/conflict graph over transaction pieces."""

    graph: nx.Graph = field(default_factory=nx.Graph)

    def add_piece(self, txn_name, piece_index, tables):
        node = (txn_name, piece_index)
        self.graph.add_node(node, tables=frozenset(tables))
        return node

    def build_edges(self):
        """Add S edges between sibling pieces and C edges between conflicting ones."""
        nodes = list(self.graph.nodes(data=True))
        for i, (node_a, data_a) in enumerate(nodes):
            for node_b, data_b in nodes[i + 1:]:
                if node_a[0] == node_b[0]:
                    if abs(node_a[1] - node_b[1]) == 1:
                        self.graph.add_edge(node_a, node_b, kind="S")
                elif data_a["tables"] & data_b["tables"]:
                    self.graph.add_edge(node_a, node_b, kind="C")

    def has_sc_cycle(self):
        """True if some cycle mixes S and C edges (chopping invalid)."""
        for cycle in nx.cycle_basis(self.graph):
            kinds = set()
            for i, node in enumerate(cycle):
                nxt = cycle[(i + 1) % len(cycle)]
                kinds.add(self.graph.edges[node, nxt]["kind"])
            if "S" in kinds and "C" in kinds:
                return True
        return False


def check_choppable(profiles, pieces_per_transaction=None):
    """Check whether the given transaction profiles admit a chopping.

    Each profile is chopped into one piece per table access by default (the
    finest chopping); ``pieces_per_transaction`` can override the piece count.
    Returns ``(choppable, sc_graph)``.
    """
    sc_graph = SCGraph()
    for profile in profiles:
        tables = profile.tables()
        if pieces_per_transaction:
            pieces = pieces_per_transaction.get(profile.name, len(tables))
        else:
            pieces = len(tables)
        pieces = max(pieces, 1)
        chunk = max(len(tables) // pieces, 1)
        for index in range(pieces):
            chunk_tables = tables[index * chunk:(index + 1) * chunk] or tables[-1:]
            sc_graph.add_piece(profile.name, index, chunk_tables)
    sc_graph.build_edges()
    return not sc_graph.has_sc_cycle(), sc_graph
