"""Exception hierarchy shared across the Tebaldi reproduction."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class TransactionAborted(ReproError):
    """Raised inside a transaction coroutine when the engine aborts it.

    The client harness catches this exception, optionally backs off and
    retries the transaction.  ``reason`` is a short machine-readable tag used
    by the statistics module (e.g. ``"ww-conflict"``, ``"deadlock-timeout"``,
    ``"pivot"``).
    """

    def __init__(self, txn_id, reason=""):
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class ConfigurationError(ReproError):
    """Raised when a CC-tree configuration is malformed or unsupported."""


class StorageError(ReproError):
    """Raised on invalid storage-module operations."""


class RecoveryError(ReproError):
    """Raised when the recovery protocol encounters inconsistent logs."""


class SimulationError(ReproError):
    """Raised on misuse of the discrete-event simulation kernel."""


class AnalysisError(ReproError):
    """Raised when a static-analysis precondition is violated."""


class IsolationViolation(ReproError):
    """Raised by the isolation checker when a committed history is invalid."""


class ReconfigurationError(ReproError):
    """Raised when an online reconfiguration cannot be applied."""
