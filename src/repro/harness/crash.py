"""Crash/recovery harness: run a workload, crash it, recover it, and check
the *stitched* pre-crash + post-recovery history as one.

The run proceeds in incarnations.  Each incarnation builds a fresh
environment and engine over the shared :class:`DurabilityManager` (whose
persistent backends survive crashes) and drives closed-loop clients until
either the measurement horizon or the armed crash event fires.  On a crash
the harness:

1. snapshots what the dying incarnation believed (committed ids, commit
   sequences, in-flight count), then drops the volatile durability state
   (:meth:`DurabilityManager.crash`) and replays the persistent logs
   (:meth:`DurabilityManager.recover`);
2. classifies every transaction: *survivors* were durable, *vanished* ones
   committed in memory but were not durable (recovery discarded them),
   *ghosts* were durable but never acknowledged (crash between precommit
   and commit);
3. rebuilds the store — initial population re-loaded, then every surviving
   write restored with its **original** commit sequence (the recorder's
   never-evicted version orders are the authority), ghosts with fresh
   sequences — and fast-forwards the sequence counter past everything
   pre-crash, so every cross-crash dependency edge points forward;
4. stitches the history: the recorder purges vanished transactions
   (:meth:`HistoryRecorder.on_crash` — they must leave *no trace*) and
   registers ghost survivors (:meth:`HistoryRecorder.on_recovered`);
5. checkpoints the recovery into the durable logs (so discarded epochs can
   never resurrect at a later crash) and resumes the workload in a new
   incarnation with continued transaction ids.

One recorder spans every incarnation, so the final
:func:`~repro.isolation.checker.check_recorder` verdict covers the whole
run — the combined DSG must stay anomaly-free, committed-and-durable
transactions' writes must survive, vanished ones must leave no trace.

Everything is derived from the run seed (fault schedule, per-incarnation
client RNGs, server partitioning), so a failing run reproduces
byte-identically.
"""

from dataclasses import dataclass, field

from repro.core.engine import EngineOptions, TebaldiEngine
from repro.errors import TransactionAborted
from repro.harness.parallel import derive_point_seed
from repro.isolation.checker import check_recorder
from repro.isolation.history import HistoryRecorder
from repro.sim.environment import Environment
from repro.sim.events import any_of
from repro.sim.faults import FaultInjector, FaultPlan
from repro.storage.durability import DurabilityConfig, DurabilityManager
from repro.storage.mvstore import MultiVersionStore


def default_crash_durability(asynchronous=True):
    """Durability settings used by crash-enabled cells: short GCP epochs so
    epoch-boundary crash sites are reachable in sub-second runs."""
    return DurabilityConfig(
        enabled=True,
        asynchronous=asynchronous,
        gcp_epoch_length=0.01,
        num_servers=4,
    )


@dataclass
class CrashReport:
    """What one simulated crash did to the run."""

    time: float
    site: str
    occurrence: int
    committed_before: int
    in_flight: int
    vanished: tuple
    recovered: tuple
    ghosts: tuple

    def describe(self):
        return (
            f"crash@{self.time:.4f}s at {self.site}#{self.occurrence}: "
            f"{len(self.recovered)} recovered, {len(self.vanished)} vanished, "
            f"{len(self.ghosts)} ghost(s), {self.in_flight} in flight"
        )


@dataclass
class CrashRunResult:
    """Outcome of one crash-enabled checked run."""

    configuration: str
    clients: int
    duration: float
    commits: int
    aborts: int
    throughput: float
    crashes: list = field(default_factory=list)
    incarnations: int = 1
    extra: dict = field(default_factory=dict)

    def __repr__(self):
        return (
            f"<CrashRunResult {self.configuration} clients={self.clients} "
            f"commits={self.commits} crashes={len(self.crashes)}>"
        )


def exactly_once_violations(history, txn_type="dequeue", table="messages"):
    """Keys of ``table`` consumed by more than one committed ``txn_type``.

    The queue workload's flagship invariant: across crashes, every message
    is dequeued at most once by transactions that *survived* (a vanished
    consumer's dequeue does not count — its effects were never durable and
    the stitched history erases it).  Returns ``{key: [txn ids]}`` for
    every violating key.
    """
    consumers = {}
    for txn in history.transactions.values():
        if txn.txn_type != txn_type:
            continue
        for key, _seq in txn.writes:
            if isinstance(key, tuple) and key[0] == table:
                consumers.setdefault(key, []).append(txn.txn_id)
    return {key: ids for key, ids in consumers.items() if len(ids) > 1}


class CrashRecoveryRunner:
    """Drives a workload through seeded crashes with the oracle attached."""

    def __init__(
        self,
        workload,
        configuration,
        seed=7,
        options=None,
        fault_plan=None,
        durability=None,
        isolation_level="serializable",
        history_window=None,
    ):
        self.workload = workload
        self.configuration = configuration
        self.seed = seed
        self.options = options or EngineOptions()
        self.durability_config = durability or default_crash_durability()
        self.plan = (
            fault_plan
            if fault_plan is not None
            else FaultPlan.from_seed(seed)
        )
        self.injector = FaultInjector(self.plan)
        self.isolation_level = isolation_level
        self.recorder = HistoryRecorder(
            max_transactions=history_window, level=isolation_level
        )
        self.crashes = []
        # Ids that ever committed in memory (any incarnation) or were
        # resurrected as ghosts: distinguishes ghosts from known survivors
        # when classifying a recovery.
        self._known_committed = set()

    # -- client processes ---------------------------------------------------

    def _client(self, env, engine, stop_event, rng, mix, client_id):
        backoff = self.options.retry_backoff
        while not stop_event.triggered:
            txn_type, args = self.workload.next_transaction(rng, mix)
            attempts = 0
            while not stop_event.triggered:
                attempts += 1
                try:
                    yield from engine.execute_transaction(txn_type, args, client_id)
                    break
                except TransactionAborted:
                    engine.stats.record_retry(None)
                    if backoff > 0:
                        delay = min(backoff * (2 ** min(attempts - 1, 5)), 0.1)
                        yield env.timeout(delay)

    def _spawn_incarnation(self, env, store, manager, txn_id_start, clients,
                           incarnation):
        engine = TebaldiEngine(
            env,
            self.configuration,
            self.workload.transaction_types(),
            store=store,
            options=self.options,
            durability=manager,
            txn_id_start=txn_id_start,
        )
        engine.history_recorder = self.recorder
        stop_event = env.event(name=f"stop-{incarnation}")
        engine.start_services(stop_event)
        mix = self.workload.validate_mix(self.workload.mix())
        for client_id in range(clients):
            rng = self.workload.make_rng(
                derive_point_seed(self.seed, "crash-client", incarnation, client_id)
            )
            env.process(
                self._client(env, engine, stop_event, rng, mix, client_id),
                name=f"client-{incarnation}-{client_id}",
            )
        return engine

    # -- crash handling -----------------------------------------------------

    def _crash_and_recover(self, engine, store, manager):
        """Recover the durable state and stitch the history across the crash.

        Returns the rebuilt store for the next incarnation.
        """
        recorder = self.recorder
        info = self.injector.crash_info or {}
        crash_time = engine.env.now
        committed_here = set(engine.committed_ids)
        last_seq = store.last_commit_seq()
        manager.crash()
        recovery = manager.recover()
        recovered = set(recovery.recovered_transactions)
        vanished = committed_here - recovered
        ghosts = recovered - self._known_committed - committed_here
        recorder.on_crash(vanished)
        self._known_committed |= committed_here - vanished

        # Rebuild committed state: deterministic re-population (the catalog
        # rows are immutable, so the initial versions reproduce exactly),
        # then the surviving writes on top with their original sequences.
        new_store = MultiVersionStore()
        self.workload.populate(new_store)
        next_fresh_seq = last_seq
        restored = []
        for key in sorted(recovery.state, key=repr):
            writer = recovery.state_writers.get(key, 0)
            if writer == 0:
                continue
            seq = recorder.seq_of(key, writer)
            if seq is None:
                # A ghost's write: it never committed in memory, so the
                # recorder has no sequence for it — append it after every
                # pre-crash version.
                next_fresh_seq += 1
                seq = next_fresh_seq
            restored.append((seq, key, recovery.state[key], writer))
        restored.sort(key=lambda entry: (entry[0], repr(entry[1])))
        ghost_versions = {}
        for seq, key, value, writer in restored:
            version = new_store.restore_version(key, value, writer, commit_seq=seq)
            if writer in ghosts:
                ghost_versions.setdefault(writer, []).append(version)
        new_store.advance_commit_seq(max(last_seq, next_fresh_seq))
        for ghost in sorted(ghosts):
            recorder.on_recovered(
                ghost, ghost_versions.get(ghost, []), now=crash_time
            )
            self._known_committed.add(ghost)

        # Checkpoint: wipe the logs and persist the recovered state as the
        # next incarnation's base, so a discarded epoch's records cannot
        # resurrect at the next recovery.
        manager.checkpoint(recovery)
        self.crashes.append(
            CrashReport(
                time=crash_time,
                site=info.get("site", "?"),
                occurrence=info.get("occurrence", 0),
                committed_before=len(committed_here),
                in_flight=len(engine.active),
                vanished=tuple(sorted(vanished)),
                recovered=tuple(sorted(recovered)),
                ghosts=tuple(sorted(ghosts)),
            )
        )
        return new_store

    # -- measurement --------------------------------------------------------

    def run(self, clients, duration=1.0, raise_on_violation=True):
        """Run the workload across the planned crashes and check the whole
        stitched history against the isolation oracle."""
        manager = DurabilityManager(self.durability_config)
        manager.faults = self.injector
        store = MultiVersionStore()
        self.workload.populate(store)
        env = Environment()
        txn_id_start = 1
        incarnation = 0
        commits = aborts = 0
        while True:
            engine = self._spawn_incarnation(
                env, store, manager, txn_id_start, clients, incarnation
            )
            crash_event = self.injector.arm(env)
            horizon = env.timeout(duration - env.now)
            env.run(until=any_of(env, [crash_event, horizon]))
            summary = engine.stats.summary()
            commits += summary["commits"]
            aborts += summary["aborts"]
            if not self.injector.crashed:
                break
            store = self._crash_and_recover(engine, store, manager)
            txn_id_start = next(engine._txn_ids)
            env = Environment(initial_time=engine.env.now)
            incarnation += 1
            if env.now >= duration:
                break
        report = check_recorder(self.recorder, level=self.isolation_level)
        result = CrashRunResult(
            configuration=self.configuration.name,
            clients=clients,
            duration=duration,
            commits=commits,
            aborts=aborts,
            throughput=commits / duration if duration > 0 else 0.0,
            crashes=list(self.crashes),
            incarnations=incarnation + 1,
            extra={"isolation": report, "recorder": self.recorder},
        )
        if self.workload.name == "queue":
            result.extra["exactly_once_violations"] = exactly_once_violations(
                self.recorder.history()
            )
        if raise_on_violation:
            report.raise_on_violation()
        return result


def run_crash_benchmark(
    workload,
    configuration,
    clients,
    duration=1.0,
    seed=7,
    crashes=1,
    fault_plan=None,
    raise_on_violation=True,
    **kwargs,
):
    """One-shot helper: seeded crash-enabled checked run.

    ``fault_plan`` overrides the seed-derived plan; ``crashes`` sets how
    many seeded crash points the derived plan contains.
    """
    if fault_plan is None:
        fault_plan = FaultPlan.from_seed(seed, crashes=crashes)
    runner = CrashRecoveryRunner(
        workload,
        configuration,
        seed=seed,
        fault_plan=fault_plan,
        **kwargs,
    )
    return runner.run(
        clients, duration=duration, raise_on_violation=raise_on_violation
    )
