"""Closed-loop benchmark runner over the simulated cluster.

The runner mirrors the paper's experimental setup (Section 4.6): a fixed
number of closed-loop clients issue transactions drawn from the workload mix,
aborted transactions back off and retry, and throughput is measured after a
warm-up period.

After populating the store the runner freezes the heap (``gc.freeze``), so
the cyclic garbage collector stops re-scanning the hundreds of thousands of
long-lived row/version objects on every full collection — a large constant
drag on simulation speed.  ``stop()`` unfreezes, so sequential runners in a
sweep do not pin each other's data.
"""

import gc
from dataclasses import dataclass, field

from repro.core.engine import EngineOptions, TebaldiEngine
from repro.errors import TransactionAborted
from repro.isolation.checker import check_recorder
from repro.isolation.history import HistoryRecorder
from repro.sim.environment import Environment
from repro.storage.mvstore import MultiVersionStore


@dataclass
class RunResult:
    """Outcome of one benchmark run."""

    configuration: str
    clients: int
    duration: float
    throughput: float
    abort_rate: float
    mean_latency: float
    commits: int
    aborts: int
    per_type: dict = field(default_factory=dict)
    abort_reasons: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def __repr__(self):
        return (
            f"<RunResult {self.configuration} clients={self.clients} "
            f"tput={self.throughput:.0f} txn/s abort={self.abort_rate:.1%}>"
        )


class BenchmarkRunner:
    """Builds an engine for a workload/configuration pair and drives clients."""

    def __init__(
        self,
        workload,
        configuration,
        options=None,
        seed=7,
        profiler=None,
        mix=None,
        start_services=True,
        check_isolation=False,
        isolation_level="serializable",
        history_window=None,
    ):
        self.workload = workload
        self.configuration = configuration
        self.options = options or EngineOptions()
        self.seed = seed
        self.mix = mix
        self.start_services = start_services
        self.env = Environment()
        self.store = MultiVersionStore()
        self.workload.populate(self.store)
        self.profiler = profiler
        self.engine = TebaldiEngine(
            self.env,
            configuration,
            self.workload.transaction_types(),
            store=self.store,
            options=self.options,
            profiler=profiler,
        )
        # Checked-run mode: stream the committed history into a recorder and
        # verify the run against the Adya isolation oracle after every
        # measurement.  ``history_window`` bounds recorder memory (ring of
        # the most recent committed transactions) for long runs.  The
        # recorder streams dependency edges into the incremental DSG
        # checker as commits happen, so the post-measurement check is just
        # the two linear anomaly passes — no post-hoc graph build.
        self.isolation_level = isolation_level
        self.recorder = None
        if check_isolation:
            # The recorder validates the level (ValueError on unknown names).
            self.recorder = HistoryRecorder(
                max_transactions=history_window, level=isolation_level
            )
            self.engine.history_recorder = self.recorder
        self._stop_event = self.env.event(name="stop")
        self._client_counter = 0
        if self.start_services:
            self.engine.start_services(self._stop_event)
        # The populated store and engine live for the runner's lifetime:
        # exclude them from cyclic-GC scans (unfrozen again in stop()).
        gc.collect()
        gc.freeze()
        self._frozen = True

    # -- client processes ----------------------------------------------------------

    def _client(self, client_id, rng, mix):
        while not self._stop_event.triggered:
            txn_type, args = self.workload.next_transaction(rng, mix)
            yield from self._run_with_retries(txn_type, args, client_id)

    def _run_with_retries(self, txn_type, args, client_id, max_retries=None):
        backoff = self.options.retry_backoff
        attempts = 0
        while not self._stop_event.triggered:
            attempts += 1
            try:
                txn = yield from self.engine.execute_transaction(
                    txn_type, args, client_id
                )
                return txn
            except TransactionAborted:
                if max_retries is not None and attempts > max_retries:
                    return None
                self.engine.stats.record_retry(None)
                if backoff > 0:
                    # Exponential backoff (capped) calms cascading-abort storms.
                    delay = min(backoff * (2 ** min(attempts - 1, 5)), 0.1)
                    yield self.env.timeout(delay)
        return None

    def add_clients(self, count, mix=None):
        """Spawn ``count`` closed-loop client processes."""
        mix = self.workload.validate_mix(mix or self.mix or self.workload.mix())
        for _ in range(count):
            client_id = self._client_counter
            self._client_counter += 1
            rng = self.workload.make_rng(self.seed + client_id * 7919)
            self.env.process(self._client(client_id, rng, mix), name=f"client-{client_id}")

    # -- measurement -------------------------------------------------------------------

    def run(self, clients, duration=5.0, warmup=1.0, mix=None, raise_on_violation=True):
        """Run ``clients`` closed-loop clients and measure steady-state throughput.

        In checked-run mode (``check_isolation=True`` at construction) the
        recorded history — warmup included — is fed to the isolation checker
        after the measurement; a violation raises
        :class:`~repro.errors.IsolationViolation` unless
        ``raise_on_violation`` is false, and the
        :class:`~repro.isolation.checker.IsolationReport` is attached to the
        result as ``extra["isolation"]`` either way.
        """
        self.add_clients(clients, mix=mix)
        if warmup > 0:
            self.env.run(until=self.env.now + warmup)
        self.engine.stats.reset()
        if self.profiler is not None and hasattr(self.profiler, "reset"):
            self.profiler.reset(self.env.now)
        self.env.run(until=self.env.now + duration)
        result = self.result(clients, duration)
        if self.recorder is not None:
            report = self.check_isolation()
            result.extra["isolation"] = report
            if raise_on_violation:
                report.raise_on_violation()
        return result

    def check_isolation(self):
        """Check the history recorded so far; returns the report."""
        if self.recorder is None:
            raise ValueError(
                "runner was not built with check_isolation=True; no history recorded"
            )
        return check_recorder(self.recorder, level=self.isolation_level)

    def run_additional(self, duration):
        """Continue the measurement for ``duration`` more virtual seconds."""
        self.env.run(until=self.env.now + duration)
        return self.result(self._client_counter, self.engine.stats.elapsed)

    def result(self, clients, duration):
        summary = self.engine.stats.summary()
        return RunResult(
            configuration=self.configuration.name,
            clients=clients,
            duration=duration,
            throughput=summary["throughput"],
            abort_rate=summary["abort_rate"],
            mean_latency=summary["mean_latency"],
            commits=summary["commits"],
            aborts=summary["aborts"],
            per_type=summary["per_type"],
            abort_reasons=summary["abort_reasons"],
        )

    def stop(self):
        if not self._stop_event.triggered:
            self._stop_event.succeed(None)
        if self._frozen:
            gc.unfreeze()
            self._frozen = False


def run_benchmark(
    workload,
    configuration,
    clients,
    duration=5.0,
    warmup=1.0,
    raise_on_violation=True,
    **kwargs,
):
    """One-shot helper: build a runner, run it, return the :class:`RunResult`.

    Pass ``check_isolation=True`` to gate the run on the isolation oracle;
    the report lands in ``result.extra["isolation"]`` and a violation raises
    unless ``raise_on_violation`` is false.
    """
    runner = BenchmarkRunner(workload, configuration, **kwargs)
    try:
        result = runner.run(
            clients, duration=duration, warmup=warmup, raise_on_violation=raise_on_violation
        )
    finally:
        # Always stop: it also unfreezes the GC state frozen at construction.
        runner.stop()
    return result
