"""Plain-text reporting helpers for examples and benchmark harnesses."""


def format_table(rows, headers):
    """Format an iterable of row dicts (or sequences) as an aligned text table.

    Accepts any iterable (including generators) and the empty/None cases: an
    empty input renders the header and a ``(no data)`` marker instead of
    crashing, so reporting a failed or empty sweep stays safe.
    """
    rows = list(rows) if rows is not None else []
    if rows and isinstance(rows[0], dict):
        table = [[str(row.get(header, "")) for header in headers] for row in rows]
    else:
        table = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in table:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in table:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    if not table:
        lines.append("(no data)")
    return "\n".join(lines)


def format_series(series, label="clients", value="throughput"):
    """Format an (x, y) series as a two-column table (empty/None y-safe)."""
    rows = [
        (x, f"{y:.1f}" if y is not None else "-")
        for x, y in (series if series is not None else ())
    ]
    return format_table(rows, headers=[label, value])


def format_run_results(results):
    """Format :class:`~repro.harness.runner.RunResult` objects (empty-safe)."""
    rows = [
        {
            "configuration": result.configuration,
            "clients": result.clients,
            "throughput (txn/s)": f"{result.throughput:.1f}",
            "abort rate": f"{result.abort_rate:.1%}",
            "mean latency (ms)": f"{result.mean_latency * 1000:.2f}",
        }
        for result in (results if results is not None else ())
    ]
    headers = [
        "configuration",
        "clients",
        "throughput (txn/s)",
        "abort rate",
        "mean latency (ms)",
    ]
    return format_table(rows, headers)
