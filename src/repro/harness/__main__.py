"""``python -m repro.harness`` — the checked-run benchmark CLI."""

from repro.harness.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
