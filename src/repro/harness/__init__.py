"""Benchmark harness: closed-loop clients, parameter sweeps, reporting."""

from repro.harness.runner import BenchmarkRunner, RunResult
from repro.harness.sweep import client_sweep, peak_throughput
from repro.harness.report import format_table, format_series

__all__ = [
    "BenchmarkRunner",
    "RunResult",
    "client_sweep",
    "peak_throughput",
    "format_table",
    "format_series",
]
