"""Benchmark harness: closed-loop clients, checked runs, parallel sweeps, reporting."""

from repro.harness.runner import BenchmarkRunner, RunResult, run_benchmark
from repro.harness.parallel import available_workers, derive_point_seed, run_tasks
from repro.harness.sweep import client_sweep, peak_throughput
from repro.harness.report import format_table, format_series, format_run_results

__all__ = [
    "BenchmarkRunner",
    "RunResult",
    "run_benchmark",
    "available_workers",
    "derive_point_seed",
    "run_tasks",
    "client_sweep",
    "peak_throughput",
    "format_table",
    "format_series",
    "format_run_results",
]
