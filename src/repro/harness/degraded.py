"""Degraded-mode harness: run a workload through seeded *message* faults —
drops, delay spikes, duplicates, reorders, partition-and-heal — with the
isolation oracle attached, and prove the TC/DS protocol stays correct.

Sibling of :mod:`repro.harness.crash` (which kills the whole machine): here
the machine stays up but the network misbehaves, so the properties at stake
are different:

* **committed means durable and visible** — every committed transaction
  with writes has a complete durable precommit set, and replaying the
  durable log reproduces exactly the store's latest committed state;
* **exactly-once application** — a duplicated delivery or a retransmit
  after a lost reply re-enters the durability layer, whose commit-ticket
  dedup must absorb it: one ticket per transaction, ever
  (:func:`retransmit_violations` scans the persistent log for txns that
  minted more than one);
* **no phantom commits** — a retransmitted commit must not commit twice
  (``HistoryRecorder.duplicate_commits`` stays empty) and the queue
  workload's exactly-once dequeue invariant holds across the fault window;
* **graceful degradation** — when retry queues back up past the admission
  valve's threshold the engine parks new transactions and recovers once
  the partition heals; the whole run (pre-, intra- and post-degradation)
  is recorded as **one** history and checked as a single DSG.

Everything derives from the run seed (fault plan, backoff jitter, client
RNGs), so a failing run reproduces byte-identically.
"""

from dataclasses import dataclass, field

from repro.core.engine import EngineOptions, TebaldiEngine
from repro.errors import TransactionAborted
from repro.harness.crash import exactly_once_violations
from repro.harness.parallel import derive_point_seed
from repro.isolation.checker import check_recorder
from repro.isolation.history import HistoryRecorder
from repro.sim.environment import Environment
from repro.sim.faults import MessageFaultInjector, MessageFaultPlan
from repro.storage.durability import DurabilityConfig, DurabilityManager
from repro.storage.mvstore import MultiVersionStore


def default_degraded_durability():
    """Durability settings for degraded-mode cells: synchronous flushing,
    so a committed transaction is durable the moment its precommit returns
    and the committed-means-durable check needs no epoch race reasoning."""
    return DurabilityConfig(
        enabled=True,
        asynchronous=False,
        num_servers=4,
    )


def default_degraded_options(seed=7):
    """Chaos-tuned engine options: tight timeouts and a low valve threshold
    so sub-second runs actually exercise retry, backoff and degradation."""
    return EngineOptions(
        net_phase_timeout=0.002,
        net_retry_limit=8,
        net_backoff_base=0.0004,
        net_backoff_cap=0.0064,
        net_backoff_seed=seed,
        net_park_threshold=6,
    )


def retransmit_violations(manager):
    """Transactions that minted more than one precommit ticket.

    The durable log is the ground truth for exactly-once application: the
    coordinator may retransmit a precommit any number of times (duplicated
    delivery, lost reply), but the durability layer's commit-ticket dedup
    must absorb every repeat — one ticket, one record set, ever.  A broken
    dedup shows up here as a second ticket over the same transaction (the
    mutation test flips ``DurabilityManager.dedup_enabled`` off and expects
    this to light up).  Returns ``{txn_id: sorted ticket list}``.
    """
    tickets = {}
    for log in manager.logs:
        for record in log.persisted_records():
            if record.kind != "precommit":
                continue
            ticket = record.payload.get("ticket")
            tickets.setdefault(record.txn_id, set()).add(ticket)
    return {
        txn_id: sorted(seen)
        for txn_id, seen in tickets.items()
        if len(seen) > 1
    }


@dataclass
class DegradedRunResult:
    """Outcome of one checked run under message faults."""

    configuration: str
    clients: int
    duration: float
    commits: int
    aborts: int
    throughput: float
    fault_log: list = field(default_factory=list)
    net_stats: dict = field(default_factory=dict)
    violations: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def __repr__(self):
        return (
            f"<DegradedRunResult {self.configuration} clients={self.clients} "
            f"commits={self.commits} faults={len(self.fault_log)}>"
        )


class DegradedRunner:
    """Drives a workload through seeded message faults with the oracle on."""

    def __init__(
        self,
        workload,
        configuration,
        seed=7,
        options=None,
        fault_plan=None,
        durability=None,
        isolation_level="serializable",
        history_window=None,
        dedup_enabled=True,
    ):
        self.workload = workload
        self.configuration = configuration
        self.seed = seed
        self.options = options or default_degraded_options(seed)
        #: Mutation-test hook: ``False`` disables the durability layer's
        #: commit-ticket dedup, which the suite must then catch via
        #: :func:`retransmit_violations`.
        self.dedup_enabled = dedup_enabled
        self.durability_config = durability or default_degraded_durability()
        self.plan = (
            fault_plan
            if fault_plan is not None
            else MessageFaultPlan.from_seed(seed)
        )
        self.injector = MessageFaultInjector(self.plan)
        self.isolation_level = isolation_level
        self.recorder = HistoryRecorder(
            max_transactions=history_window, level=isolation_level
        )

    def _client(self, env, engine, stop_event, rng, mix, client_id):
        backoff = self.options.retry_backoff
        while not stop_event.triggered:
            txn_type, args = self.workload.next_transaction(rng, mix)
            attempts = 0
            while not stop_event.triggered:
                attempts += 1
                try:
                    yield from engine.execute_transaction(txn_type, args, client_id)
                    break
                except TransactionAborted:
                    engine.stats.record_retry(None)
                    if backoff > 0:
                        delay = min(backoff * (2 ** min(attempts - 1, 5)), 0.1)
                        yield env.timeout(delay)

    def run(self, clients, duration=0.5, raise_on_violation=True):
        """One checked run across the whole fault plan.

        Returns a :class:`DegradedRunResult`; with ``raise_on_violation``
        (the default) any oracle violation, duplicate application or
        durability mismatch raises instead of being returned quietly.
        """
        manager = DurabilityManager(self.durability_config)
        manager.dedup_enabled = self.dedup_enabled
        store = MultiVersionStore()
        self.workload.populate(store)
        env = Environment()
        engine = TebaldiEngine(
            env,
            self.configuration,
            self.workload.transaction_types(),
            store=store,
            options=self.options,
            durability=manager,
        )
        engine.cluster.message_faults = self.injector
        engine.history_recorder = self.recorder
        stop_event = env.event(name="stop")
        engine.start_services(stop_event)
        mix = self.workload.validate_mix(self.workload.mix())
        for client_id in range(clients):
            rng = self.workload.make_rng(
                derive_point_seed(self.seed, "net-client", 0, client_id)
            )
            env.process(
                self._client(env, engine, stop_event, rng, mix, client_id),
                name=f"client-{client_id}",
            )
        env.run(until=duration)
        summary = engine.stats.summary()
        report = check_recorder(self.recorder, level=self.isolation_level)

        violations = {}
        duplicate_tickets = retransmit_violations(manager)
        if duplicate_tickets:
            violations["duplicate_tickets"] = duplicate_tickets
        if self.recorder.duplicate_commits:
            violations["duplicate_commits"] = list(
                self.recorder.duplicate_commits
            )
        history = self.recorder.history()
        if self.workload.name == "queue":
            double_dequeues = exactly_once_violations(history)
            if double_dequeues:
                violations["double_dequeues"] = double_dequeues

        # Committed means durable and visible: replaying the persistent log
        # must recover exactly the committed writers, and the recovered
        # values must match the store's latest committed state.
        recovery = manager.recover()
        committed_writers = {
            txn.txn_id for txn in history.transactions.values() if txn.writes
        }
        not_durable = committed_writers - recovery.recovered_transactions
        if not_durable:
            violations["committed_not_durable"] = sorted(not_durable)
        phantom_durable = (
            recovery.recovered_transactions - set(engine.committed_ids)
        )
        if phantom_durable:
            violations["durable_not_committed"] = sorted(phantom_durable)
        latest = store.latest_state()
        stale = {
            key: (value, latest.get(key))
            for key, value in recovery.state.items()
            if recovery.state_writers.get(key, 0) != 0
            and latest.get(key) != value
        }
        if stale:
            violations["recovered_state_mismatch"] = stale

        result = DegradedRunResult(
            configuration=self.configuration.name,
            clients=clients,
            duration=duration,
            commits=summary["commits"],
            aborts=summary["aborts"],
            throughput=summary["commits"] / duration if duration > 0 else 0.0,
            fault_log=list(self.injector.fault_log),
            net_stats=dict(engine.net_stats),
            violations=violations,
            extra={
                "isolation": report,
                "recorder": self.recorder,
                "injector_stats": dict(self.injector.stats),
                "pending_faults": self.injector.has_pending(),
            },
        )
        if raise_on_violation:
            report.raise_on_violation()
            if violations:
                raise AssertionError(
                    f"degraded-mode violations in {self.configuration.name}: "
                    f"{violations}"
                )
        return result


def run_degraded_benchmark(
    workload,
    configuration,
    clients,
    duration=0.5,
    seed=7,
    faults=4,
    require=("drop", "partition"),
    fault_plan=None,
    raise_on_violation=True,
    **kwargs,
):
    """One-shot helper: seeded message-fault checked run.

    ``fault_plan`` overrides the seed-derived plan; ``faults`` sets how many
    seeded fault points the derived plan contains and ``require`` pins fault
    kinds that must appear (by default at least one drop-with-retry and one
    partition-and-heal window, the two acceptance scenarios).
    """
    if fault_plan is None:
        fault_plan = MessageFaultPlan.from_seed(
            seed, faults=faults, require=require
        )
    runner = DegradedRunner(
        workload,
        configuration,
        seed=seed,
        fault_plan=fault_plan,
        **kwargs,
    )
    return runner.run(
        clients, duration=duration, raise_on_violation=raise_on_violation
    )
