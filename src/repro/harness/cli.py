"""Checked-run command line: benchmark any workload × CC tree with the oracle in the loop.

``python -m repro.harness`` builds a closed-loop run for a workload and one
or more named CC-tree configurations, measures throughput, and — unless
``--no-check`` is given — streams the committed history into the Adya
isolation checker and fails (exit code 1) on any aborted read, intermediate
read or DSG cycle.  Every workload × configuration × client-count cell is
checked independently, so a violation pinpoints the offending combination.

Cells are independent fresh-database runs, so they execute in parallel
across ``--workers`` processes (default: every available CPU); each cell's
RNG seed is derived from ``(--seed, workload, configuration, clients)``,
so results are identical whatever the worker count or completion order.

Examples::

    python -m repro.harness --list
    python -m repro.harness --workload smallbank --clients 20 --duration 1
    python -m repro.harness --workload tpcc --config tebaldi-3layer --clients 10 20 40
    python -m repro.harness --workload ycsb --ycsb-profile e --quick
    python -m repro.harness --all --quick --workers 4
    python -m repro.harness --workload queue --faults 1 --quick
    python -m repro.harness --all --faults 2 --quick
    python -m repro.harness --workload queue --net-faults 4 --quick
    python -m repro.harness --all --net-faults 2 --quick
"""

import argparse
import sys

from repro.harness.configs import CHAOS_CELLS, CRASH_CELLS, WORKLOAD_CONFIGURATIONS
from repro.harness.crash import run_crash_benchmark
from repro.harness.degraded import run_degraded_benchmark
from repro.harness.parallel import available_workers, derive_point_seed, run_tasks
from repro.harness.report import format_run_results
from repro.harness.runner import run_benchmark
from repro.isolation.levels import ISOLATION_LEVELS
from repro.workloads.micro import CrossGroupConflictWorkload
from repro.workloads.queue import QueueWorkload
from repro.workloads.seats import SEATSWorkload
from repro.workloads.smallbank import SmallBankWorkload
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.ycsb import YCSBWorkload


def build_workload(name, ycsb_profile="a"):
    """Construct a workload at the CLI's laptop-scale defaults."""
    if name == "tpcc":
        return TPCCWorkload(warehouses=2)
    if name == "tpcc-scan":
        return TPCCWorkload(warehouses=2, include_payment_by_name=True)
    if name == "seats":
        return SEATSWorkload(flights=10)
    if name == "micro":
        return CrossGroupConflictWorkload(shared_rows=20, cold_rows=1000, operations=5)
    if name == "smallbank":
        return SmallBankWorkload(customers=500, hot_accounts=10)
    if name == "ycsb":
        return YCSBWorkload(records=1000, profile=ycsb_profile)
    if name == "ycsb-zipf":
        # The larger-keyspace zipfian preset (YCSB's native distribution).
        return YCSBWorkload(
            records=2000, profile=ycsb_profile,
            distribution="zipfian", zipf_theta=0.9,
        )
    if name == "ycsb-scan":
        # The scan-heavy profile pinned to E: 95% range scans racing 5%
        # inserts, the phantom-bearing cell for the scan-aware CC trees.
        return YCSBWorkload(records=1000, profile="e")
    if name == "queue":
        return QueueWorkload(initial_messages=6, window=8)
    raise ValueError(f"unknown workload {name!r}")


def list_registry(out=print):
    out("workload × configuration registry:")
    for workload, configurations in sorted(WORKLOAD_CONFIGURATIONS.items()):
        out(f"  {workload}: {', '.join(sorted(configurations))}")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--workload",
        choices=sorted(WORKLOAD_CONFIGURATIONS),
        help="workload to run (see --list for the registry)",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="run every workload × configuration in the registry",
    )
    parser.add_argument(
        "--config",
        action="append",
        default=None,
        help="configuration name(s); repeatable; default: every registered tree",
    )
    parser.add_argument(
        "--clients", type=int, nargs="+", default=[20],
        help="closed-loop client count(s); several values form a sweep",
    )
    parser.add_argument("--duration", type=float, default=1.0, help="measured virtual seconds")
    parser.add_argument("--warmup", type=float, default=0.2, help="warmup virtual seconds")
    parser.add_argument(
        "--seed", type=int, default=7,
        help="base seed; each cell derives its own from (seed, workload, config, clients)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for independent cells (default: all available CPUs)",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="skip the isolation oracle (pure speed run)",
    )
    parser.add_argument(
        "--level", choices=ISOLATION_LEVELS, default="serializable",
        help="isolation level the oracle checks against",
    )
    parser.add_argument(
        "--history-window", type=int, default=None,
        help="bound the recorder to the most recent N committed transactions",
    )
    parser.add_argument(
        "--ycsb-profile", choices=("a", "b", "e"), default="a",
        help="YCSB operation mix (read/update, read-heavy, scan-heavy)",
    )
    parser.add_argument(
        "--faults", type=int, default=0, metavar="N",
        help=(
            "crash-enabled mode: inject N seeded crashes per cell (durability "
            "on, WAL recovery between incarnations, oracle spanning the "
            "crash); restricted to the crash-enabled registry"
        ),
    )
    parser.add_argument(
        "--net-faults", type=int, default=0, metavar="N",
        help=(
            "degraded mode: inject N seeded message faults per cell (drops, "
            "delay spikes, duplicates, reorders, partition-and-heal; "
            "timeout/retry/backoff on every protocol exchange, oracle "
            "spanning the fault window); restricted to the chaos registry"
        ),
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny smoke run (8 clients, 0.3s measured, 0.1s warmup)",
    )
    parser.add_argument("--list", action="store_true", help="print the registry and exit")
    return parser


def _make_crash_cell_task(args, workload_name, config_name, clients, duration):
    def cell():
        workload = build_workload(workload_name, ycsb_profile=args.ycsb_profile)
        configuration = WORKLOAD_CONFIGURATIONS[workload_name][config_name]()
        seed = derive_point_seed(args.seed, workload_name, config_name, clients)
        result = run_crash_benchmark(
            workload,
            configuration,
            clients=clients,
            duration=duration,
            seed=seed,
            crashes=args.faults,
            isolation_level=args.level,
            history_window=args.history_window,
            raise_on_violation=False,
        )
        # The recorder is process-local diagnostics; don't ship it back
        # through the worker-pool pickle.
        result.extra.pop("recorder", None)
        return result
    return cell


def _run_crash_cells(args, parser):
    """Crash-enabled mode: sweep the crash registry with seeded faults."""
    workload_names = sorted(CRASH_CELLS) if args.all else [args.workload]
    cells = []
    for workload_name in workload_names:
        registered = CRASH_CELLS[workload_name]
        configurations = WORKLOAD_CONFIGURATIONS[workload_name]
        config_names = (args.config if not args.all else None) or list(registered)
        unknown = [name for name in config_names if name not in configurations]
        if unknown:
            parser.error(
                f"unknown configuration(s) {unknown} for {workload_name}; "
                f"available: {sorted(configurations)}"
            )
        for config_name in config_names:
            for clients in args.clients if not args.quick else [8]:
                cells.append((workload_name, config_name, clients))
    duration = 0.5 if args.quick else args.duration
    workers = args.workers if args.workers is not None else available_workers()
    tasks = [
        _make_crash_cell_task(args, workload_name, config_name, clients, duration)
        for workload_name, config_name, clients in cells
    ]
    results = run_tasks(tasks, workers=workers)

    violations = []
    for (workload_name, config_name, clients), result in zip(cells, results):
        report = result.extra["isolation"]
        crash_bits = "; ".join(crash.describe() for crash in result.crashes)
        duplicate_dequeues = result.extra.get("exactly_once_violations") or {}
        if report.ok and not duplicate_dequeues:
            status = f"isolation OK across {len(result.crashes)} crash(es)"
        else:
            status = "ISOLATION VIOLATION: " + report.describe()
            if duplicate_dequeues:
                status += f"; {len(duplicate_dequeues)} message(s) dequeued twice"
            violations.append((workload_name, config_name, clients, status))
        print(
            f"{workload_name}/{config_name} clients={clients}: "
            f"{result.commits} commits over {result.incarnations} incarnation(s) "
            f"— {status}"
        )
        if crash_bits:
            print(f"    {crash_bits}")

    if violations:
        print(f"\n{len(violations)} crash-cell violation(s):", file=sys.stderr)
        for workload_name, config_name, clients, status in violations:
            print(
                f"  {workload_name}/{config_name} clients={clients}: {status}",
                file=sys.stderr,
            )
        return 1
    print(
        f"\nall {len(results)} crash-enabled checked runs passed the "
        f"cross-crash oracle at level={args.level!r}"
    )
    return 0


def _make_net_cell_task(args, workload_name, config_name, clients, duration):
    def cell():
        workload = build_workload(workload_name, ycsb_profile=args.ycsb_profile)
        configuration = WORKLOAD_CONFIGURATIONS[workload_name][config_name]()
        seed = derive_point_seed(args.seed, workload_name, config_name, clients)
        # With room for two or more fault points, pin the two acceptance
        # scenarios — at least one drop-with-retry and one
        # partition-and-heal window — into every cell's plan.
        require = ("drop", "partition") if args.net_faults >= 2 else ("drop",)
        result = run_degraded_benchmark(
            workload,
            configuration,
            clients=clients,
            duration=duration,
            seed=seed,
            faults=args.net_faults,
            require=require,
            isolation_level=args.level,
            history_window=args.history_window,
            raise_on_violation=False,
        )
        # The recorder is process-local diagnostics; don't ship it back
        # through the worker-pool pickle.
        result.extra.pop("recorder", None)
        return result
    return cell


def _run_net_fault_cells(args, parser):
    """Degraded mode: sweep the chaos registry with seeded message faults."""
    workload_names = sorted(CHAOS_CELLS) if args.all else [args.workload]
    cells = []
    for workload_name in workload_names:
        registered = CHAOS_CELLS[workload_name]
        configurations = WORKLOAD_CONFIGURATIONS[workload_name]
        config_names = (args.config if not args.all else None) or list(registered)
        unknown = [name for name in config_names if name not in configurations]
        if unknown:
            parser.error(
                f"unknown configuration(s) {unknown} for {workload_name}; "
                f"available: {sorted(configurations)}"
            )
        for config_name in config_names:
            for clients in args.clients if not args.quick else [8]:
                cells.append((workload_name, config_name, clients))
    duration = 0.5 if args.quick else args.duration
    workers = args.workers if args.workers is not None else available_workers()
    tasks = [
        _make_net_cell_task(args, workload_name, config_name, clients, duration)
        for workload_name, config_name, clients in cells
    ]
    results = run_tasks(tasks, workers=workers)

    violations = []
    for (workload_name, config_name, clients), result in zip(cells, results):
        report = result.extra["isolation"]
        if report.ok and not result.violations:
            status = f"isolation OK across {len(result.fault_log)} fault(s)"
        else:
            status = "VIOLATION: " + (
                report.describe() if not report.ok else str(result.violations)
            )
            violations.append((workload_name, config_name, clients, status))
        net = result.net_stats
        print(
            f"{workload_name}/{config_name} clients={clients}: "
            f"{result.commits} commits, {result.aborts} aborts — {status}"
        )
        fired = ", ".join(
            f"{fault['kind']}@{fault['time']:.4f}s" for fault in result.fault_log
        )
        degradation = (
            f"retries={net['retries']} retransmits={net['retransmit_applies']} "
            f"parked={net['parked']} degraded-windows={net['degraded_windows']}"
        )
        print(f"    faults: {fired or 'none fired'}; {degradation}")

    if violations:
        print(f"\n{len(violations)} degraded-cell violation(s):", file=sys.stderr)
        for workload_name, config_name, clients, status in violations:
            print(
                f"  {workload_name}/{config_name} clients={clients}: {status}",
                file=sys.stderr,
            )
        return 1
    print(
        f"\nall {len(results)} degraded-mode checked runs passed the oracle "
        f"and the exactly-once/durability checks at level={args.level!r}"
    )
    return 0


def _make_cell_task(args, workload_name, config_name, clients, duration, warmup, check):
    def cell():
        workload = build_workload(workload_name, ycsb_profile=args.ycsb_profile)
        configuration = WORKLOAD_CONFIGURATIONS[workload_name][config_name]()
        seed = derive_point_seed(args.seed, workload_name, config_name, clients)
        return run_benchmark(
            workload,
            configuration,
            clients=clients,
            duration=duration,
            warmup=warmup,
            seed=seed,
            check_isolation=check,
            isolation_level=args.level,
            history_window=args.history_window,
            raise_on_violation=False,
        )
    return cell


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        list_registry()
        return 0
    if args.workload is None and not args.all:
        parser.error("--workload is required (or use --all / --list)")
    if args.all and args.workload:
        parser.error("--all sweeps every workload; drop --workload (or drop --all)")
    if args.all and args.config:
        parser.error("--config only applies to a single --workload; drop it with --all")
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be a positive integer, got {args.workers}")
    bad_clients = [clients for clients in args.clients if clients < 1]
    if bad_clients:
        parser.error(f"--clients must be positive integers, got {bad_clients}")
    if args.duration <= 0:
        parser.error(f"--duration must be positive, got {args.duration}")
    if args.warmup < 0:
        parser.error(f"--warmup must be non-negative, got {args.warmup}")
    if args.faults < 0:
        parser.error(f"--faults must be a non-negative integer, got {args.faults}")
    if args.net_faults < 0:
        parser.error(
            f"--net-faults must be a non-negative integer, got {args.net_faults}"
        )
    if args.faults and args.net_faults:
        parser.error(
            "--faults (crashes) and --net-faults (message faults) are "
            "separate modes; pick one per invocation"
        )
    if args.faults:
        if args.no_check:
            parser.error("--faults needs the oracle in the loop; drop --no-check")
        if args.workload is not None and args.workload not in CRASH_CELLS:
            parser.error(
                f"--faults is registered for {sorted(CRASH_CELLS)}; "
                f"got --workload {args.workload}"
            )
        return _run_crash_cells(args, parser)
    if args.net_faults:
        if args.no_check:
            parser.error("--net-faults needs the oracle in the loop; drop --no-check")
        if args.workload is not None and args.workload not in CHAOS_CELLS:
            parser.error(
                f"--net-faults is registered for {sorted(CHAOS_CELLS)}; "
                f"got --workload {args.workload}"
            )
        return _run_net_fault_cells(args, parser)

    workload_names = sorted(WORKLOAD_CONFIGURATIONS) if args.all else [args.workload]
    cells = []
    for workload_name in workload_names:
        configurations = WORKLOAD_CONFIGURATIONS[workload_name]
        config_names = (args.config if not args.all else None) or sorted(configurations)
        unknown = [name for name in config_names if name not in configurations]
        if unknown:
            parser.error(
                f"unknown configuration(s) {unknown} for {workload_name}; "
                f"available: {sorted(configurations)}"
            )
        for config_name in config_names:
            for clients in args.clients if not args.quick else [8]:
                cells.append((workload_name, config_name, clients))

    duration, warmup = args.duration, args.warmup
    if args.quick:
        duration, warmup = 0.3, 0.1

    check = not args.no_check
    workers = args.workers if args.workers is not None else available_workers()
    tasks = [
        _make_cell_task(args, workload_name, config_name, clients, duration, warmup, check)
        for workload_name, config_name, clients in cells
    ]
    results = run_tasks(tasks, workers=workers)

    violations = []
    for (workload_name, config_name, clients), result in zip(cells, results):
        report = result.extra.get("isolation")
        if report is None:
            status = "unchecked"
        elif report.ok:
            status = f"isolation OK ({report.num_transactions} txns, {report.num_edges} edges)"
        else:
            status = "ISOLATION VIOLATION: " + report.describe()
            violations.append((workload_name, config_name, clients, report))
        print(
            f"{workload_name}/{config_name} clients={clients}: "
            f"{result.throughput:.0f} txn/s, abort={result.abort_rate:.1%} — {status}"
        )

    print()
    print(format_run_results(results))
    if violations:
        print(f"\n{len(violations)} isolation violation(s):", file=sys.stderr)
        for workload_name, config_name, clients, report in violations:
            print(
                f"  {workload_name}/{config_name} clients={clients}: {report.describe()}",
                file=sys.stderr,
            )
        return 1
    if check:
        print(
            f"\nall {len(results)} checked runs passed the isolation oracle "
            f"at level={args.level!r}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
