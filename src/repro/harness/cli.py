"""Checked-run command line: benchmark any workload × CC tree with the oracle in the loop.

``python -m repro.harness`` builds a closed-loop run for a workload and one
or more named CC-tree configurations, measures throughput, and — unless
``--no-check`` is given — streams the committed history into the Adya
isolation checker and fails (exit code 1) on any aborted read, intermediate
read or DSG cycle.  Every workload × configuration × client-count cell is
checked independently, so a violation pinpoints the offending combination.

Examples::

    python -m repro.harness --list
    python -m repro.harness --workload smallbank --clients 20 --duration 1
    python -m repro.harness --workload tpcc --config tebaldi-3layer --clients 10 20 40
    python -m repro.harness --workload ycsb --ycsb-profile e --quick
"""

import argparse
import sys

from repro.harness.configs import WORKLOAD_CONFIGURATIONS
from repro.harness.report import format_run_results
from repro.harness.runner import run_benchmark
from repro.isolation.checker import ISOLATION_LEVELS
from repro.workloads.micro import CrossGroupConflictWorkload
from repro.workloads.seats import SEATSWorkload
from repro.workloads.smallbank import SmallBankWorkload
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.ycsb import YCSBWorkload


def build_workload(name, ycsb_profile="a"):
    """Construct a workload at the CLI's laptop-scale defaults."""
    if name == "tpcc":
        return TPCCWorkload(warehouses=2)
    if name == "seats":
        return SEATSWorkload(flights=10)
    if name == "micro":
        return CrossGroupConflictWorkload(shared_rows=20, cold_rows=1000, operations=5)
    if name == "smallbank":
        return SmallBankWorkload(customers=500, hot_accounts=10)
    if name == "ycsb":
        return YCSBWorkload(records=1000, profile=ycsb_profile)
    raise ValueError(f"unknown workload {name!r}")


def list_registry(out=print):
    out("workload × configuration registry:")
    for workload, configurations in sorted(WORKLOAD_CONFIGURATIONS.items()):
        out(f"  {workload}: {', '.join(sorted(configurations))}")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--workload",
        choices=sorted(WORKLOAD_CONFIGURATIONS),
        help="workload to run (see --list for the registry)",
    )
    parser.add_argument(
        "--config",
        action="append",
        default=None,
        help="configuration name(s); repeatable; default: every registered tree",
    )
    parser.add_argument(
        "--clients", type=int, nargs="+", default=[20],
        help="closed-loop client count(s); several values form a sweep",
    )
    parser.add_argument("--duration", type=float, default=1.0, help="measured virtual seconds")
    parser.add_argument("--warmup", type=float, default=0.2, help="warmup virtual seconds")
    parser.add_argument("--seed", type=int, default=7, help="client RNG seed")
    parser.add_argument(
        "--no-check", action="store_true",
        help="skip the isolation oracle (pure speed run)",
    )
    parser.add_argument(
        "--level", choices=ISOLATION_LEVELS, default="serializable",
        help="isolation level the oracle checks against",
    )
    parser.add_argument(
        "--history-window", type=int, default=None,
        help="bound the recorder to the most recent N committed transactions",
    )
    parser.add_argument(
        "--ycsb-profile", choices=("a", "b", "e"), default="a",
        help="YCSB operation mix (read/update, read-heavy, scan-heavy)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny smoke run (8 clients, 0.3s measured, 0.1s warmup)",
    )
    parser.add_argument("--list", action="store_true", help="print the registry and exit")
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        list_registry()
        return 0
    if args.workload is None:
        parser.error("--workload is required (or use --list)")

    configurations = WORKLOAD_CONFIGURATIONS[args.workload]
    config_names = args.config or sorted(configurations)
    unknown = [name for name in config_names if name not in configurations]
    if unknown:
        parser.error(
            f"unknown configuration(s) {unknown} for {args.workload}; "
            f"available: {sorted(configurations)}"
        )

    clients_list = list(args.clients)
    duration, warmup = args.duration, args.warmup
    if args.quick:
        clients_list, duration, warmup = [8], 0.3, 0.1

    check = not args.no_check
    results, violations = [], []
    for config_name in config_names:
        for clients in clients_list:
            workload = build_workload(args.workload, ycsb_profile=args.ycsb_profile)
            configuration = configurations[config_name]()
            result = run_benchmark(
                workload,
                configuration,
                clients=clients,
                duration=duration,
                warmup=warmup,
                seed=args.seed,
                check_isolation=check,
                isolation_level=args.level,
                history_window=args.history_window,
                raise_on_violation=False,
            )
            results.append(result)
            report = result.extra.get("isolation")
            if report is None:
                status = "unchecked"
            elif report.ok:
                status = f"isolation OK ({report.num_transactions} txns, {report.num_edges} edges)"
            else:
                status = "ISOLATION VIOLATION: " + report.describe()
                violations.append((config_name, clients, report))
            print(
                f"{args.workload}/{config_name} clients={clients}: "
                f"{result.throughput:.0f} txn/s, abort={result.abort_rate:.1%} — {status}"
            )

    print()
    print(format_run_results(results))
    if violations:
        print(f"\n{len(violations)} isolation violation(s):", file=sys.stderr)
        for config_name, clients, report in violations:
            print(
                f"  {args.workload}/{config_name} clients={clients}: {report.describe()}",
                file=sys.stderr,
            )
        return 1
    if check:
        print(
            f"\nall {len(results)} checked runs passed the isolation oracle "
            f"at level={args.level!r}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
