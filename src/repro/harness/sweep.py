"""Parameter sweeps: throughput-vs-clients curves and peak throughput.

These helpers regenerate the paper's figures: each figure is a family of
(clients, throughput) series, one per configuration.  Points are executed
through the parallel experiment executor
(:mod:`repro.harness.parallel`) — every point starts from a freshly loaded
database, so a sweep fans out across worker processes and still aggregates
in deterministic point order.
"""

from repro.harness.parallel import derive_point_seed, run_tasks
from repro.harness.runner import run_benchmark


def client_sweep(
    workload_factory,
    configuration_factory,
    client_counts,
    duration=4.0,
    warmup=1.0,
    workers=None,
    **kwargs,
):
    """Measure throughput for each client count.

    ``workload_factory`` and ``configuration_factory`` are zero-argument
    callables so that every point of the sweep starts from a freshly loaded
    database, as in the paper's experiments.

    Each point's RNG seed is derived from ``(seed, workload, configuration,
    clients)`` — pass ``seed=`` to pick the base — so serial (``workers=1``)
    and parallel sweeps of the same points produce identical series.
    ``workers=None`` uses every available CPU.
    """
    base_seed = kwargs.pop("seed", 7)
    client_counts = list(client_counts)

    def make_point(clients):
        def point():
            workload = workload_factory()
            configuration = configuration_factory()
            seed = derive_point_seed(
                base_seed, type(workload).__name__, configuration.name, clients
            )
            return run_benchmark(
                workload,
                configuration,
                clients=clients,
                duration=duration,
                warmup=warmup,
                seed=seed,
                **kwargs,
            )
        return point

    results = run_tasks([make_point(clients) for clients in client_counts], workers=workers)
    return list(zip(client_counts, results))


def peak_throughput(series, default=None):
    """The best-throughput :class:`RunResult` of a (clients, RunResult) sweep.

    An empty (or ``None``) sweep returns ``default`` instead of ``None``
    being silently dereferenced downstream — pass a sentinel or check the
    return value when the sweep may be empty.
    """
    best = None
    for _clients, result in series if series is not None else ():
        if best is None or result.throughput > best.throughput:
            best = result
    return best if best is not None else default


def sweep_throughputs(series):
    """Project a sweep to a plain (clients, txn/sec) series (empty-safe)."""
    if series is None:
        return []
    return [(clients, result.throughput) for clients, result in series]
