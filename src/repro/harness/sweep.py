"""Parameter sweeps: throughput-vs-clients curves and peak throughput.

These helpers regenerate the paper's figures: each figure is a family of
(clients, throughput) series, one per configuration.
"""

from repro.harness.runner import run_benchmark


def client_sweep(
    workload_factory,
    configuration_factory,
    client_counts,
    duration=4.0,
    warmup=1.0,
    **kwargs,
):
    """Measure throughput for each client count.

    ``workload_factory`` and ``configuration_factory`` are zero-argument
    callables so that every point of the sweep starts from a freshly loaded
    database, as in the paper's experiments.
    """
    series = []
    for clients in client_counts:
        result = run_benchmark(
            workload_factory(),
            configuration_factory(),
            clients=clients,
            duration=duration,
            warmup=warmup,
            **kwargs,
        )
        series.append((clients, result))
    return series


def peak_throughput(series, default=None):
    """The best-throughput :class:`RunResult` of a (clients, RunResult) sweep.

    An empty (or ``None``) sweep returns ``default`` instead of ``None``
    being silently dereferenced downstream — pass a sentinel or check the
    return value when the sweep may be empty.
    """
    best = None
    for _clients, result in series if series is not None else ():
        if best is None or result.throughput > best.throughput:
            best = result
    return best if best is not None else default


def sweep_throughputs(series):
    """Project a sweep to a plain (clients, txn/sec) series (empty-safe)."""
    if series is None:
        return []
    return [(clients, result.throughput) for clients, result in series]
