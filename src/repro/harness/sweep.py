"""Parameter sweeps: throughput-vs-clients curves and peak throughput.

These helpers regenerate the paper's figures: each figure is a family of
(clients, throughput) series, one per configuration.
"""

from repro.harness.runner import run_benchmark


def client_sweep(
    workload_factory,
    configuration_factory,
    client_counts,
    duration=4.0,
    warmup=1.0,
    **kwargs,
):
    """Measure throughput for each client count.

    ``workload_factory`` and ``configuration_factory`` are zero-argument
    callables so that every point of the sweep starts from a freshly loaded
    database, as in the paper's experiments.
    """
    series = []
    for clients in client_counts:
        result = run_benchmark(
            workload_factory(),
            configuration_factory(),
            clients=clients,
            duration=duration,
            warmup=warmup,
            **kwargs,
        )
        series.append((clients, result))
    return series


def peak_throughput(series):
    """The best throughput across a (clients, RunResult) sweep."""
    best = None
    for _clients, result in series:
        if best is None or result.throughput > best.throughput:
            best = result
    return best


def sweep_throughputs(series):
    """Project a sweep to a plain (clients, txn/sec) series."""
    return [(clients, result.throughput) for clients, result in series]
