"""Parallel experiment executor: fan independent benchmark points across processes.

Every point of a sweep — one (workload × configuration × client-count)
cell — starts from a freshly loaded database and a freshly built engine,
so the experiment pipeline is embarrassingly parallel.  This module is the
one place that knows how to exploit that: it runs a list of zero-argument
tasks across ``fork``-ed worker processes and returns their results **in
task order**, so callers aggregate exactly as if they had run serially.

Determinism contract (the reason parallel and serial sweeps are
byte-identical):

* Tasks are closures executed in children created by ``fork``, which
  inherit the parent's interpreter state (including the hash seed), so a
  fixed-seed simulation computes the identical schedule it would have
  computed in-process.
* Each sweep point derives its RNG seed with :func:`derive_point_seed`
  from ``(base_seed, workload, configuration, clients)`` — pure data, no
  shared global state — so a point's outcome is independent of which
  worker runs it, in which order, or whether any other point ran at all.
* Results are reassembled by task index, making aggregation order
  independent of completion order.

Platforms without ``fork`` (and nested calls, and ``workers=1``) fall back
to a plain serial loop with the same results.
"""

import multiprocessing
import os
import zlib

__all__ = ["available_workers", "derive_point_seed", "run_tasks"]

#: Module-global task list published to forked workers.  Children inherit
#: it via fork (no pickling of closures); the parent clears it afterwards.
_TASKS = None

_SEED_SPACE = 2**31 - 1


def available_workers():
    """Worker count to use by default: the CPUs this process may run on."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # platforms without affinity support
        return os.cpu_count() or 1


def derive_point_seed(base_seed, *components):
    """Derive a deterministic per-point RNG seed from pure data.

    ``components`` name the sweep point (workload name, configuration name,
    client count, ...); the result is a stable function of the base seed
    and those names only — identical across processes, platforms and run
    orders (crc32, not ``hash()``, which is salted per interpreter).
    """
    text = "\x1f".join(str(component) for component in components)
    digest = zlib.crc32(text.encode("utf-8"))
    return (base_seed * 1_000_003 + digest) % _SEED_SPACE


def _run_indexed(index):
    return index, _TASKS[index]()


def run_tasks(tasks, workers=None):
    """Execute zero-argument ``tasks``; return their results in task order.

    ``workers=None`` uses :func:`available_workers`.  A single worker, a
    single task, a platform without ``fork``, or a nested call (a task that
    itself sweeps) all degrade to the serial loop — same results, no
    process tree.
    """
    tasks = list(tasks)
    if workers is None:
        workers = available_workers()
    workers = max(1, min(int(workers), len(tasks)))
    global _TASKS
    if (
        workers <= 1
        or len(tasks) < 2
        or _TASKS is not None  # nested sweep inside a worker: stay serial
        or "fork" not in multiprocessing.get_all_start_methods()
    ):
        return [task() for task in tasks]
    _TASKS = tasks
    try:
        context = multiprocessing.get_context("fork")
        results = [None] * len(tasks)
        with context.Pool(processes=workers) as pool:
            for index, result in pool.imap_unordered(_run_indexed, range(len(tasks))):
                results[index] = result
    finally:
        _TASKS = None
    return results
