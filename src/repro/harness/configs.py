"""The CC-tree configurations used in the paper's evaluation.

TPC-C (Figure 4.6): two monolithic baselines, the two Callas groupings, and
Tebaldi's two- and three-layer hierarchies.  The extensibility experiment
(Section 4.6.3) adds the four-layer tree with ``hot_item``.  SEATS
(Section 4.6.2, Figure 4.8) uses a monolithic 2PL baseline, a two-layer
SSI+2PL tree and the three-layer tree with per-flight TSO instances.

Beyond the paper's own evaluation, this module also defines hierarchical
trees for the cross-group micro workload, SmallBank and the YCSB-style
workload, and a ``WORKLOAD_CONFIGURATIONS`` registry mapping each workload
name to its named configuration factories — the checked-run harness
(``python -m repro.harness``) gates every workload × configuration pair on
the isolation oracle through this registry.
"""

from repro.core.config import Configuration, leaf, monolithic, node

TPCC_TRANSACTIONS = ("new_order", "payment", "delivery", "order_status", "stock_level")
#: TPC-C with the by-name payment variant (customer-last-name index scan).
TPCC_SCAN_TRANSACTIONS = (
    "new_order",
    "payment",
    "payment_by_name",
    "delivery",
    "order_status",
    "stock_level",
)
SEATS_UPDATES = (
    "new_reservation",
    "delete_reservation",
    "update_reservation",
    "update_customer",
)
SEATS_READS = ("find_flights", "find_open_seats")


# ---------------------------------------------------------------------------
# TPC-C configurations (Figure 4.6)
# ---------------------------------------------------------------------------

def tpcc_monolithic_2pl(transactions=TPCC_TRANSACTIONS):
    """Monolithic two-phase locking baseline."""
    return monolithic("2pl", transactions, name="tpcc-2pl")


def tpcc_monolithic_ssi(transactions=TPCC_TRANSACTIONS):
    """Monolithic serializable snapshot isolation baseline."""
    return monolithic("ssi", transactions, name="tpcc-ssi")


def tpcc_callas_1():
    """Callas-1 (Figure 4.6a): 2PL cross-group over three groups."""
    return Configuration(
        node(
            "2pl",
            leaf("rp", "new_order", "payment", label="RP(NO,PAY)"),
            leaf("rp", "delivery", label="RP(DEL)"),
            leaf("none", "order_status", "stock_level", label="ReadOnly"),
            label="Callas-1",
        ),
        name="callas-1",
    )


def tpcc_callas_2():
    """Callas-2 (Figure 4.6b): stock_level moved into the RP group."""
    return Configuration(
        node(
            "2pl",
            leaf("rp", "new_order", "payment", "stock_level", label="RP(NO,PAY,SL)"),
            leaf("rp", "delivery", label="RP(DEL)"),
            leaf("none", "order_status", label="ReadOnly"),
            label="Callas-2",
        ),
        name="callas-2",
    )


def tpcc_tebaldi_2layer():
    """Tebaldi 2-layer (Figure 4.6c): SSI cross-group, RP update group."""
    return Configuration(
        node(
            "ssi",
            leaf("none", "order_status", "stock_level", label="ReadOnly"),
            leaf("rp", "new_order", "payment", "delivery", label="RP(NO,PAY,DEL)"),
            label="Tebaldi-2layer",
        ),
        name="tebaldi-2layer",
    )


def tpcc_tebaldi_3layer():
    """Tebaldi 3-layer (Figure 4.6d): SSI over {read-only, 2PL over {RP, RP}}."""
    return Configuration(
        node(
            "ssi",
            leaf("none", "order_status", "stock_level", label="ReadOnly"),
            node(
                "2pl",
                leaf("rp", "new_order", "payment", label="RP(NO,PAY)"),
                leaf("rp", "delivery", label="RP(DEL)"),
                label="Updates",
            ),
            label="Tebaldi-3layer",
        ),
        name="tebaldi-3layer",
    )


def tpcc_hot_item_3layer():
    """Extensibility baseline: hot_item joins the new_order/payment RP group."""
    return Configuration(
        node(
            "ssi",
            leaf("none", "order_status", "stock_level", label="ReadOnly"),
            node(
                "2pl",
                leaf("rp", "new_order", "payment", "hot_item", label="RP(NO,PAY,HOT)"),
                leaf("rp", "delivery", label="RP(DEL)"),
                label="Updates",
            ),
            label="HotItem-3layer",
        ),
        name="hot-item-3layer",
    )


def tpcc_hot_item_4layer():
    """Extensibility solution: hot_item in its own group under a cross-group RP."""
    return Configuration(
        node(
            "ssi",
            leaf("none", "order_status", "stock_level", label="ReadOnly"),
            node(
                "2pl",
                node(
                    "rp",
                    leaf("rp", "new_order", "payment", label="RP(NO,PAY)"),
                    leaf("2pl", "hot_item", label="2PL(HOT)"),
                    label="RP cross-group",
                ),
                leaf("rp", "delivery", label="RP(DEL)"),
                label="Updates",
            ),
            label="HotItem-4layer",
        ),
        name="hot-item-4layer",
    )


# ---------------------------------------------------------------------------
# TPC-C payment-by-name (scan-bearing) configurations
# ---------------------------------------------------------------------------

def tpcc_scan_monolithic_2pl():
    """Monolithic 2PL over the mix with by-name payments (predicate locks)."""
    return monolithic("2pl", TPCC_SCAN_TRANSACTIONS, name="tpcc-scan-2pl")


def tpcc_scan_monolithic_ssi():
    """Monolithic SSI: by-name scans are snapshot range reads."""
    return monolithic("ssi", TPCC_SCAN_TRANSACTIONS, name="tpcc-scan-ssi")


def tpcc_scan_2layer():
    """SSI separating the read-only transactions from one 2PL update group."""
    return Configuration(
        node(
            "ssi",
            leaf("none", "order_status", "stock_level", label="ReadOnly"),
            leaf(
                "2pl",
                "new_order",
                "payment",
                "payment_by_name",
                "delivery",
                label="2PL updates",
            ),
            label="TPCC-scan-2layer",
        ),
        name="tpcc-scan-2layer",
    )


def tpcc_scan_3layer():
    """SSI over {read-only, 2PL over {RP(NO,PAY), 2PL(by-name, delivery)}}.

    The by-name payment stays out of the RP group (its index scan needs the
    2PL predicate locks), so the cross-group 2PL node mediates the scan
    against the pipelined by-id payments — the nexus range-lock path.
    """
    return Configuration(
        node(
            "ssi",
            leaf("none", "order_status", "stock_level", label="ReadOnly"),
            node(
                "2pl",
                leaf("rp", "new_order", "payment", label="RP(NO,PAY)"),
                leaf("2pl", "payment_by_name", "delivery", label="2PL(BYNAME,DEL)"),
                label="Updates",
            ),
            label="TPCC-scan-3layer",
        ),
        name="tpcc-scan-3layer",
    )


# ---------------------------------------------------------------------------
# Table 3.1: grouping of new_order and stock_level only
# ---------------------------------------------------------------------------

def grouping_same_group():
    """new_order and stock_level pipelined in one RP group."""
    return Configuration(
        node(
            "2pl",
            leaf("rp", "new_order", "stock_level", label="RP(NO,SL)"),
            leaf("2pl", "payment", "delivery", "order_status", label="rest"),
        ),
        name="grouping-same-group",
    )


def grouping_separate():
    """new_order and stock_level in separate groups under cross-group 2PL."""
    return Configuration(
        node(
            "2pl",
            leaf("rp", "new_order", label="RP(NO)"),
            leaf("none", "stock_level", label="SL"),
            leaf("2pl", "payment", "delivery", "order_status", label="rest"),
        ),
        name="grouping-separate",
    )


# ---------------------------------------------------------------------------
# SEATS configurations (Figure 4.8 / 5.15)
# ---------------------------------------------------------------------------

def seats_monolithic_2pl():
    return monolithic("2pl", SEATS_UPDATES + SEATS_READS, name="seats-2pl")


def seats_2layer():
    """SSI separating read-only transactions from a 2PL update group."""
    return Configuration(
        node(
            "ssi",
            leaf("none", *SEATS_READS, label="ReadOnly"),
            leaf("2pl", *SEATS_UPDATES, label="2PL updates"),
            label="SEATS-2layer",
        ),
        name="seats-2layer",
    )


def seats_3layer(per_flight=True):
    """SSI over {read-only, 2PL over per-flight TSO reservation groups}."""
    instance_key = (lambda args: args.get("f_id")) if per_flight else None
    return Configuration(
        node(
            "ssi",
            leaf("none", *SEATS_READS, label="ReadOnly"),
            node(
                "2pl",
                leaf(
                    "tso",
                    "new_reservation",
                    "delete_reservation",
                    "update_reservation",
                    label="TSO per flight" if per_flight else "TSO",
                    instance_key=instance_key,
                ),
                leaf("2pl", "update_customer", label="2PL(UC)"),
                label="Updates",
            ),
            label="SEATS-3layer",
        ),
        name="seats-3layer" + ("" if per_flight else "-no-partition"),
    )


# ---------------------------------------------------------------------------
# Chapter 5: initial configuration (Figure 5.2) and manual references
# ---------------------------------------------------------------------------

def initial_configuration(transaction_types, read_only_types):
    """The automatic-configuration starting point (Figure 5.2).

    SSI at the root separating a read-only group (no CC) from a single 2PL
    group holding every update transaction — effectively MV2PL.
    """
    read_only = tuple(sorted(t for t in transaction_types if t in read_only_types))
    updates = tuple(sorted(t for t in transaction_types if t not in read_only_types))
    children = []
    if read_only:
        children.append(leaf("none", *read_only, label="ReadOnly"))
    children.append(leaf("2pl", *updates, label="2PL updates"))
    if not read_only:
        return Configuration(children[0], name="initial")
    return Configuration(node("ssi", *children, label="Initial"), name="initial")


# ---------------------------------------------------------------------------
# Cross-group micro workload (Figure 4.10 shapes, used by the checked runs)
# ---------------------------------------------------------------------------

MICRO_TRANSACTIONS = ("group_a_update", "group_b_update")


def micro_monolithic_2pl():
    return monolithic("2pl", MICRO_TRANSACTIONS, name="micro-2pl")


def micro_monolithic_ssi():
    return monolithic("ssi", MICRO_TRANSACTIONS, name="micro-ssi")


def micro_2layer():
    """2PL cross-group over two runtime-pipelining groups."""
    return Configuration(
        node(
            "2pl",
            leaf("rp", "group_a_update", label="RP(A)"),
            leaf("rp", "group_b_update", label="RP(B)"),
            label="Micro-2layer",
        ),
        name="micro-2layer",
    )


def micro_ssi_2layer():
    """SSI cross-group over an RP group and a 2PL group."""
    return Configuration(
        node(
            "ssi",
            leaf("rp", "group_a_update", label="RP(A)"),
            leaf("2pl", "group_b_update", label="2PL(B)"),
            label="Micro-SSI-2layer",
        ),
        name="micro-ssi-2layer",
    )


# ---------------------------------------------------------------------------
# SmallBank configurations
# ---------------------------------------------------------------------------

SMALLBANK_UPDATES = (
    "deposit_checking",
    "transact_savings",
    "amalgamate",
    "write_check",
    "send_payment",
)
SMALLBANK_TRANSACTIONS = ("balance",) + SMALLBANK_UPDATES


def smallbank_monolithic_2pl():
    return monolithic("2pl", SMALLBANK_TRANSACTIONS, name="smallbank-2pl")


def smallbank_monolithic_ssi():
    return monolithic("ssi", SMALLBANK_TRANSACTIONS, name="smallbank-ssi")


def smallbank_2layer():
    """SSI separating the read-only balance probe from a 2PL update group."""
    return Configuration(
        node(
            "ssi",
            leaf("none", "balance", label="ReadOnly"),
            leaf("2pl", *SMALLBANK_UPDATES, label="2PL updates"),
            label="SmallBank-2layer",
        ),
        name="smallbank-2layer",
    )


def smallbank_3layer():
    """SSI over {read-only, 2PL over {single-row RP group, multi-row 2PL group}}.

    The single-row transactions (deposit_checking, transact_savings,
    write_check) pipeline well; amalgamate and send_payment touch two
    customers and stay under plain 2PL.
    """
    return Configuration(
        node(
            "ssi",
            leaf("none", "balance", label="ReadOnly"),
            node(
                "2pl",
                leaf(
                    "rp",
                    "deposit_checking",
                    "transact_savings",
                    "write_check",
                    label="RP(single-row)",
                ),
                leaf("2pl", "amalgamate", "send_payment", label="2PL(two-row)"),
                label="Updates",
            ),
            label="SmallBank-3layer",
        ),
        name="smallbank-3layer",
    )


# ---------------------------------------------------------------------------
# YCSB configurations
# ---------------------------------------------------------------------------

YCSB_UPDATES = ("update_record", "insert_record", "read_modify_write")
YCSB_READS = ("read_record", "scan_records")
YCSB_TRANSACTIONS = YCSB_READS + YCSB_UPDATES


def ycsb_monolithic_2pl():
    return monolithic("2pl", YCSB_TRANSACTIONS, name="ycsb-2pl")


def ycsb_monolithic_ssi():
    return monolithic("ssi", YCSB_TRANSACTIONS, name="ycsb-ssi")


def ycsb_2layer():
    """SSI separating reads and scans from a 2PL update group."""
    return Configuration(
        node(
            "ssi",
            leaf("none", *YCSB_READS, label="ReadOnly"),
            leaf("2pl", *YCSB_UPDATES, label="2PL updates"),
            label="YCSB-2layer",
        ),
        name="ycsb-2layer",
    )


def ycsb_3layer():
    """SSI over {read-only, 2PL over {RP single-key writers, 2PL inserts}}."""
    return Configuration(
        node(
            "ssi",
            leaf("none", *YCSB_READS, label="ReadOnly"),
            node(
                "2pl",
                leaf("rp", "update_record", "read_modify_write", label="RP(updates)"),
                leaf("2pl", "insert_record", label="2PL(insert)"),
                label="Updates",
            ),
            label="YCSB-3layer",
        ),
        name="ycsb-3layer",
    )


def ycsb_batch():
    """Monolithic deterministic batch: the whole mix is sequenced.

    Every YCSB writer's key set is computable from its arguments and the
    scan declares its range, so the entire mix satisfies the batch
    mechanism's declarability requirement — the BOHM/DGCC configuration.
    """
    return monolithic("batch", YCSB_TRANSACTIONS, name="ycsb-batch")


def ycsb_batch_2layer():
    """SSI separating reads and scans from one deterministic batch group."""
    return Configuration(
        node(
            "ssi",
            leaf("none", *YCSB_READS, label="ReadOnly"),
            leaf("batch", *YCSB_UPDATES, label="Batch updates"),
            label="YCSB-batch-2layer",
        ),
        name="ycsb-batch-2layer",
    )


def ycsb_batch_3layer():
    """SSI over {read-only, 2PL over {batch single-key writers, 2PL inserts}}.

    The deterministic batch group replaces the RP group of ``ycsb_3layer``:
    the contended single-key writers are sequenced, while inserts stay under
    plain 2PL and conflict with them only at the cross-group nexus.
    """
    return Configuration(
        node(
            "ssi",
            leaf("none", *YCSB_READS, label="ReadOnly"),
            node(
                "2pl",
                leaf("batch", "update_record", "read_modify_write", label="Batch(updates)"),
                leaf("2pl", "insert_record", label="2PL(insert)"),
                label="Updates",
            ),
            label="YCSB-batch-3layer",
        ),
        name="ycsb-batch-3layer",
    )


# ---------------------------------------------------------------------------
# Queue/outbox configurations
# ---------------------------------------------------------------------------

QUEUE_UPDATES = ("enqueue", "dequeue", "sweep")
QUEUE_TRANSACTIONS = ("peek",) + QUEUE_UPDATES


def queue_monolithic_2pl():
    """Monolithic 2PL: dequeue scans vs enqueue inserts via predicate locks."""
    return monolithic("2pl", QUEUE_TRANSACTIONS, name="queue-2pl")


def queue_monolithic_ssi():
    """Monolithic SSI: dequeue scans register snapshot range read sets."""
    return monolithic("ssi", QUEUE_TRANSACTIONS, name="queue-ssi")


def queue_2layer():
    """SSI separating the read-only peek from one 2PL update group."""
    return Configuration(
        node(
            "ssi",
            leaf("none", "peek", label="ReadOnly"),
            leaf("2pl", *QUEUE_UPDATES, label="2PL updates"),
            label="Queue-2layer",
        ),
        name="queue-2layer",
    )


def queue_3layer():
    """SSI over {peek, 2PL over {2PL(enqueue), 2PL(dequeue, sweep)}}.

    Producers and consumers sit in *different* child groups, so the
    dequeue's bounded scan conflicts with enqueue's tail inserts at the
    internal 2PL node — the cross-group (nexus) predicate-lock path.
    """
    return Configuration(
        node(
            "ssi",
            leaf("none", "peek", label="ReadOnly"),
            node(
                "2pl",
                leaf("2pl", "enqueue", label="2PL(producer)"),
                leaf("2pl", "dequeue", "sweep", label="2PL(consumer)"),
                label="Updates",
            ),
            label="Queue-3layer",
        ),
        name="queue-3layer",
    )


# ---------------------------------------------------------------------------
# Registries
# ---------------------------------------------------------------------------

TPCC_CONFIGURATIONS = {
    "2pl": tpcc_monolithic_2pl,
    "ssi": tpcc_monolithic_ssi,
    "callas-1": tpcc_callas_1,
    "callas-2": tpcc_callas_2,
    "tebaldi-2layer": tpcc_tebaldi_2layer,
    "tebaldi-3layer": tpcc_tebaldi_3layer,
}

SEATS_CONFIGURATIONS = {
    "2pl": seats_monolithic_2pl,
    "2layer": seats_2layer,
    "3layer": seats_3layer,
}

MICRO_CONFIGURATIONS = {
    "2pl": micro_monolithic_2pl,
    "ssi": micro_monolithic_ssi,
    "2layer": micro_2layer,
    "ssi-2layer": micro_ssi_2layer,
}

SMALLBANK_CONFIGURATIONS = {
    "2pl": smallbank_monolithic_2pl,
    "ssi": smallbank_monolithic_ssi,
    "2layer": smallbank_2layer,
    "3layer": smallbank_3layer,
}

YCSB_CONFIGURATIONS = {
    "2pl": ycsb_monolithic_2pl,
    "ssi": ycsb_monolithic_ssi,
    "2layer": ycsb_2layer,
    "3layer": ycsb_3layer,
    "batch": ycsb_batch,
    "batch-2layer": ycsb_batch_2layer,
    "batch-3layer": ycsb_batch_3layer,
}

#: The scan-heavy YCSB profile (E) as its own registered workload: scans are
#: 95% of the mix, so the deterministic batch trees must carry their
#: declared-range phantom story, not just point writes.
YCSB_SCAN_CONFIGURATIONS = {
    "2pl": ycsb_monolithic_2pl,
    "ssi": ycsb_monolithic_ssi,
    "2layer": ycsb_2layer,
    "batch": ycsb_batch,
    "batch-2layer": ycsb_batch_2layer,
}

TPCC_SCAN_CONFIGURATIONS = {
    "2pl": tpcc_scan_monolithic_2pl,
    "ssi": tpcc_scan_monolithic_ssi,
    "2layer": tpcc_scan_2layer,
    "3layer": tpcc_scan_3layer,
}

QUEUE_CONFIGURATIONS = {
    "2pl": queue_monolithic_2pl,
    "ssi": queue_monolithic_ssi,
    "2layer": queue_2layer,
    "3layer": queue_3layer,
}

#: workload name -> {configuration name -> zero-argument factory}.
#: ``tpcc-scan``, ``queue`` and ``ycsb-scan`` carry range scans;
#: ``ycsb-zipf`` shares the YCSB trees (same transaction types, zipfian
#: keys at a larger keyspace) including the deterministic batch trees.
WORKLOAD_CONFIGURATIONS = {
    "tpcc": TPCC_CONFIGURATIONS,
    "tpcc-scan": TPCC_SCAN_CONFIGURATIONS,
    "seats": SEATS_CONFIGURATIONS,
    "micro": MICRO_CONFIGURATIONS,
    "smallbank": SMALLBANK_CONFIGURATIONS,
    "ycsb": YCSB_CONFIGURATIONS,
    "ycsb-zipf": YCSB_CONFIGURATIONS,
    "ycsb-scan": YCSB_SCAN_CONFIGURATIONS,
    "queue": QUEUE_CONFIGURATIONS,
}

#: workload name -> configuration names registered for crash-enabled checked
#: runs (``python -m repro.harness --faults N`` and the crash-recovery test
#: suite).  The queue/outbox workload is the flagship — exactly-once dequeue
#: must hold across a crash — with smallbank as the point-access contrast;
#: both sweep the monolithic trees and the hierarchical 2/3-layer trees so
#: recovery is exercised under every CC family the paper composes.
CRASH_CELLS = {
    "queue": ("2pl", "ssi", "2layer", "3layer"),
    "smallbank": ("2pl", "ssi", "2layer", "3layer"),
}

#: workload name -> configuration names registered for degraded-mode checked
#: runs under seeded *message* faults (``python -m repro.harness
#: --net-faults N`` and the network-chaos test suite).  The queue workload
#: is again the flagship (exactly-once dequeue under duplicated and
#: reordered commit traffic); smallbank exercises multi-participant
#: precommits (transfers span durability servers) and ycsb-zipf adds a
#: skewed-contention profile.  Each sweeps a monolithic tree and the
#: hierarchical 2/3-layer trees so retries and the admission valve run
#: under every CC family the paper composes.
CHAOS_CELLS = {
    "queue": ("2pl", "ssi", "2layer", "3layer"),
    "smallbank": ("2pl", "2layer", "3layer"),
    "ycsb-zipf": ("2pl", "2layer", "3layer"),
}
