"""The CC-tree configurations used in the paper's evaluation.

TPC-C (Figure 4.6): two monolithic baselines, the two Callas groupings, and
Tebaldi's two- and three-layer hierarchies.  The extensibility experiment
(Section 4.6.3) adds the four-layer tree with ``hot_item``.  SEATS
(Section 4.6.2, Figure 4.8) uses a monolithic 2PL baseline, a two-layer
SSI+2PL tree and the three-layer tree with per-flight TSO instances.
"""

from repro.core.config import Configuration, leaf, monolithic, node

TPCC_TRANSACTIONS = ("new_order", "payment", "delivery", "order_status", "stock_level")
SEATS_UPDATES = (
    "new_reservation",
    "delete_reservation",
    "update_reservation",
    "update_customer",
)
SEATS_READS = ("find_flights", "find_open_seats")


# ---------------------------------------------------------------------------
# TPC-C configurations (Figure 4.6)
# ---------------------------------------------------------------------------

def tpcc_monolithic_2pl(transactions=TPCC_TRANSACTIONS):
    """Monolithic two-phase locking baseline."""
    return monolithic("2pl", transactions, name="tpcc-2pl")


def tpcc_monolithic_ssi(transactions=TPCC_TRANSACTIONS):
    """Monolithic serializable snapshot isolation baseline."""
    return monolithic("ssi", transactions, name="tpcc-ssi")


def tpcc_callas_1():
    """Callas-1 (Figure 4.6a): 2PL cross-group over three groups."""
    return Configuration(
        node(
            "2pl",
            leaf("rp", "new_order", "payment", label="RP(NO,PAY)"),
            leaf("rp", "delivery", label="RP(DEL)"),
            leaf("none", "order_status", "stock_level", label="ReadOnly"),
            label="Callas-1",
        ),
        name="callas-1",
    )


def tpcc_callas_2():
    """Callas-2 (Figure 4.6b): stock_level moved into the RP group."""
    return Configuration(
        node(
            "2pl",
            leaf("rp", "new_order", "payment", "stock_level", label="RP(NO,PAY,SL)"),
            leaf("rp", "delivery", label="RP(DEL)"),
            leaf("none", "order_status", label="ReadOnly"),
            label="Callas-2",
        ),
        name="callas-2",
    )


def tpcc_tebaldi_2layer():
    """Tebaldi 2-layer (Figure 4.6c): SSI cross-group, RP update group."""
    return Configuration(
        node(
            "ssi",
            leaf("none", "order_status", "stock_level", label="ReadOnly"),
            leaf("rp", "new_order", "payment", "delivery", label="RP(NO,PAY,DEL)"),
            label="Tebaldi-2layer",
        ),
        name="tebaldi-2layer",
    )


def tpcc_tebaldi_3layer():
    """Tebaldi 3-layer (Figure 4.6d): SSI over {read-only, 2PL over {RP, RP}}."""
    return Configuration(
        node(
            "ssi",
            leaf("none", "order_status", "stock_level", label="ReadOnly"),
            node(
                "2pl",
                leaf("rp", "new_order", "payment", label="RP(NO,PAY)"),
                leaf("rp", "delivery", label="RP(DEL)"),
                label="Updates",
            ),
            label="Tebaldi-3layer",
        ),
        name="tebaldi-3layer",
    )


def tpcc_hot_item_3layer():
    """Extensibility baseline: hot_item joins the new_order/payment RP group."""
    return Configuration(
        node(
            "ssi",
            leaf("none", "order_status", "stock_level", label="ReadOnly"),
            node(
                "2pl",
                leaf("rp", "new_order", "payment", "hot_item", label="RP(NO,PAY,HOT)"),
                leaf("rp", "delivery", label="RP(DEL)"),
                label="Updates",
            ),
            label="HotItem-3layer",
        ),
        name="hot-item-3layer",
    )


def tpcc_hot_item_4layer():
    """Extensibility solution: hot_item in its own group under a cross-group RP."""
    return Configuration(
        node(
            "ssi",
            leaf("none", "order_status", "stock_level", label="ReadOnly"),
            node(
                "2pl",
                node(
                    "rp",
                    leaf("rp", "new_order", "payment", label="RP(NO,PAY)"),
                    leaf("2pl", "hot_item", label="2PL(HOT)"),
                    label="RP cross-group",
                ),
                leaf("rp", "delivery", label="RP(DEL)"),
                label="Updates",
            ),
            label="HotItem-4layer",
        ),
        name="hot-item-4layer",
    )


# ---------------------------------------------------------------------------
# Table 3.1: grouping of new_order and stock_level only
# ---------------------------------------------------------------------------

def grouping_same_group():
    """new_order and stock_level pipelined in one RP group."""
    return Configuration(
        node(
            "2pl",
            leaf("rp", "new_order", "stock_level", label="RP(NO,SL)"),
            leaf("2pl", "payment", "delivery", "order_status", label="rest"),
        ),
        name="grouping-same-group",
    )


def grouping_separate():
    """new_order and stock_level in separate groups under cross-group 2PL."""
    return Configuration(
        node(
            "2pl",
            leaf("rp", "new_order", label="RP(NO)"),
            leaf("none", "stock_level", label="SL"),
            leaf("2pl", "payment", "delivery", "order_status", label="rest"),
        ),
        name="grouping-separate",
    )


# ---------------------------------------------------------------------------
# SEATS configurations (Figure 4.8 / 5.15)
# ---------------------------------------------------------------------------

def seats_monolithic_2pl():
    return monolithic("2pl", SEATS_UPDATES + SEATS_READS, name="seats-2pl")


def seats_2layer():
    """SSI separating read-only transactions from a 2PL update group."""
    return Configuration(
        node(
            "ssi",
            leaf("none", *SEATS_READS, label="ReadOnly"),
            leaf("2pl", *SEATS_UPDATES, label="2PL updates"),
            label="SEATS-2layer",
        ),
        name="seats-2layer",
    )


def seats_3layer(per_flight=True):
    """SSI over {read-only, 2PL over per-flight TSO reservation groups}."""
    instance_key = (lambda args: args.get("f_id")) if per_flight else None
    return Configuration(
        node(
            "ssi",
            leaf("none", *SEATS_READS, label="ReadOnly"),
            node(
                "2pl",
                leaf(
                    "tso",
                    "new_reservation",
                    "delete_reservation",
                    "update_reservation",
                    label="TSO per flight" if per_flight else "TSO",
                    instance_key=instance_key,
                ),
                leaf("2pl", "update_customer", label="2PL(UC)"),
                label="Updates",
            ),
            label="SEATS-3layer",
        ),
        name="seats-3layer" + ("" if per_flight else "-no-partition"),
    )


# ---------------------------------------------------------------------------
# Chapter 5: initial configuration (Figure 5.2) and manual references
# ---------------------------------------------------------------------------

def initial_configuration(transaction_types, read_only_types):
    """The automatic-configuration starting point (Figure 5.2).

    SSI at the root separating a read-only group (no CC) from a single 2PL
    group holding every update transaction — effectively MV2PL.
    """
    read_only = tuple(sorted(t for t in transaction_types if t in read_only_types))
    updates = tuple(sorted(t for t in transaction_types if t not in read_only_types))
    children = []
    if read_only:
        children.append(leaf("none", *read_only, label="ReadOnly"))
    children.append(leaf("2pl", *updates, label="2PL updates"))
    if not read_only:
        return Configuration(children[0], name="initial")
    return Configuration(node("ssi", *children, label="Initial"), name="initial")


TPCC_CONFIGURATIONS = {
    "2pl": tpcc_monolithic_2pl,
    "ssi": tpcc_monolithic_ssi,
    "callas-1": tpcc_callas_1,
    "callas-2": tpcc_callas_2,
    "tebaldi-2layer": tpcc_tebaldi_2layer,
    "tebaldi-3layer": tpcc_tebaldi_3layer,
}

SEATS_CONFIGURATIONS = {
    "2pl": seats_monolithic_2pl,
    "2layer": seats_2layer,
    "3layer": seats_3layer,
}
