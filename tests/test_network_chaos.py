"""Network chaos for the TC/DS protocol: message faults, timeout/retry/
backoff, and graceful degradation under the oracle.

Four layers of coverage:

* unit tests for the message fault plan/injector (determinism, validation,
  gap scheduling, phase targeting, partition windows) and the jittered
  network model (seeded determinism, jitter=0 byte-compat, parameter
  validation);
* unit tests for retry idempotency at the receivers: commit-ticket dedup in
  the durability layer, idempotent allocation at the timestamp server, and
  the engine's robust-exchange semantics (drop-then-retry commits once,
  lost replies apply exactly once, unreachable servers abort cleanly);
* the admission valve: a long partition backs the retry queues up past the
  threshold, new transactions park, and the engine recovers when the
  partition heals — all in one checked history;
* fixed-seed end-to-end scenarios: every chaos cell (queue, smallbank,
  ycsb-zipf x monolithic/2-layer/3-layer trees) runs through at least one
  drop-with-retry and one partition-and-heal window and passes the oracle
  plus the exactly-once/durability checks; an adversarial duplication+
  reorder storm aimed at the commit exchange cannot double-dequeue; a
  deliberately broken dedup is caught; an attached-but-empty fault plan is
  byte-identical to no injector at all; plus a randomized soak behind the
  ``slow`` marker.
"""

import pytest

from repro.cc.timestamps import TimestampOracle
from repro.core.engine import EngineOptions, TebaldiEngine
from repro.errors import ConfigurationError, TransactionAborted
from repro.harness.cli import build_workload, main as harness_main
from repro.harness.configs import CHAOS_CELLS, WORKLOAD_CONFIGURATIONS
from repro.harness.degraded import (
    DegradedRunner,
    default_degraded_durability,
    default_degraded_options,
    retransmit_violations,
    run_degraded_benchmark,
)
from repro.sim.environment import Environment
from repro.sim.faults import (
    MESSAGE_FAULT_KINDS,
    MessageFault,
    MessageFaultInjector,
    MessageFaultPlan,
)
from repro.sim.network import TIMESTAMP_SERVER, ClusterModel, NetworkModel
from repro.storage.durability import DurabilityManager
from repro.storage.mvstore import MultiVersionStore
from repro.workloads.queue import QueueWorkload


# ---------------------------------------------------------------------------
# Fault plans and the injector
# ---------------------------------------------------------------------------


class TestMessageFaultPlan:
    def test_from_seed_is_deterministic(self):
        first = MessageFaultPlan.from_seed(42, faults=5)
        second = MessageFaultPlan.from_seed(42, faults=5)
        assert first == second
        assert len(first) == 5
        assert all(p.kind in MESSAGE_FAULT_KINDS for p in first.points)

    def test_different_seeds_differ(self):
        plans = {MessageFaultPlan.from_seed(seed, faults=6) for seed in range(8)}
        assert len(plans) > 1

    def test_require_pins_kinds_without_shifting_the_stream(self):
        plain = MessageFaultPlan.from_seed(7, faults=4)
        pinned = MessageFaultPlan.from_seed(7, faults=4, require=("drop", "partition"))
        assert pinned.points[0].kind == "drop"
        assert pinned.points[1].kind == "partition"
        # Every drawn attribute other than the pinned kind is unchanged.
        for before, after in zip(plain.points, pinned.points):
            assert before.occurrence == after.occurrence
            assert before.magnitude == after.magnitude
            assert before.duration == after.duration
            assert before.lost_reply == after.lost_reply
        assert plain.points[2:] == pinned.points[2:]

    def test_require_extends_short_plans(self):
        plan = MessageFaultPlan.from_seed(7, faults=0, require=("drop", "partition"))
        assert [p.kind for p in plan.points] == ["drop", "partition"]

    def test_fault_validation(self):
        with pytest.raises(ValueError):
            MessageFault(kind="gremlin")
        with pytest.raises(ValueError):
            MessageFault(kind="drop", occurrence=0)
        with pytest.raises(ValueError):
            MessageFault(kind="delay", magnitude=0)
        with pytest.raises(ValueError):
            MessageFault(kind="partition", duration=-1.0)
        with pytest.raises(ValueError):
            MessageFaultPlan.from_seed(7, faults=-1)


class TestMessageFaultInjector:
    def test_empty_plan_is_disabled(self):
        injector = MessageFaultInjector(MessageFaultPlan())
        assert not injector.enabled
        assert not injector.has_pending()
        assert injector.disposition(0.0, (0,), "start") is None

    def test_gap_scheduling_counts_sends(self):
        plan = MessageFaultPlan(points=(
            MessageFault(kind="drop", occurrence=3),
            MessageFault(kind="delay", occurrence=2),
        ))
        injector = MessageFaultInjector(plan)
        assert injector.disposition(0.0, (0,), "start") is None
        assert injector.disposition(0.0, (0,), "start") is None
        third = injector.disposition(0.0, (0,), "start")
        assert third is not None and third.kind == "drop"
        # The gap resets: the next point needs two more counted sends.
        assert injector.disposition(0.0, (0,), "start") is None
        fifth = injector.disposition(0.0, (0,), "start")
        assert fifth is not None and fifth.kind == "delay"
        assert not injector.has_pending()

    def test_phase_filter_keeps_the_point_armed(self):
        plan = MessageFaultPlan(points=(
            MessageFault(kind="duplicate", occurrence=1, phases=("precommit",)),
        ))
        injector = MessageFaultInjector(plan)
        # Gap reached, but the phase does not match: stays armed, no fire.
        assert injector.disposition(0.0, (0,), "start") is None
        assert injector.disposition(0.0, (0,), "validate") is None
        fired = injector.disposition(0.0, (0,), "precommit")
        assert fired is not None and fired.kind == "duplicate"

    def test_partition_window_does_not_consume_points(self):
        plan = MessageFaultPlan(points=(
            MessageFault(kind="partition", occurrence=1, duration=0.5),
            MessageFault(kind="drop", occurrence=1),
        ))
        injector = MessageFaultInjector(plan)
        fired = injector.disposition(0.0, (0, 1), "precommit")
        assert fired.kind == "partition"
        assert injector.partitioned_until(0) == pytest.approx(0.5)
        assert injector.partitioned_until(1) == pytest.approx(0.5)
        # Inside the window: every touching send fails as a partition but
        # the second planned point is still pending.
        inside = injector.disposition(0.25, (0,), "start")
        assert inside.kind == "partition"
        assert injector.has_pending()
        assert injector.stats["partitioned_sends"] == 1
        # Healed: the drop point fires on the next counted send.
        after = injector.disposition(0.75, (0,), "start")
        assert after is not None and after.kind == "drop"
        assert not injector.has_pending()

    def test_fault_log_records_partition_heal_time(self):
        plan = MessageFaultPlan(points=(
            MessageFault(kind="partition", occurrence=1, duration=0.25),
        ))
        injector = MessageFaultInjector(plan)
        injector.disposition(1.0, (2,), "precommit")
        (entry,) = injector.fault_log
        assert entry["kind"] == "partition"
        assert entry["heals_at"] == pytest.approx(1.25)


# ---------------------------------------------------------------------------
# Network model: jitter, validation, the send() message layer
# ---------------------------------------------------------------------------


class TestNetworkModel:
    def test_zero_jitter_is_exact_and_never_draws(self):
        network = NetworkModel(rtt=100e-6, jitter=0.0, seed=9)
        for _ in range(5):
            assert network.round_trip() == 100e-6
        # The RNG is lazily created on the first non-zero draw; with
        # jitter pinned to 0.0 it must never exist at all.
        assert network._rng is None

    def test_jitter_is_seeded_and_deterministic(self):
        first = NetworkModel(rtt=100e-6, jitter=50e-6, seed=3)
        second = NetworkModel(rtt=100e-6, jitter=50e-6, seed=3)
        draws_a = [first.round_trip() for _ in range(20)]
        draws_b = [second.round_trip() for _ in range(20)]
        assert draws_a == draws_b
        assert all(100e-6 <= draw <= 150e-6 for draw in draws_a)
        assert len(set(draws_a)) > 1
        other = NetworkModel(rtt=100e-6, jitter=50e-6, seed=4)
        assert [other.round_trip() for _ in range(20)] != draws_a

    def test_negative_parameters_are_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(rtt=-1e-6)
        with pytest.raises(ConfigurationError):
            NetworkModel(timestamp_rtt=-1e-6)
        with pytest.raises(ConfigurationError):
            NetworkModel(jitter=-1e-6)

    def test_negative_round_trip_counts_are_rejected(self):
        env = Environment()
        cluster = ClusterModel(env)
        with pytest.raises(ConfigurationError):
            next(cluster.network_delay(-1))
        with pytest.raises(ConfigurationError):
            next(cluster.send(round_trips=0))


def run_sends(plan, sends, network=None):
    """Drive ``sends`` (kwargs dicts) through one cluster; return deliveries."""
    env = Environment()
    cluster = ClusterModel(env, network=network or NetworkModel())
    if plan is not None:
        cluster.message_faults = MessageFaultInjector(plan)
    deliveries = []

    def driver():
        for kwargs in sends:
            outcome = yield from cluster.send(**kwargs)
            deliveries.append(outcome)

    env.process(driver(), name="driver")
    env.run()
    return env, cluster, deliveries


class TestMessageLayer:
    def test_clean_send_delivers_at_base_rtt(self):
        env, cluster, (outcome,) = run_sends(None, [{"dsts": (0,)}])
        assert outcome.delivered and outcome.request_reached
        assert outcome.delay == pytest.approx(cluster.network.rtt)
        assert env.now == pytest.approx(cluster.network.rtt)
        link = cluster.link(0)
        assert (link.sent, link.delivered, link.dropped) == (1, 1, 0)

    def test_timestamp_sends_use_timestamp_rtt(self):
        network = NetworkModel(rtt=100e-6, timestamp_rtt=300e-6)
        _env, _cluster, (outcome,) = run_sends(
            None, [{"dsts": (TIMESTAMP_SERVER,)}], network=network
        )
        assert outcome.delay == pytest.approx(300e-6)

    def test_drop_times_out_without_reaching(self):
        plan = MessageFaultPlan(points=(MessageFault(kind="drop", occurrence=1),))
        _env, cluster, (outcome,) = run_sends(plan, [{"dsts": (0,)}])
        assert not outcome.delivered and not outcome.request_reached
        assert outcome.fault == "drop"
        assert cluster.link(0).dropped == 1

    def test_lost_reply_reaches_but_does_not_deliver(self):
        plan = MessageFaultPlan(points=(
            MessageFault(kind="drop", occurrence=1, lost_reply=True),
        ))
        _env, _cluster, (outcome,) = run_sends(plan, [{"dsts": (0,)}])
        assert not outcome.delivered
        assert outcome.request_reached
        assert outcome.fault == "drop-reply"

    def test_delay_spike_still_delivers(self):
        plan = MessageFaultPlan(points=(
            MessageFault(kind="delay", occurrence=1, magnitude=5.0),
        ))
        env, cluster, (outcome,) = run_sends(plan, [{"dsts": (0,)}])
        assert outcome.delivered and outcome.fault == "delay"
        assert outcome.delay == pytest.approx(5 * cluster.network.rtt)
        assert cluster.link(0).delayed == 1

    def test_duplicate_delivers_with_flag(self):
        plan = MessageFaultPlan(points=(
            MessageFault(kind="duplicate", occurrence=1),
        ))
        _env, cluster, (outcome,) = run_sends(plan, [{"dsts": (0,)}])
        assert outcome.delivered and outcome.duplicated
        assert cluster.link(0).duplicated == 1

    def test_partition_fails_sends_until_heal(self):
        plan = MessageFaultPlan(points=(
            MessageFault(kind="partition", occurrence=1, duration=0.01),
        ))
        sends = [{"dsts": (0,), "timeout": 0.002}] * 3
        _env, cluster, deliveries = run_sends(plan, sends)
        # First send opens the window; the second (at ~0.002) is inside it;
        # the third lands after depending on the timeouts — at minimum the
        # first two fail as partitions.
        assert deliveries[0].fault == "partition"
        assert deliveries[1].fault == "partition"
        assert cluster.link(0).partitioned_until == pytest.approx(0.01)

    def test_partition_heals_by_time(self):
        plan = MessageFaultPlan(points=(
            MessageFault(kind="partition", occurrence=1, duration=0.004),
        ))
        sends = [{"dsts": (0,), "timeout": 0.005}] * 2
        _env, _cluster, deliveries = run_sends(plan, sends)
        assert deliveries[0].fault == "partition"
        # The second send starts at 0.005 > heal time 0.004: clean delivery.
        assert deliveries[1].delivered


# ---------------------------------------------------------------------------
# Receiver-side idempotency units
# ---------------------------------------------------------------------------


def make_txn_like(txn_id):
    class _Txn:
        pass

    txn = _Txn()
    txn.txn_id = txn_id
    return txn


class TestCommitTicketDedup:
    def test_duplicate_precommit_returns_same_epoch_and_ticket(self):
        manager = DurabilityManager(default_degraded_durability())
        txn = make_txn_like(11)
        writes = [(("rows", 1), "a"), (("rows", 2), "b")]
        first = manager.precommit(txn, writes)
        records_after_first = manager.records_written
        second = manager.precommit(txn, writes)
        assert second == first
        assert manager.records_written == records_after_first
        assert manager.duplicate_precommits == 1
        assert retransmit_violations(manager) == {}

    def test_broken_dedup_mints_second_ticket_and_is_caught(self):
        manager = DurabilityManager(default_degraded_durability())
        manager.dedup_enabled = False
        txn = make_txn_like(11)
        writes = [(("rows", 1), "a")]
        manager.precommit(txn, writes)
        manager.precommit(txn, writes)
        violations = retransmit_violations(manager)
        assert 11 in violations
        assert len(violations[11]) == 2

    def test_distinct_transactions_are_not_flagged(self):
        manager = DurabilityManager(default_degraded_durability())
        manager.precommit(make_txn_like(1), [(("rows", 1), "a")])
        manager.precommit(make_txn_like(2), [(("rows", 1), "b")])
        assert retransmit_violations(manager) == {}


class TestIdempotentTimestamps:
    def test_next_for_returns_cached_value(self):
        oracle = TimestampOracle()
        token = ("timestamp", 5)
        first = oracle.next_for(token)
        again = oracle.next_for(token)
        assert again == first
        assert oracle.duplicate_requests == 1
        # A different token advances normally.
        assert oracle.next_for(("timestamp", 6)) > first

    def test_release_frees_the_reservation(self):
        oracle = TimestampOracle()
        token = ("timestamp", 5)
        first = oracle.next_for(token)
        oracle.release(token)
        assert oracle.next_for(token) > first


# ---------------------------------------------------------------------------
# Engine-level robust exchange semantics
# ---------------------------------------------------------------------------


def build_chaos_engine(plan, workload=None, config_name="2layer",
                       durable=True, options=None):
    """Engine + env wired for degraded mode over the queue workload."""
    workload = workload or QueueWorkload(initial_messages=6, window=8)
    configuration = WORKLOAD_CONFIGURATIONS["queue"][config_name]()
    manager = DurabilityManager(default_degraded_durability()) if durable else None
    store = MultiVersionStore()
    workload.populate(store)
    env = Environment()
    engine = TebaldiEngine(
        env,
        configuration,
        workload.transaction_types(),
        store=store,
        options=options or default_degraded_options(seed=5),
        durability=manager,
    )
    engine.cluster.message_faults = MessageFaultInjector(plan)
    return env, engine, manager, workload


def run_one(env, engine, txn_type, args):
    outcome = {}

    def probe():
        try:
            txn = yield from engine.execute_transaction(txn_type, args)
            outcome["txn"] = txn
        except TransactionAborted as aborted:
            outcome["aborted"] = aborted

    env.process(probe(), name="probe")
    env.run()
    return outcome


class TestRobustExchange:
    def test_dropped_commit_retries_and_commits_once(self):
        plan = MessageFaultPlan(points=(
            MessageFault(kind="drop", occurrence=1, phases=("precommit",)),
        ))
        env, engine, manager, _workload = build_chaos_engine(plan)
        outcome = run_one(env, engine, "enqueue", {"payload": "m"})
        assert "txn" in outcome
        assert engine.net_stats["retries"] >= 1
        assert engine.stats.commits == 1
        assert retransmit_violations(manager) == {}

    def test_lost_reply_applies_exactly_once(self):
        plan = MessageFaultPlan(points=(
            MessageFault(kind="drop", occurrence=1, lost_reply=True,
                         phases=("precommit",)),
        ))
        env, engine, manager, _workload = build_chaos_engine(plan)
        outcome = run_one(env, engine, "enqueue", {"payload": "m"})
        assert "txn" in outcome
        # The retransmit re-entered the durability layer and was absorbed.
        assert engine.net_stats["retransmit_applies"] >= 1
        assert manager.duplicate_precommits >= 1
        assert retransmit_violations(manager) == {}
        assert engine.stats.commits == 1

    def test_duplicated_commit_applies_exactly_once(self):
        plan = MessageFaultPlan(points=(
            MessageFault(kind="duplicate", occurrence=1, phases=("precommit",)),
        ))
        env, engine, manager, _workload = build_chaos_engine(plan)
        outcome = run_one(env, engine, "enqueue", {"payload": "m"})
        assert "txn" in outcome
        assert engine.net_stats["duplicate_deliveries"] == 1
        assert manager.duplicate_precommits >= 1
        assert retransmit_violations(manager) == {}
        assert engine.stats.commits == 1

    def test_unreachable_server_aborts_cleanly(self):
        plan = MessageFaultPlan(points=(
            MessageFault(kind="partition", occurrence=1, duration=5.0,
                         phases=("start",)),
        ))
        env, engine, _manager, _workload = build_chaos_engine(plan)
        outcome = run_one(env, engine, "enqueue", {"payload": "m"})
        aborted = outcome["aborted"]
        assert aborted.reason.startswith("net-unreachable")
        assert engine.net_stats["unreachable_aborts"] == 1
        assert engine.stats.commits == 0

    def test_broken_dedup_double_applies_and_is_caught(self):
        # The mutation test at engine level: same lost-reply plan as the
        # exactly-once test, dedup switched off — the durable log must show
        # the double application.
        plan = MessageFaultPlan(points=(
            MessageFault(kind="drop", occurrence=1, lost_reply=True,
                         phases=("precommit",)),
        ))
        env, engine, manager, _workload = build_chaos_engine(plan)
        manager.dedup_enabled = False
        outcome = run_one(env, engine, "enqueue", {"payload": "m"})
        assert "txn" in outcome
        violations = retransmit_violations(manager)
        assert violations, "broken commit-ticket dedup must be caught"
        assert outcome["txn"].txn_id in violations


# ---------------------------------------------------------------------------
# Graceful degradation: the admission valve
# ---------------------------------------------------------------------------


class TestAdmissionValve:
    def test_partition_parks_new_transactions_and_heals(self):
        # Partition every durability server for a long window; the retry
        # backlog passes the (low) threshold, new transactions park, and
        # once the window heals the engine drains and keeps committing.
        plan = MessageFaultPlan(points=(
            MessageFault(kind="partition", occurrence=10, duration=0.05,
                         servers=(0, 1, 2, 3)),
        ))
        options = default_degraded_options(seed=3)
        options.net_park_threshold = 3
        runner = DegradedRunner(
            build_workload("smallbank"),
            WORKLOAD_CONFIGURATIONS["smallbank"]["2layer"](),
            seed=3,
            options=options,
            fault_plan=plan,
        )
        result = runner.run(clients=10, duration=0.4)
        assert result.net_stats["degraded_windows"] >= 1
        assert result.net_stats["parked"] >= 1
        heal = result.fault_log[0]["heals_at"]
        history = result.extra["recorder"].history()
        post_heal = [
            txn for txn in history.transactions.values() if txn.end_time > heal
        ]
        assert post_heal, "the engine must recover and commit after the heal"
        assert result.violations == {}


# ---------------------------------------------------------------------------
# Empty plan == no injector, byte for byte
# ---------------------------------------------------------------------------


def run_pinned(attach_empty_injector):
    workload = QueueWorkload(initial_messages=6, window=8)
    configuration = WORKLOAD_CONFIGURATIONS["queue"]["3layer"]()
    runner = DegradedRunner(
        workload,
        configuration,
        seed=13,
        fault_plan=MessageFaultPlan(),  # empty
    )
    if not attach_empty_injector:
        runner.injector = None
    manager = DurabilityManager(runner.durability_config)
    store = MultiVersionStore()
    workload.populate(store)
    env = Environment()
    engine = TebaldiEngine(
        env,
        configuration,
        workload.transaction_types(),
        store=store,
        options=runner.options,
        durability=manager,
    )
    if runner.injector is not None:
        engine.cluster.message_faults = runner.injector
    stop_event = env.event(name="stop")
    engine.start_services(stop_event)
    mix = workload.validate_mix(workload.mix())
    from repro.harness.parallel import derive_point_seed

    for client_id in range(8):
        rng = workload.make_rng(derive_point_seed(13, "net-client", 0, client_id))
        env.process(
            runner._client(env, engine, stop_event, rng, mix, client_id),
            name=f"client-{client_id}",
        )
    env.run(until=0.3)
    return (
        engine.stats.commits,
        engine.stats.aborts,
        sorted(engine.committed_ids),
        sorted((repr(k), repr(v)) for k, v in store.latest_state().items()),
        env.now,
    )


class TestEmptyPlanIsByteIdentical:
    def test_attached_empty_plan_matches_plain_run(self):
        plain = run_pinned(attach_empty_injector=False)
        empty = run_pinned(attach_empty_injector=True)
        assert plain == empty


# ---------------------------------------------------------------------------
# End-to-end chaos cells
# ---------------------------------------------------------------------------


CHAOS_CELL_PARAMS = [
    (workload_name, config_name)
    for workload_name, config_names in sorted(CHAOS_CELLS.items())
    for config_name in config_names
]


class TestChaosCells:
    @pytest.mark.parametrize("workload_name,config_name", CHAOS_CELL_PARAMS)
    def test_cell_survives_drop_and_partition(self, workload_name, config_name):
        workload = build_workload(workload_name)
        configuration = WORKLOAD_CONFIGURATIONS[workload_name][config_name]()
        result = run_degraded_benchmark(
            workload,
            configuration,
            clients=8,
            duration=0.4,
            seed=11,
            faults=4,
            require=("drop", "partition"),
        )
        kinds = [fault["kind"] for fault in result.fault_log]
        assert "drop" in kinds
        assert "partition" in kinds
        assert result.commits > 0
        assert result.violations == {}
        assert result.extra["isolation"].ok

    def test_fixed_seed_reproduces_byte_identically(self):
        def run():
            return run_degraded_benchmark(
                build_workload("queue"),
                WORKLOAD_CONFIGURATIONS["queue"]["2layer"](),
                clients=8,
                duration=0.3,
                seed=23,
            )

        first, second = run(), run()
        assert first.commits == second.commits
        assert first.aborts == second.aborts
        assert first.fault_log == second.fault_log
        assert first.net_stats == second.net_stats

    def test_adversarial_duplication_reorder_storm_keeps_exactly_once(self):
        # Aim every fault at the commit exchange: lost replies, duplicated
        # deliveries and reorders in a row.  Exactly-once dequeue and the
        # single-ticket invariant must survive the storm.
        points = []
        for _ in range(4):
            points.extend([
                MessageFault(kind="drop", occurrence=2, lost_reply=True,
                             phases=("precommit",)),
                MessageFault(kind="duplicate", occurrence=2,
                             phases=("precommit",)),
                MessageFault(kind="reorder", occurrence=2, magnitude=6.0,
                             phases=("precommit",)),
            ])
        runner = DegradedRunner(
            build_workload("queue"),
            WORKLOAD_CONFIGURATIONS["queue"]["2layer"](),
            seed=17,
            fault_plan=MessageFaultPlan(points=tuple(points)),
        )
        result = runner.run(clients=8, duration=0.4)
        assert result.violations == {}
        assert result.net_stats["retransmit_applies"] >= 1
        assert result.net_stats["duplicate_deliveries"] >= 1
        assert result.extra["isolation"].ok

    def test_mutation_broken_dedup_is_caught_end_to_end(self):
        points = tuple(
            MessageFault(kind="drop", occurrence=2, lost_reply=True,
                         phases=("precommit",))
            for _ in range(3)
        )
        runner = DegradedRunner(
            build_workload("queue"),
            WORKLOAD_CONFIGURATIONS["queue"]["2layer"](),
            seed=17,
            fault_plan=MessageFaultPlan(points=points),
            dedup_enabled=False,
        )
        result = runner.run(clients=8, duration=0.4, raise_on_violation=False)
        assert "duplicate_tickets" in result.violations, (
            "a deliberately broken commit-ticket dedup must be caught"
        )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestNetFaultsCLI:
    def test_quick_run_passes(self, capsys):
        code = harness_main([
            "--workload", "queue", "--config", "2layer",
            "--net-faults", "2", "--quick", "--workers", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "degraded-mode checked runs passed" in out
        assert "faults:" in out

    def test_negative_net_faults_rejected(self):
        with pytest.raises(SystemExit):
            harness_main(["--workload", "queue", "--net-faults", "-1"])

    def test_no_check_rejected(self):
        with pytest.raises(SystemExit):
            harness_main(["--workload", "queue", "--net-faults", "1", "--no-check"])

    def test_unregistered_workload_rejected(self):
        with pytest.raises(SystemExit):
            harness_main(["--workload", "micro", "--net-faults", "1"])

    def test_mutually_exclusive_with_crash_faults(self):
        with pytest.raises(SystemExit):
            harness_main([
                "--workload", "queue", "--faults", "1", "--net-faults", "1",
            ])


# ---------------------------------------------------------------------------
# Randomized soak (slow lane)
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestChaosSoak:
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_fault_schedules(self, seed):
        for workload_name, config_name in (("queue", "3layer"), ("smallbank", "2layer")):
            result = run_degraded_benchmark(
                build_workload(workload_name),
                WORKLOAD_CONFIGURATIONS[workload_name][config_name](),
                clients=10,
                duration=0.5,
                seed=1000 + seed,
                faults=6,
            )
            assert result.violations == {}
            assert result.extra["isolation"].ok
