"""Parallel experiment executor: determinism and serial/parallel equivalence."""

import multiprocessing

import pytest

from repro.core.config import monolithic
from repro.harness.parallel import available_workers, derive_point_seed, run_tasks
from repro.harness.sweep import client_sweep
from repro.workloads.micro import CrossGroupConflictWorkload

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _square(value):
    return value * value


class TestRunTasks:
    def test_results_in_task_order(self):
        tasks = [lambda v=v: _square(v) for v in range(8)]
        assert run_tasks(tasks, workers=1) == [v * v for v in range(8)]
        if HAS_FORK:
            assert run_tasks(tasks, workers=4) == [v * v for v in range(8)]

    def test_empty_and_single(self):
        assert run_tasks([], workers=4) == []
        assert run_tasks([lambda: 42], workers=4) == [42]

    def test_worker_count_is_clamped(self):
        assert run_tasks([lambda: 1, lambda: 2], workers=999) == [1, 2]

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_nested_calls_degrade_to_serial(self):
        def outer(v):
            def task():
                return run_tasks([lambda: v, lambda: v + 1], workers=2)
            return task

        assert run_tasks([outer(0), outer(10)], workers=2) == [[0, 1], [10, 11]]

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_task_exceptions_propagate(self):
        def boom():
            raise RuntimeError("task failed")

        with pytest.raises(RuntimeError):
            run_tasks([boom, boom], workers=2)

    def test_available_workers_positive(self):
        assert available_workers() >= 1


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_point_seed(7, "tpcc", "2pl", 40) == derive_point_seed(
            7, "tpcc", "2pl", 40
        )

    def test_every_component_matters(self):
        base = derive_point_seed(7, "tpcc", "2pl", 40)
        assert derive_point_seed(8, "tpcc", "2pl", 40) != base
        assert derive_point_seed(7, "seats", "2pl", 40) != base
        assert derive_point_seed(7, "tpcc", "ssi", 40) != base
        assert derive_point_seed(7, "tpcc", "2pl", 41) != base

    def test_seed_in_rng_range(self):
        seed = derive_point_seed(123456789, "a-long-workload-name", "config", 10_000)
        assert 0 <= seed < 2**31


def _micro_workload():
    return CrossGroupConflictWorkload(shared_rows=8, cold_rows=60)


def _micro_config():
    return monolithic("2pl", ("group_a_update", "group_b_update"))


def _sweep_signature(series):
    return [
        (clients, result.commits, result.aborts, result.throughput)
        for clients, result in series
    ]


class TestSerialParallelEquivalence:
    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_client_sweep_identical_across_worker_counts(self):
        kwargs = dict(
            client_counts=(4, 8),
            duration=0.15,
            warmup=0.05,
        )
        serial = client_sweep(_micro_workload, _micro_config, workers=1, **kwargs)
        parallel = client_sweep(_micro_workload, _micro_config, workers=2, **kwargs)
        assert _sweep_signature(serial) == _sweep_signature(parallel)

    def test_sweep_points_use_distinct_derived_seeds(self):
        series = client_sweep(
            _micro_workload,
            _micro_config,
            client_counts=(4, 8),
            duration=0.1,
            warmup=0.0,
            workers=1,
        )
        # Different client counts derive different seeds; with the same
        # seed the 4-client prefix of both runs would coincide — commits
        # differing while both runs stay deterministic is the cheap proxy.
        assert len(series) == 2
        assert all(result.commits > 0 for _clients, result in series)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_cli_registry_slice_identical_serial_vs_parallel(self, capsys):
        """Same registry slice, same report, whatever the worker count."""
        from repro.harness.cli import main

        argv = [
            "--workload", "micro",
            "--config", "2pl", "--config", "ssi",
            "--clients", "4",
            "--duration", "0.1", "--warmup", "0.0",
        ]
        assert main(argv + ["--workers", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out
        assert "isolation OK" in serial_out

    def test_cli_all_flag_quick(self, capsys):
        from repro.harness.cli import main

        with pytest.raises(SystemExit):
            main(["--all", "--config", "2pl"])
        capsys.readouterr()


class TestRunnerStillSerialByDefault:
    def test_run_benchmark_unchanged_by_executor(self):
        """Direct run_benchmark calls (fixed-seed tests, bench_speed) are
        untouched by the executor: same seed plumbing as before."""
        from repro.harness.runner import run_benchmark

        workload = _micro_workload()
        result = run_benchmark(
            workload,
            _micro_config(),
            clients=4,
            duration=0.1,
            warmup=0.0,
            seed=7,
        )
        repeat = run_benchmark(
            _micro_workload(),
            _micro_config(),
            clients=4,
            duration=0.1,
            warmup=0.0,
            seed=7,
        )
        assert (result.commits, result.aborts) == (repeat.commits, repeat.aborts)
