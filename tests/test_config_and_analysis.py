"""Tests for CC-tree configurations, static analysis and transaction profiles."""

import pytest

from repro.analysis.chopping import check_choppable
from repro.analysis.profiles import TransactionProfile, TransactionType
from repro.analysis.rp_analysis import analyze_pipeline
from repro.core.config import CCSpec, Configuration, leaf, monolithic, node
from repro.errors import AnalysisError, ConfigurationError
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.tpcc.transactions import PROFILES


class TestConfiguration:
    def test_monolithic_has_single_leaf(self):
        config = monolithic("2pl", ("a", "b"))
        assert config.depth() == 1
        assert config.root.is_leaf
        assert set(config.transaction_types) == {"a", "b"}

    def test_leaf_lookup(self):
        config = Configuration(node("2pl", leaf("rp", "a"), leaf("none", "b")))
        assert config.leaf_for("a").cc == "rp"
        assert config.leaf_for("b").cc == "none"

    def test_unknown_type_raises(self):
        config = monolithic("2pl", ("a",))
        with pytest.raises(ConfigurationError):
            config.leaf_for("missing")

    def test_duplicate_assignment_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration(node("2pl", leaf("rp", "a"), leaf("rp", "a")))

    def test_internal_node_with_transactions_rejected(self):
        bad = CCSpec(cc="2pl", transactions=("a",), children=[leaf("rp", "b")])
        with pytest.raises(ConfigurationError):
            Configuration(bad)

    def test_empty_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration(node("2pl", node("ssi")))

    def test_depth_of_three_layer_tree(self):
        config = Configuration(
            node("ssi", leaf("none", "r"), node("2pl", leaf("rp", "a"), leaf("rp", "b")))
        )
        assert config.depth() == 3

    def test_clone_is_independent(self):
        config = Configuration(node("2pl", leaf("rp", "a"), leaf("none", "b")))
        clone = config.clone(name="copy")
        clone.root.children[0].cc = "tso"
        assert config.leaf_for("a").cc == "rp"
        assert clone.leaf_for("a").cc == "tso"

    def test_signature_detects_structural_equality(self):
        one = Configuration(node("2pl", leaf("rp", "a"), leaf("none", "b")))
        two = Configuration(node("2pl", leaf("rp", "a"), leaf("none", "b")))
        three = Configuration(node("ssi", leaf("rp", "a"), leaf("none", "b")))
        assert one.signature() == two.signature()
        assert one.signature() != three.signature()

    def test_describe_mentions_all_transactions(self):
        config = Configuration(node("2pl", leaf("rp", "a", "b"), leaf("none", "c")))
        text = config.describe()
        for name in ("a", "b", "c"):
            assert name in text

    def test_all_transactions_document_order(self):
        spec = node("2pl", leaf("rp", "a", "b"), leaf("none", "c"))
        assert spec.all_transactions() == ["a", "b", "c"]


class TestProfiles:
    def test_tables_deduplicated_in_order(self):
        profile = TransactionProfile("t", accesses=(("a", "r"), ("b", "w"), ("a", "w")))
        assert profile.tables() == ["a", "b"]

    def test_write_and_read_tables(self):
        profile = TransactionProfile("t", accesses=(("a", "r"), ("b", "w")))
        assert profile.read_tables() == ["a"]
        assert profile.write_tables() == ["b"]

    def test_access_pairs_include_loop_back_edge(self):
        profile = TransactionProfile(
            "t", accesses=(("a", "r"), ("b", "w"), ("a", "r"))
        )
        assert ("b", "a") in profile.access_pairs()

    def test_table_positions_normalised(self):
        profile = TransactionProfile("t", accesses=(("a", "r"), ("b", "w"), ("c", "w")))
        positions = profile.table_positions()
        assert positions["a"] == 0.0
        assert positions["c"] == 1.0

    def test_transaction_type_name_mismatch_rejected(self):
        profile = TransactionProfile("x")
        with pytest.raises(ValueError):
            TransactionType(name="y", procedure=lambda ctx: None, profile=profile)


class TestRPAnalysis:
    def test_disjoint_tables_get_own_steps(self):
        profiles = [
            TransactionProfile("t1", accesses=(("a", "w"), ("b", "w"), ("c", "w"))),
        ]
        analysis = analyze_pipeline(profiles)
        assert analysis.num_steps == 3
        assert analysis.step_of("a") < analysis.step_of("b") < analysis.step_of("c")

    def test_cycle_merges_tables_into_one_step(self):
        profiles = [
            TransactionProfile("t1", accesses=(("a", "w"), ("b", "w"))),
            TransactionProfile("t2", accesses=(("b", "w"), ("a", "w"))),
        ]
        analysis = analyze_pipeline(profiles)
        assert analysis.step_of("a") == analysis.step_of("b")
        assert analysis.merged_components

    def test_unknown_table_maps_to_last_step(self):
        analysis = analyze_pipeline(
            [TransactionProfile("t", accesses=(("a", "w"), ("b", "w")))]
        )
        assert analysis.step_of("zzz") == analysis.num_steps - 1

    def test_empty_profiles_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_pipeline([])

    def test_tpcc_no_pay_group_is_fine_grained(self):
        analysis = analyze_pipeline([PROFILES["new_order"], PROFILES["payment"]])
        # No cycles: every table gets its own pipeline step.
        assert analysis.pipeline_efficiency == pytest.approx(1.0)
        assert analysis.step_of("warehouse") < analysis.step_of("district")

    def test_tpcc_stock_level_creates_cycle(self):
        analysis = analyze_pipeline(
            [PROFILES["new_order"], PROFILES["payment"], PROFILES["stock_level"]]
        )
        # stock_level reads order_line before stock while new_order writes
        # stock before order_line: the two tables must share a step.
        assert analysis.step_of("stock") == analysis.step_of("order_line")
        assert analysis.pipeline_efficiency < 1.0

    def test_history_ordered_late_for_payment(self):
        analysis = analyze_pipeline([PROFILES["new_order"], PROFILES["payment"]])
        assert analysis.step_of("history") > analysis.step_of("orders")

    def test_explicit_steps_param(self):
        from repro.analysis.rp_analysis import RPAnalysis

        analysis = RPAnalysis(
            steps=[frozenset({"a"}), frozenset({"b"})], table_to_step={"a": 0, "b": 1}
        )
        assert analysis.step_of("a") == 0
        assert "2 steps" in analysis.describe()


class TestChopping:
    def test_disjoint_transactions_are_choppable(self):
        profiles = [
            TransactionProfile("t1", accesses=(("a", "w"), ("b", "w"))),
            TransactionProfile("t2", accesses=(("c", "w"), ("d", "w"))),
        ]
        choppable, _graph = check_choppable(profiles)
        assert choppable

    def test_interleaved_conflicts_create_sc_cycle(self):
        profiles = [
            TransactionProfile("t1", accesses=(("a", "w"), ("b", "w"))),
            TransactionProfile("t2", accesses=(("a", "w"), ("b", "w"))),
        ]
        choppable, graph = check_choppable(profiles)
        assert not choppable
        assert graph.has_sc_cycle()

    def test_single_piece_transactions_never_cycle(self):
        profiles = [
            TransactionProfile("t1", accesses=(("a", "w"), ("b", "w"))),
            TransactionProfile("t2", accesses=(("a", "w"), ("b", "w"))),
        ]
        choppable, _ = check_choppable(
            profiles, pieces_per_transaction={"t1": 1, "t2": 1}
        )
        assert choppable


class TestTPCCProfilesMatchProcedures:
    """The declared profiles must reflect what the procedures actually touch."""

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_profile_tables_exist_in_schema(self, name):
        from repro.workloads.tpcc.schema import TABLES

        for table in PROFILES[name].tables():
            assert table in TABLES

    def test_read_only_flags(self):
        assert PROFILES["order_status"].read_only
        assert PROFILES["stock_level"].read_only
        assert not PROFILES["new_order"].read_only
        assert not PROFILES["hot_item"].read_only

    def test_workload_registers_expected_types(self):
        workload = TPCCWorkload(warehouses=1)
        assert set(workload.transaction_types()) == {
            "new_order",
            "payment",
            "delivery",
            "order_status",
            "stock_level",
        }
        with_hot = TPCCWorkload(warehouses=1, include_hot_item=True)
        assert "hot_item" in with_hot.transaction_types()

    def test_mix_sums_to_one(self):
        workload = TPCCWorkload(warehouses=1)
        assert sum(workload.mix().values()) == pytest.approx(1.0, abs=0.01)
