"""Crash, recover, and check: seeded fault injection with the oracle
spanning the crash.

Three layers of coverage:

* unit tests for the fault plan/injector and the recovery protocol's
  adversarial cases (torn precommit, epoch-0 rule, checkpointed
  incarnations);
* unit tests for the cross-crash history stitch (vanished transactions
  leave no trace, surviving readers of vanished data are flagged, ghost
  survivors join the graph);
* fixed-seed end-to-end scenarios: queue (flagship — exactly-once dequeue
  across the crash) and smallbank runs crash at seeded adversarial points,
  recover from the WAL, resume, and the stitched history passes the
  isolation oracle; plus byte-identical reproduction and a randomized
  fault-schedule soak behind the ``slow`` marker.
"""

import pytest

from repro.core.transaction import ReadRecord, Transaction
from repro.errors import ConfigurationError, IsolationViolation
from repro.harness.configs import CRASH_CELLS, WORKLOAD_CONFIGURATIONS
from repro.harness.cli import main as harness_main
from repro.harness.crash import (
    CrashRecoveryRunner,
    default_crash_durability,
    exactly_once_violations,
    run_crash_benchmark,
)
from repro.isolation.checker import check_history, check_recorder
from repro.isolation.history import HistoryRecorder
from repro.sim.faults import SITES, CrashPoint, FaultInjector, FaultPlan
from repro.storage.durability import DurabilityConfig, DurabilityManager
from repro.storage.versions import Version
from repro.storage.wal import LogRecord, decode_key, encode_key
from repro.workloads.queue import QueueWorkload
from repro.workloads.smallbank import SmallBankWorkload


def make_txn(txn_id, txn_type="t"):
    return Transaction(txn_id=txn_id, txn_type=txn_type)


def committed_version(key, writer, seq, value=None):
    version = Version(key=key, value=value, writer=writer, writer_type="t")
    version.mark_committed(seq)
    return version


def record_commit(recorder, txn_id, versions, reads=(), txn_type="t"):
    txn = make_txn(txn_id, txn_type)
    txn.reads = [ReadRecord(version.key, version) for version in reads]
    recorder.on_commit(txn, versions)


class TestFaultPlan:
    def test_from_seed_is_deterministic(self):
        first = FaultPlan.from_seed(42, crashes=3)
        second = FaultPlan.from_seed(42, crashes=3)
        assert first == second
        assert len(first) == 3
        assert all(point.site in SITES for point in first.points)

    def test_different_seeds_differ(self):
        plans = {FaultPlan.from_seed(seed, crashes=2) for seed in range(20)}
        assert len(plans) > 1

    def test_crash_point_validation(self):
        with pytest.raises(ValueError):
            CrashPoint("no-such-site", 1)
        with pytest.raises(ValueError):
            CrashPoint("precommit-done", 0)
        with pytest.raises(ValueError):
            FaultPlan.from_seed(1, crashes=-1)

    def test_injector_trips_at_planned_occurrence(self):
        injector = FaultInjector(FaultPlan((CrashPoint("precommit-done", 3),)))
        assert not injector.trip("precommit-done")
        assert not injector.trip("precommit-record")
        assert not injector.trip("precommit-done")
        assert injector.trip("precommit-done")
        assert injector.crashed
        assert injector.crash_info["occurrence"] == 3
        # Once crashed, nothing else trips until re-armed.
        assert not injector.trip("precommit-done")

    def test_arm_resets_counters_and_advances_plan(self, env):
        plan = FaultPlan(
            (CrashPoint("precommit-done", 2), CrashPoint("gcp-before", 1))
        )
        injector = FaultInjector(plan)
        event = injector.arm(env)
        injector.trip("precommit-done")
        assert injector.trip("precommit-done")
        assert event.triggered
        second = injector.arm(env)
        assert not injector.crashed
        assert injector.trip("gcp-before")
        assert injector.has_pending() is False
        assert second.triggered


class TestRecoveryProtocol:
    def _sync_manager(self, faults=None, num_servers=4):
        return DurabilityManager(
            DurabilityConfig(
                enabled=True, asynchronous=False, num_servers=num_servers
            ),
            faults=faults,
        )

    def test_torn_precommit_is_discarded(self):
        """Regression: a partial precommit set must never survive recovery,
        even though every surviving record carries a participants field."""
        injector = FaultInjector(FaultPlan((CrashPoint("precommit-record", 1),)))
        manager = self._sync_manager(faults=injector)
        writes = [((table, 1), {"v": table}) for table in ("a", "b", "c", "d")]
        servers = {manager.server_for(key) for key, _v in writes}
        assert len(servers) > 1  # the set really spans servers
        manager.precommit(make_txn(9), writes)
        assert injector.crashed and manager.halted
        manager.crash()
        result = manager.recover()
        assert 9 in result.discarded_transactions
        assert 9 not in result.recovered_transactions
        assert result.state == {}

    def test_precommit_record_missing_participants_is_discarded(self):
        """A record set that cannot prove its completeness is discarded —
        recovery never falls back to trusting len(records)."""
        manager = self._sync_manager()
        record = LogRecord(
            kind="precommit",
            txn_id=5,
            server_id=0,
            payload={"writes": [(encode_key(("a", 1)), {"v": 5})]},
            gcp_epoch=0,
        )
        manager.logs[0].append(record)
        manager.logs[0].flush()
        result = manager.recover()
        assert 5 in result.discarded_transactions
        assert result.state == {}

    def test_epoch0_rule_async_records_need_a_gcp_advance(self):
        """Pin the epoch-0 semantics: before the first GCP advance nothing
        asynchronous is durable, even if its records reached the backend
        (a torn first epoch flush).  The old truthiness guard skipped the
        filter entirely when the persistent epoch was still 0."""
        manager = DurabilityManager(
            DurabilityConfig(enabled=True, asynchronous=True, num_servers=2)
        )
        manager.precommit(make_txn(3), [(("a", 1), {"v": 3})])
        # Simulate a torn epoch flush: the records land on disk but the
        # persistent-epoch marker never advances.
        for log in manager.logs:
            log.flush()
        assert manager.persistent_gcp_epoch == 0
        result = manager.recover()
        assert 3 in result.discarded_transactions
        # After a real advance the same transaction is durable.
        manager2 = DurabilityManager(
            DurabilityConfig(enabled=True, asynchronous=True, num_servers=2)
        )
        manager2.precommit(make_txn(3), [(("a", 1), {"v": 3})])
        manager2.advance_gcp_epoch()
        assert 3 in manager2.recover().recovered_transactions

    def test_sync_precommit_passes_epoch_filter_at_epoch0(self):
        """Synchronous flushes bump the persistent epoch, so the always-on
        epoch filter keeps admitting them before any GCP advance."""
        manager = self._sync_manager()
        manager.precommit(make_txn(4), [(("a", 1), {"v": 4})])
        assert 4 in manager.recover().recovered_transactions

    def test_recovery_replays_in_commit_ticket_order(self):
        """Tickets (assigned at precommit = commit order) decide last-write-
        wins, not transaction ids: an early-begun late-committing writer
        overwrites a late-begun early-committing one."""
        manager = self._sync_manager()
        manager.precommit(make_txn(9), [(("a", 1), {"v": "first"})])
        manager.precommit(make_txn(2), [(("a", 1), {"v": "second"})])
        result = manager.recover()
        assert result.state[("a", 1)] == {"v": "second"}
        assert result.state_writers[("a", 1)] == 2

    def test_halted_manager_persists_nothing(self):
        injector = FaultInjector(FaultPlan((CrashPoint("precommit-done", 1),)))
        manager = self._sync_manager(faults=injector)
        manager.precommit(make_txn(1), [(("a", 1), {"v": 1})])
        assert manager.halted
        manager.precommit(make_txn(2), [(("a", 2), {"v": 2})])
        manager.advance_gcp_epoch()
        result = manager.recover()
        assert 1 in result.recovered_transactions  # durable before the halt
        assert 2 not in result.recovered_transactions

    def test_crash_drops_volatile_buffers(self):
        manager = DurabilityManager(
            DurabilityConfig(enabled=True, asynchronous=True, num_servers=2)
        )
        manager.precommit(make_txn(1), [(("a", 1), {"v": 1})])
        assert sum(log.pending for log in manager.logs) > 0
        manager.crash()
        assert sum(log.pending for log in manager.logs) == 0
        assert not manager.halted

    def test_checkpoint_prevents_epoch_resurrection(self):
        """Multi-crash soundness: records of a *discarded* epoch must not
        pass the epoch filter at the next recovery once later epochs become
        persistent.  The checkpoint wipes them and re-bases the logs."""
        manager = DurabilityManager(
            DurabilityConfig(enabled=True, asynchronous=True, num_servers=2)
        )
        manager.precommit(make_txn(1), [(("a", 1), {"v": "lost"})])
        for log in manager.logs:
            log.flush()  # torn epoch: durable records, marker at 0
        manager.crash()
        first = manager.recover()
        assert 1 in first.discarded_transactions
        manager.checkpoint(first)
        # Next incarnation commits durably, advancing the persistent epoch.
        manager.precommit(make_txn(2), [(("b", 1), {"v": "kept"})])
        manager.advance_gcp_epoch()
        assert manager.persistent_gcp_epoch >= 1
        second = manager.recover()
        assert 2 in second.recovered_transactions
        # Without the checkpoint, txn 1's epoch-1 records would now pass
        # the filter and resurrect a discarded transaction.
        assert 1 not in second.recovered_transactions
        assert ("a", 1) not in second.state
        assert second.state[("b", 1)] == {"v": "kept"}

    def test_checkpoint_preserves_recovered_state_and_writers(self):
        manager = self._sync_manager()
        manager.precommit(make_txn(7), [(("a", 1), {"v": 7})])
        result = manager.recover()
        written = manager.checkpoint(result)
        assert written == 1
        replayed = manager.recover()
        assert replayed.state[("a", 1)] == {"v": 7}
        assert replayed.state_writers[("a", 1)] == 7
        # Checkpoint base state survives even though the precommit records
        # are gone (the writer id set is carried by the checkpoint record).
        assert replayed.recovered_transactions == set()

    def test_server_for_is_salt_free(self):
        import zlib

        manager = self._sync_manager()
        key = ("messages", 17)
        expected = zlib.crc32(repr(key).encode("utf-8")) % 4
        assert manager.server_for(key) == expected

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            DurabilityConfig(num_servers=0)
        with pytest.raises(ConfigurationError):
            DurabilityConfig(gcp_epoch_length=0.0)
        with pytest.raises(ConfigurationError):
            DurabilityConfig(sync_flush_delay=-1e-6)
        with pytest.raises(ConfigurationError):
            DurabilityConfig(async_flush_delay=-1e-6)


class TestHistoryStitch:
    def test_vanished_writer_flags_surviving_reader(self):
        recorder = HistoryRecorder(level="serializable")
        v1 = committed_version(("t", 1), writer=1, seq=10)
        record_commit(recorder, 1, [v1])
        record_commit(recorder, 2, [], reads=[v1])
        recorder.on_crash({1})
        report = check_recorder(recorder, level="serializable")
        assert (2, ("t", 1), 1) in [tuple(e) for e in report.aborted_reads]
        assert recorder.seq_of(("t", 1), 1) is None

    def test_vanished_transaction_leaves_no_trace(self):
        recorder = HistoryRecorder(level="serializable")
        v1 = committed_version(("t", 1), writer=1, seq=10)
        record_commit(recorder, 1, [v1])
        v2 = committed_version(("t", 1), writer=2, seq=11)
        record_commit(recorder, 2, [v2], reads=[v1])
        recorder.on_crash({2})  # the reader vanished, not the writer
        report = check_recorder(recorder, level="serializable")
        assert report.ok
        history = recorder.history()
        assert 2 not in history.transactions
        assert history.writers_of(("t", 1)) == [1]

    def test_ghost_survivor_joins_the_version_order(self):
        recorder = HistoryRecorder(level="serializable")
        v1 = committed_version(("t", 1), writer=1, seq=10)
        record_commit(recorder, 1, [v1])
        recorder.on_crash(set())
        ghost = committed_version(("t", 1), writer=5, seq=20)
        recorder.on_recovered(5, [ghost])
        # A post-recovery transaction reads the ghost's version: clean.
        record_commit(recorder, 6, [], reads=[ghost])
        report = check_recorder(recorder, level="serializable")
        assert report.ok
        assert recorder.seq_of(("t", 1), 5) == 20
        history = recorder.history()
        assert history.writers_of(("t", 1)) == [1, 5]
        assert history.transactions[5].txn_type == "recovered"

    def test_streaming_purge_matches_posthoc_verdict(self):
        recorder = HistoryRecorder(level="serializable")
        v1 = committed_version(("t", 1), writer=1, seq=10)
        v2 = committed_version(("t", 2), writer=2, seq=11)
        record_commit(recorder, 1, [v1])
        record_commit(recorder, 2, [v2], reads=[v1])
        record_commit(recorder, 3, [], reads=[v2])
        recorder.on_crash({2})
        streaming = check_recorder(recorder, level="serializable")
        posthoc = check_history(recorder.history(), level="serializable")
        assert streaming.ok == posthoc.ok is False  # 3 read vanished data
        flagged = {tuple(e) for e in streaming.aborted_reads}
        assert (3, ("t", 2), 2) in flagged


QUEUE_CRASH_CONFIGS = CRASH_CELLS["queue"]
SMALLBANK_CRASH_CONFIGS = CRASH_CELLS["smallbank"]


def _queue_workload():
    return QueueWorkload(initial_messages=4, window=6)


def _smallbank_workload():
    return SmallBankWorkload(customers=200, hot_accounts=10)


class TestCrashScenarios:
    """Fixed-seed end-to-end crash/recovery runs under the oracle."""

    @pytest.mark.parametrize("config_name", QUEUE_CRASH_CONFIGS)
    def test_queue_crash_recovery_checked(self, config_name):
        result = run_crash_benchmark(
            _queue_workload(),
            WORKLOAD_CONFIGURATIONS["queue"][config_name](),
            clients=8,
            duration=0.6,
            seed=7,
        )
        report = result.extra["isolation"]
        assert report.ok, report.describe()
        assert result.extra["exactly_once_violations"] == {}
        assert len(result.crashes) == 1
        assert result.incarnations == 2
        # The workload really resumed after recovery.
        assert result.commits > result.crashes[0].committed_before

    @pytest.mark.parametrize("config_name", ("2pl", "3layer"))
    def test_smallbank_crash_recovery_checked(self, config_name):
        result = run_crash_benchmark(
            _smallbank_workload(),
            WORKLOAD_CONFIGURATIONS["smallbank"][config_name](),
            clients=8,
            duration=0.6,
            seed=13,
        )
        report = result.extra["isolation"]
        assert report.ok, report.describe()
        assert len(result.crashes) >= 1

    def test_torn_precommit_scenario(self):
        """Mid-commit crash between per-server flushes: the torn transaction
        is discarded, the run resumes, the stitched history stays clean."""
        runner = CrashRecoveryRunner(
            _queue_workload(),
            WORKLOAD_CONFIGURATIONS["queue"]["3layer"](),
            seed=11,
            fault_plan=FaultPlan((CrashPoint("precommit-record", 5),)),
            durability=default_crash_durability(asynchronous=False),
        )
        result = runner.run(8, duration=0.5)
        detail = runner.injector.crash_log[0]["detail"]
        assert detail["index"] < detail["total"] - 1  # genuinely torn
        crash = result.crashes[0]
        assert detail["txn_id"] not in crash.recovered
        assert detail["txn_id"] not in crash.ghosts
        assert result.extra["isolation"].ok
        assert result.extra["exactly_once_violations"] == {}

    def test_ghost_survivor_scenario(self):
        """Crash after a full durable precommit but before acknowledgement:
        recovery resurrects the transaction although it never committed in
        memory, and the stitched graph stays anomaly-free."""
        runner = CrashRecoveryRunner(
            _queue_workload(),
            WORKLOAD_CONFIGURATIONS["queue"]["3layer"](),
            seed=11,
            fault_plan=FaultPlan((CrashPoint("precommit-done", 25),)),
            durability=default_crash_durability(asynchronous=False),
        )
        result = runner.run(8, duration=0.5)
        crash = result.crashes[0]
        assert len(crash.ghosts) == 1
        ghost = crash.ghosts[0]
        assert ghost not in crash.vanished
        history = runner.recorder.history()
        assert history.transactions[ghost].txn_type == "recovered"
        assert result.extra["isolation"].ok

    def test_vanished_transactions_on_async_crash(self):
        """A crash before any GCP flush wipes every commit since the start:
        all of them vanish, the oracle still accepts the stitched run."""
        runner = CrashRecoveryRunner(
            _queue_workload(),
            WORKLOAD_CONFIGURATIONS["queue"]["2layer"](),
            seed=11,
            fault_plan=FaultPlan((CrashPoint("gcp-server", 3),)),
        )
        result = runner.run(8, duration=0.5)
        crash = result.crashes[0]
        assert crash.committed_before > 0
        assert len(crash.vanished) == crash.committed_before
        history = runner.recorder.history()
        for txn_id in crash.vanished:
            assert txn_id not in history.transactions
            assert txn_id in history.aborted_ids
        assert result.extra["isolation"].ok

    def test_multi_crash_run(self):
        result = run_crash_benchmark(
            _queue_workload(),
            WORKLOAD_CONFIGURATIONS["queue"]["2layer"](),
            clients=8,
            duration=0.6,
            seed=21,
            crashes=2,
        )
        assert len(result.crashes) == 2
        assert result.incarnations == 3
        assert result.extra["isolation"].ok
        assert result.extra["exactly_once_violations"] == {}

    def test_fixed_seed_reproduces_byte_identically(self):
        def one():
            result = run_crash_benchmark(
                _queue_workload(),
                WORKLOAD_CONFIGURATIONS["queue"]["2layer"](),
                clients=8,
                duration=0.5,
                seed=21,
                crashes=2,
            )
            return (
                result.commits,
                result.aborts,
                [
                    (c.time, c.site, c.occurrence, c.vanished, c.recovered, c.ghosts)
                    for c in result.crashes
                ],
                result.extra["isolation"].ok,
                result.extra["isolation"].num_edges,
            )

        assert one() == one()

    def test_streaming_verdict_matches_posthoc_across_crash(self):
        runner = CrashRecoveryRunner(
            _queue_workload(),
            WORKLOAD_CONFIGURATIONS["queue"]["3layer"](),
            seed=7,
        )
        result = runner.run(8, duration=0.5)
        assert len(result.crashes) >= 1
        streaming = result.extra["isolation"]
        posthoc = check_history(runner.recorder.history(), level="serializable")
        assert streaming.ok and posthoc.ok

    def test_violation_raises_by_default(self):
        """raise_on_violation routes through IsolationViolation, same as the
        plain checked runner (sanity: wire a fake anomaly in)."""
        runner = CrashRecoveryRunner(
            _queue_workload(),
            WORKLOAD_CONFIGURATIONS["queue"]["2pl"](),
            seed=7,
            fault_plan=FaultPlan(()),
        )
        recorder = runner.recorder
        v1 = committed_version(("messages", 999), writer=7777, seq=999_999)
        record_commit(recorder, 8888, [], reads=[v1])
        recorder.on_crash({7777})
        with pytest.raises(IsolationViolation):
            runner.run(2, duration=0.05)


class TestHarnessCLIFaults:
    def test_faults_cell_runs_green(self, capsys):
        code = harness_main(
            [
                "--workload", "queue",
                "--config", "2layer",
                "--faults", "1",
                "--quick",
                "--workers", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "crash@" in out
        assert "cross-crash oracle" in out

    def test_faults_must_be_non_negative(self):
        with pytest.raises(SystemExit):
            harness_main(["--workload", "queue", "--faults", "-1", "--quick"])

    def test_faults_requires_the_oracle(self):
        with pytest.raises(SystemExit):
            harness_main(
                ["--workload", "queue", "--faults", "1", "--no-check", "--quick"]
            )

    def test_faults_rejects_unregistered_workload(self):
        with pytest.raises(SystemExit):
            harness_main(["--workload", "tpcc", "--faults", "1", "--quick"])


@pytest.mark.slow
class TestCrashSoak:
    """Randomized fault schedules: every seed derives a different crash
    plan; the stitched run must stay clean for all of them."""

    @pytest.mark.parametrize("seed", range(5))
    def test_queue_soak(self, seed):
        result = run_crash_benchmark(
            _queue_workload(),
            WORKLOAD_CONFIGURATIONS["queue"]["3layer"](),
            clients=8,
            duration=0.8,
            seed=100 + seed,
            crashes=2,
        )
        assert result.extra["isolation"].ok
        assert result.extra["exactly_once_violations"] == {}

    @pytest.mark.parametrize("seed", range(5))
    def test_smallbank_soak_sync_and_async(self, seed):
        result = run_crash_benchmark(
            _smallbank_workload(),
            WORKLOAD_CONFIGURATIONS["smallbank"]["2layer"](),
            clients=8,
            duration=0.8,
            seed=200 + seed,
            crashes=2,
            durability=default_crash_durability(asynchronous=seed % 2 == 0),
        )
        assert result.extra["isolation"].ok

    def test_exactly_once_helper_flags_double_consume(self):
        """The helper itself must be able to fail: two committed dequeues
        of one message key are reported."""
        recorder = HistoryRecorder(level="serializable")
        key = ("messages", 1)
        v0 = committed_version(key, writer=1, seq=5)
        record_commit(recorder, 1, [v0], txn_type="enqueue")
        record_commit(
            recorder, 2, [committed_version(key, writer=2, seq=6)],
            txn_type="dequeue",
        )
        record_commit(
            recorder, 3, [committed_version(key, writer=3, seq=7)],
            txn_type="dequeue",
        )
        violations = exactly_once_violations(recorder.history())
        assert violations == {key: [2, 3]}
