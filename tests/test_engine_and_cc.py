"""Engine lifecycle and CC-mechanism behaviour tests.

These tests drive the engine with hand-crafted concurrent transaction
schedules (via the simulation environment) and with the micro workloads, and
assert both functional outcomes and the isolation oracle.
"""

import random

import pytest

from repro.cc.base import CC_REGISTRY
from repro.cc.locks import EXCLUSIVE, SHARED, LockTable
from repro.cc.timestamps import BatchManager, TimestampOracle
from repro.core.config import Configuration, leaf, monolithic, node
from repro.core.engine import EngineOptions
from repro.core.transaction import Transaction, TransactionStatus
from repro.errors import ConfigurationError, TransactionAborted
from repro.isolation import check_engine
from repro.sim.environment import Environment
from tests.conftest import build_engine, run_transactions


def micro_requests(workload, count, seed=3):
    rng = workload.make_rng(seed)
    requests = []
    for _ in range(count):
        requests.append(workload.next_transaction(rng))
    return requests


class TestLockTable:
    def _txn(self, txn_id):
        return Transaction(txn_id=txn_id, txn_type="t")

    def test_shared_locks_are_compatible(self, env):
        locks = LockTable(env)
        a, b = self._txn(1), self._txn(2)
        assert locks.try_acquire(a, "k", SHARED)
        assert locks.try_acquire(b, "k", SHARED)

    def test_exclusive_conflicts(self, env):
        locks = LockTable(env)
        a, b = self._txn(1), self._txn(2)
        assert locks.try_acquire(a, "k", EXCLUSIVE)
        assert not locks.try_acquire(b, "k", SHARED)

    def test_same_group_never_conflicts(self, env):
        locks = LockTable(env, same_group=lambda x, y: True)
        a, b = self._txn(1), self._txn(2)
        assert locks.try_acquire(a, "k", EXCLUSIVE)
        assert locks.try_acquire(b, "k", EXCLUSIVE)

    def test_release_grants_waiter(self, env):
        locks = LockTable(env, timeout=10)
        a, b = self._txn(1), self._txn(2)
        order = []

        def holder():
            yield from locks.acquire(a, "k", EXCLUSIVE)
            yield env.timeout(1)
            order.append(("release", env.now))
            locks.release_all(a)

        def waiter():
            yield env.timeout(0.1)
            yield from locks.acquire(b, "k", EXCLUSIVE)
            order.append(("acquired", env.now))

        env.process(holder())
        env.process(waiter())
        env.run()
        assert order == [("release", 1.0), ("acquired", 1.0)]
        assert b.dependencies == {1}

    def test_lock_timeout_aborts(self, env):
        locks = LockTable(env, timeout=0.5)
        a, b = self._txn(1), self._txn(2)
        outcome = []

        def holder():
            yield from locks.acquire(a, "k", EXCLUSIVE)
            yield env.timeout(10)

        def waiter():
            yield env.timeout(0.1)
            try:
                yield from locks.acquire(b, "k", EXCLUSIVE)
            except TransactionAborted as aborted:
                outcome.append(aborted.reason)

        env.process(holder())
        env.process(waiter())
        env.run(until=5)
        assert outcome == ["deadlock-timeout"]
        assert locks.timeout_count == 1

    def test_cancel_waits_removes_queued_request(self, env):
        locks = LockTable(env, timeout=10)
        a, b = self._txn(1), self._txn(2)

        def holder():
            yield from locks.acquire(a, "k", EXCLUSIVE)
            yield env.timeout(2)
            locks.release_all(a)

        def waiter():
            yield env.timeout(0.1)
            yield from locks.acquire(b, "k", EXCLUSIVE)

        env.process(holder())
        env.process(waiter())
        env.run(until=1)
        b.status = TransactionStatus.ABORTED
        locks.cancel_waits(b)
        assert locks.waiting("k") == 0

    def test_upgrade_for_single_holder(self, env):
        locks = LockTable(env)
        a = self._txn(1)
        assert locks.try_acquire(a, "k", SHARED)
        assert locks.try_acquire(a, "k", EXCLUSIVE)
        assert locks.holders("k")[a] == EXCLUSIVE


class TestTimestamps:
    def test_oracle_monotonic(self):
        oracle = TimestampOracle()
        values = [oracle.next() for _ in range(5)]
        assert values == sorted(values)
        assert oracle.last == values[-1]

    def test_batch_manager_shares_timestamp_within_batch(self):
        manager = BatchManager(TimestampOracle(), batch_size=3)
        batch_a, ts_a = manager.admit("g1")
        batch_b, ts_b = manager.admit("g1")
        assert batch_a == batch_b
        assert ts_a == ts_b

    def test_batch_rotates_after_size(self):
        manager = BatchManager(TimestampOracle(), batch_size=2)
        first, _ = manager.admit("g1")
        manager.admit("g1")
        third, _ = manager.admit("g1")
        assert third != first

    def test_different_groups_get_different_batches(self):
        manager = BatchManager(TimestampOracle(), batch_size=10)
        batch_a, _ = manager.admit("g1")
        batch_b, _ = manager.admit("g2")
        assert batch_a != batch_b

    def test_rotate_forces_new_batch(self):
        manager = BatchManager(TimestampOracle(), batch_size=10)
        first, _ = manager.admit("g1")
        manager.rotate("g1")
        second, _ = manager.admit("g1")
        assert second != first


class TestRegistry:
    def test_all_paper_mechanisms_registered(self):
        for name in ("2pl", "rp", "ssi", "tso", "none", "occ"):
            assert name in CC_REGISTRY

    def test_unknown_mechanism_rejected(self, env, noconflict_workload):
        with pytest.raises(ConfigurationError):
            build_engine(
                env,
                noconflict_workload,
                monolithic("nonexistent", noconflict_workload.transaction_names()),
            )


class TestEngineLifecycle:
    def test_commit_updates_store_and_stats(self, env, noconflict_workload):
        engine = build_engine(
            env, noconflict_workload, monolithic("2pl", ("write_only",))
        )
        outcomes, _ = run_transactions(env, engine, [("write_only", {"ids": [1, 2, 3, 4]})])
        txn = outcomes[0]
        assert txn.committed
        assert engine.stats.commits == 1
        assert engine.store.latest_committed(("payload", 2)).value == {"value": 2}

    def test_unknown_transaction_type_rejected(self, env, noconflict_workload):
        engine = build_engine(
            env, noconflict_workload, monolithic("2pl", ("write_only",))
        )
        with pytest.raises(ConfigurationError):
            engine.begin("not_registered")

    def test_configuration_must_cover_all_types(self, env, micro_workload):
        with pytest.raises(ConfigurationError):
            build_engine(env, micro_workload, monolithic("2pl", ("group_a_update",)))

    def test_user_abort_rolls_back(self, env, tiny_tpcc):
        from repro.harness.configs import tpcc_monolithic_2pl

        engine = build_engine(env, tiny_tpcc, tpcc_monolithic_2pl())

        def aborting_client():
            txn = engine.begin("payment", {"w_id": 1, "d_id": 1, "c_w_id": 1,
                                           "c_d_id": 1, "c_id": 1, "h_amount": 5.0})
            yield from engine.perform_write(txn, ("warehouse", 1), {"w_ytd": 99.0})
            engine._finish_abort(txn, "user-abort")
            return txn

        process = env.process(aborting_client())
        txn = env.run(until=process)
        assert txn.aborted
        assert engine.store.latest_committed(("warehouse", 1)).value["w_ytd"] == 0.0
        assert engine.store.uncommitted_versions(("warehouse", 1)) == []

    def test_concurrent_counter_increments_are_serializable(self, env, micro_workload):
        engine = build_engine(
            env,
            micro_workload,
            monolithic("2pl", micro_workload.transaction_names()),
        )
        count = 30
        requests = [
            ("group_a_update", {"shared_id": 0, "local_id": 0, "cold_ids": [i % 50 for i in range(5)]})
            for i in range(count)
        ]
        outcomes, _ = run_transactions(env, engine, requests)
        committed = [t for t in outcomes if isinstance(t, object) and getattr(t, "committed", False)]
        final = engine.store.latest_committed(("shared", 0)).value["value"]
        assert final == len(committed)
        report = check_engine(engine)
        assert report.ok, report.describe()

    @pytest.mark.parametrize("cc", ["2pl", "ssi", "rp", "tso", "occ"])
    def test_every_mechanism_produces_serializable_histories(self, cc, micro_workload):
        env = Environment()
        engine = build_engine(
            env,
            micro_workload,
            monolithic(cc, micro_workload.transaction_names()),
            options=EngineOptions(charge_costs=True, lock_timeout=0.2, commit_wait_timeout=0.4),
        )
        requests = micro_requests(micro_workload, 60, seed=5)
        outcomes, _ = run_transactions(env, engine, requests)
        assert engine.stats.commits > 0
        report = check_engine(engine)
        assert report.ok, f"{cc}: {report.describe()}"

    @pytest.mark.parametrize(
        "config_name", ["2pl", "ssi", "two-layer", "three-layer"]
    )
    def test_hierarchies_produce_serializable_histories(
        self, config_name, micro_configs
    ):
        from repro.workloads.micro import CrossGroupConflictWorkload

        env = Environment()
        read_only = config_name == "three-layer"
        workload = CrossGroupConflictWorkload(
            shared_rows=5, cold_rows=50, read_only_second_group=read_only
        )
        engine = build_engine(
            env,
            workload,
            micro_configs[config_name]
            if not read_only
            else micro_configs["three-layer"],
            options=EngineOptions(charge_costs=True, lock_timeout=0.2, commit_wait_timeout=0.4),
        )
        requests = micro_requests(workload, 80, seed=11)
        run_transactions(env, engine, requests)
        assert engine.stats.commits > 0
        report = check_engine(engine)
        assert report.ok, f"{config_name}: {report.describe()}"

    def test_read_your_own_writes(self, env, tiny_tpcc):
        from repro.harness.configs import tpcc_tebaldi_3layer

        engine = build_engine(env, tiny_tpcc, tpcc_tebaldi_3layer())
        outcomes, _ = run_transactions(
            env,
            engine,
            [("new_order", {"w_id": 1, "d_id": 1, "c_id": 1, "items": [(1, 1, 2), (2, 1, 1)]})],
        )
        txn = outcomes[0]
        assert txn.committed
        order_key = ("orders", (1, 1, txn.result["o_id"]))
        assert engine.store.latest_committed(order_key) is not None

    def test_ssi_aborts_on_write_write_conflict(self, env, micro_workload):
        engine = build_engine(
            env,
            micro_workload,
            monolithic("ssi", micro_workload.transaction_names()),
            options=EngineOptions(charge_costs=True),
        )
        # Two clients updating the same shared row concurrently: SSI's
        # first-updater-wins rule must abort one of them.
        args = {"shared_id": 0, "local_id": 0, "cold_ids": [1, 2, 3, 4, 5]}
        outcomes, _ = run_transactions(
            env,
            engine,
            [("group_a_update", args), ("group_a_update", dict(args))],
        )
        aborted = [o for o in outcomes if isinstance(o, TransactionAborted)]
        assert len(aborted) == 1
        assert "ssi" in aborted[0].reason

    def test_2pl_blocks_instead_of_aborting(self, env, micro_workload):
        engine = build_engine(
            env,
            micro_workload,
            monolithic("2pl", micro_workload.transaction_names()),
            options=EngineOptions(charge_costs=True),
        )
        args = {"shared_id": 0, "local_id": 0, "cold_ids": [1, 2, 3, 4, 5]}
        outcomes, _ = run_transactions(
            env,
            engine,
            [("group_a_update", args), ("group_a_update", dict(args))],
        )
        assert all(getattr(o, "committed", False) for o in outcomes)
        assert engine.store.latest_committed(("shared", 0)).value["value"] == 2

    def test_rp_exposes_intermediate_state_in_group(self, env):
        """Under RP the second writer reads the first writer's step-committed value."""
        from repro.workloads.micro import CrossGroupConflictWorkload

        workload = CrossGroupConflictWorkload(shared_rows=1, cold_rows=50)
        engine = build_engine(
            env,
            workload,
            monolithic("rp", workload.transaction_names()),
            options=EngineOptions(charge_costs=True),
        )
        args = {"shared_id": 0, "local_id": 0, "cold_ids": [1, 2, 3, 4, 5]}
        outcomes, _ = run_transactions(
            env,
            engine,
            [("group_a_update", args), ("group_b_update", dict(args))],
        )
        committed = [o for o in outcomes if getattr(o, "committed", False)]
        assert len(committed) == 2
        assert engine.store.latest_committed(("shared", 0)).value["value"] == 2
        assert check_engine(engine).ok

    def test_gc_epoch_assignment(self, env, noconflict_workload):
        engine = build_engine(
            env, noconflict_workload, monolithic("2pl", ("write_only",))
        )
        txn = engine.begin("write_only", {"ids": [1]})
        assert txn.gc_epoch == engine.gc.current_epoch

    def test_durability_logs_written_when_enabled(self, env, noconflict_workload):
        options = EngineOptions(charge_costs=False)
        options.durability.enabled = True
        options.durability.asynchronous = False
        engine = build_engine(
            env, noconflict_workload, monolithic("2pl", ("write_only",)), options=options
        )
        outcomes, _ = run_transactions(env, engine, [("write_only", {"ids": [1, 2]})])
        assert outcomes[0].committed
        assert engine.durability.records_written > 0
        recovery = engine.durability.recover()
        assert outcomes[0].txn_id in recovery.recovered_transactions


class TestPartitionByInstance:
    def test_partitioned_leaf_creates_one_instance_per_value(self, env):
        from repro.workloads.seats import SEATSWorkload
        from repro.harness.configs import seats_3layer

        workload = SEATSWorkload(flights=4, seats_per_flight=50, customers=50)
        engine = build_engine(env, workload, seats_3layer(per_flight=True))
        requests = [
            ("new_reservation", {"f_id": 1, "c_id": 1, "seat": 1, "price": 10.0}),
            ("new_reservation", {"f_id": 2, "c_id": 2, "seat": 1, "price": 10.0}),
            ("new_reservation", {"f_id": 2, "c_id": 3, "seat": 2, "price": 10.0}),
        ]
        outcomes, _ = run_transactions(env, engine, requests)
        assert all(getattr(o, "committed", False) for o in outcomes)
        tso_nodes = [n for n in engine.nodes if n.spec.cc == "tso"]
        assert len(tso_nodes) == 1
        assert len(tso_nodes[0].cc.instances()) == 2  # flights 1 and 2

    def test_partition_on_internal_node_rejected(self, env, micro_workload):
        spec = node("2pl", leaf("rp", "group_a_update"), leaf("rp", "group_b_update"))
        spec.instance_key = lambda args: 1
        with pytest.raises(ConfigurationError):
            build_engine(env, micro_workload, Configuration(spec))


class TestReconfiguration:
    def _engine(self, env, micro_workload):
        config = Configuration(
            node("ssi", leaf("none", "group_b_read"), leaf("2pl", "group_a_update")),
            name="initial",
        )
        from repro.workloads.micro import CrossGroupConflictWorkload

        workload = CrossGroupConflictWorkload(
            shared_rows=5, cold_rows=50, read_only_second_group=True
        )
        return workload, build_engine(env, workload, config)

    def test_partial_restart_swaps_configuration(self, env, micro_workload):
        workload, engine = self._engine(env, micro_workload)
        new_config = Configuration(
            node("ssi", leaf("none", "group_b_read"), leaf("rp", "group_a_update")),
            name="after",
        )

        def reconfigure():
            yield from engine.reconfigure_partial_restart(new_config)

        process = env.process(reconfigure())
        env.run(until=process)
        assert engine.configuration.name == "after"
        assert engine.configuration.leaf_for("group_a_update").cc == "rp"

    def test_online_update_swaps_only_changed_subtree(self, env, micro_workload):
        workload, engine = self._engine(env, micro_workload)
        old_root_cc = engine.root.cc
        new_config = Configuration(
            node("ssi", leaf("none", "group_b_read"), leaf("rp", "group_a_update")),
            name="after-online",
        )

        def reconfigure():
            yield from engine.reconfigure_online(new_config)

        process = env.process(reconfigure())
        env.run(until=process)
        assert engine.configuration.name == "after-online"
        # The root node object is preserved (only the changed leaf is swapped).
        assert engine.root.cc is old_root_cc
        assert engine.configuration.leaf_for("group_a_update").cc == "rp"

    def test_online_update_identical_configuration_is_noop(self, env, micro_workload):
        workload, engine = self._engine(env, micro_workload)
        same = engine.configuration.clone(name="same")

        def reconfigure():
            yield from engine.reconfigure_online(same)

        process = env.process(reconfigure())
        env.run(until=process)
        assert engine.configuration.name == "same"

    def test_transactions_work_after_reconfiguration(self, env, micro_workload):
        workload, engine = self._engine(env, micro_workload)
        new_config = Configuration(
            node("ssi", leaf("none", "group_b_read"), leaf("rp", "group_a_update")),
            name="after",
        )

        def scenario():
            yield from engine.reconfigure_online(new_config)
            txn = yield from engine.execute_transaction(
                "group_a_update",
                {"shared_id": 0, "local_id": 0, "cold_ids": [1, 2, 3, 4, 5]},
            )
            return txn

        process = env.process(scenario())
        txn = env.run(until=process)
        assert txn.committed


def batch_micro_workload():
    """Tiny declarable workload for deterministic-batch unit tests.

    ``declared_write`` promises exactly the key it writes; ``rogue_write``
    under-declares (promises one key, writes two), which the batch mechanism
    must catch at execution time; ``plain_read`` is read-only.
    """
    from repro.analysis.profiles import TransactionProfile, TransactionType
    from repro.storage.tables import Catalog, Table, TableSchema
    from repro.workloads.base import Workload

    class BatchMicro(Workload):
        name = "batch-micro"

        def build_catalog(self):
            table = Table(TableSchema(name="rows", key_columns=("id",)))
            for pk in range(8):
                table.insert((pk,), {"value": 0})
            return Catalog([table])

        def _declared(self, ctx, pk):
            yield from ctx.update(
                "rows", pk, updates={"value": lambda v: (v or 0) + 1}
            )
            return True

        def _rogue(self, ctx, pk):
            yield from ctx.update(
                "rows", pk, updates={"value": lambda v: (v or 0) + 1}
            )
            # Not in the declared write set: must abort, never install.
            yield from ctx.update(
                "rows", pk + 1, updates={"value": lambda v: (v or 0) + 1}
            )
            return True

        def _read(self, ctx, pk):
            row = yield from ctx.read("rows", pk)
            return (row or {}).get("value", 0)

        def build_transaction_types(self):
            promised = lambda args: (("rows", args["pk"]),)  # noqa: E731
            return {
                "declared_write": TransactionType(
                    name="declared_write",
                    procedure=self._declared,
                    profile=TransactionProfile(
                        name="declared_write",
                        accesses=(("rows", "w"),),
                        promise_keys=promised,
                    ),
                ),
                "rogue_write": TransactionType(
                    name="rogue_write",
                    procedure=self._rogue,
                    profile=TransactionProfile(
                        name="rogue_write",
                        accesses=(("rows", "w"), ("rows", "w")),
                        promise_keys=promised,
                    ),
                ),
                "plain_read": TransactionType(
                    name="plain_read",
                    procedure=self._read,
                    profile=TransactionProfile(
                        name="plain_read",
                        accesses=(("rows", "r"),),
                        read_only=True,
                    ),
                ),
            }

        def generate_args(self, rng, txn_type):
            return {"pk": rng.randrange(4)}

    return BatchMicro()


class TestDeterministicBatch:
    """Deterministic batch execution: config validation and runtime guards."""

    ALL_TYPES = ("declared_write", "rogue_write", "plain_read")

    def test_registered(self):
        assert "batch" in CC_REGISTRY
        assert CC_REGISTRY["batch"].supports_partitioning is False

    def test_internal_batch_node_rejected(self, env):
        config = Configuration(
            node(
                "batch",
                leaf("2pl", "declared_write", "rogue_write"),
                leaf("2pl", "plain_read"),
            )
        )
        with pytest.raises(ConfigurationError, match="leaf"):
            build_engine(env, batch_micro_workload(), config)

    @pytest.mark.parametrize("ancestor", ["rp", "tso"])
    def test_ordering_ancestor_rejected(self, env, ancestor):
        config = Configuration(
            node(
                ancestor,
                leaf("batch", "declared_write", "rogue_write"),
                leaf("none", "plain_read"),
            )
        )
        with pytest.raises(ConfigurationError, match="batch group cannot run under"):
            build_engine(env, batch_micro_workload(), config)

    def test_undeclarable_write_set_rejected(self, env, noconflict_workload):
        # NoConflictWorkload's writer has no promise_keys: the sequencer
        # cannot pre-declare its slots, so the tree must not build.
        with pytest.raises(ConfigurationError, match="promise_keys"):
            build_engine(
                env, noconflict_workload, monolithic("batch", ("write_only",))
            )

    def test_partition_by_instance_rejected(self, env):
        config = Configuration(leaf("batch", *self.ALL_TYPES, instance_key="pk"))
        with pytest.raises(ConfigurationError, match="partition-by-instance"):
            build_engine(env, batch_micro_workload(), config)

    def test_bad_params_rejected(self, env):
        with pytest.raises(ConfigurationError, match="batch_size"):
            build_engine(
                env,
                batch_micro_workload(),
                monolithic("batch", self.ALL_TYPES, params={"batch_size": 0}),
            )

    def test_undeclared_write_aborts_cleanly(self, env):
        workload = batch_micro_workload()
        engine = build_engine(
            env,
            workload,
            monolithic("batch", self.ALL_TYPES, params={"batch_window": 0.001}),
        )
        outcomes, _ = run_transactions(env, engine, [("rogue_write", {"pk": 2})])
        aborted = outcomes[0]
        assert isinstance(aborted, TransactionAborted)
        assert aborted.reason == "batch-undeclared-write"
        # The declared first write never became visible.
        assert engine.store.latest_committed(("rows", 2)).value["value"] == 0
        assert engine.store.uncommitted_versions(("rows", 2)) == []
        assert check_engine(engine).ok

    def test_contended_writes_all_commit_in_one_order(self, env):
        workload = batch_micro_workload()
        engine = build_engine(
            env,
            workload,
            monolithic("batch", self.ALL_TYPES, params={"batch_size": 4}),
        )
        count = 12
        requests = [("declared_write", {"pk": 0}) for _ in range(count)]
        outcomes, _ = run_transactions(env, engine, requests)
        assert all(getattr(txn, "committed", False) for txn in outcomes)
        assert engine.stats.commits == count
        assert engine.stats.aborts == 0
        assert engine.store.latest_committed(("rows", 0)).value["value"] == count
        cc = engine.root.cc
        assert cc.batches_sealed >= count // 4
        # Every member of a batch conflicts with all its predecessors here.
        assert cc.graph_edges > 0
        assert check_engine(engine).ok
