"""Streaming DSG checker: native detectors held to the networkx reference.

Three layers of equivalence:

* the incremental (Pearce-Kelly) detector and the batch Tarjan fallback
  against ``networkx`` on random edge streams (Hypothesis);
* the streaming edge derivation against the post-hoc builder on the
  adversarial hand-built histories (intermediate read, G1c, G2, read-only
  anomaly) replayed commit-by-commit through a streaming recorder;
* end-to-end checked runs, where the streaming verdict must agree with the
  full post-hoc pass over the same recorded history.
"""

from types import SimpleNamespace

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.runner import BenchmarkRunner
from repro.core.config import monolithic
from repro.isolation.checker import check_history, check_recorder
from repro.isolation.cycles import IncrementalCycleDetector, find_cycle
from repro.isolation.dsg import build_dsg
from repro.isolation.history import History, HistoryRecorder, HistoryTransaction
from repro.isolation.levels import LEVEL_EDGE_KINDS
from repro.isolation.streaming import StreamingDSGChecker
from repro.storage.ranges import bounded_range
from repro.workloads.micro import CrossGroupConflictWorkload
from repro.workloads.queue import QueueWorkload
from repro.workloads.smallbank import SmallBankWorkload


edge_streams = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)).filter(lambda e: e[0] != e[1]),
    min_size=0,
    max_size=40,
)


class TestIncrementalCycleDetector:
    def test_forward_edges_never_cycle(self):
        detector = IncrementalCycleDetector()
        for source in range(10):
            assert detector.add_edge(source, source + 1) is None
        assert not detector.has_cycle()

    def test_back_edge_closes_cycle_with_path(self):
        detector = IncrementalCycleDetector()
        detector.add_edge(1, 2)
        detector.add_edge(2, 3)
        cycle = detector.add_edge(3, 1)
        assert cycle
        # The cycle is a closed edge walk containing the closing edge.
        assert (3, 1) in cycle
        for (_, step_to), (step_from, _) in zip(cycle, cycle[1:] + cycle[:1]):
            assert step_to == step_from

    def test_self_loop_is_a_cycle(self):
        detector = IncrementalCycleDetector()
        assert detector.add_edge(4, 4) == [(4, 4)]
        assert detector.has_cycle()

    def test_duplicate_edges_are_ignored(self):
        detector = IncrementalCycleDetector()
        detector.add_edge(1, 2)
        detector.add_edge(1, 2)
        assert detector.num_edges == 1

    def test_verdict_latches(self):
        detector = IncrementalCycleDetector()
        detector.add_edge(1, 2)
        detector.add_edge(2, 1)
        first = detector.cycle
        detector.add_edge(5, 6)
        assert detector.cycle is first

    @given(edge_streams)
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx_at_every_prefix(self, edges):
        detector = IncrementalCycleDetector()
        reference = nx.DiGraph()
        cyclic = False
        for source, target in edges:
            detector.add_edge(source, target)
            reference.add_edge(source, target)
            if not cyclic:
                cyclic = not nx.is_directed_acyclic_graph(reference)
            assert detector.has_cycle() == cyclic, (edges, source, target)

    @given(edge_streams)
    @settings(max_examples=60, deadline=None)
    def test_batch_tarjan_matches_networkx(self, edges):
        adjacency = {}
        reference = nx.DiGraph()
        for source, target in edges:
            adjacency.setdefault(source, set()).add(target)
            reference.add_edge(source, target)
        cycle = find_cycle(adjacency)
        assert (cycle is not None) == (not nx.is_directed_acyclic_graph(reference))
        if cycle:
            for (_, step_to), (step_from, _) in zip(cycle, cycle[1:] + cycle[:1]):
                assert step_to == step_from
            for source, target in cycle:
                assert target in adjacency[source]


# ---------------------------------------------------------------------------
# Replaying hand-built histories through the streaming path
# ---------------------------------------------------------------------------


def replay_history(history, level="serializable"):
    """Feed a hand-built :class:`History` through a streaming recorder.

    Committed transactions are replayed in commit order (by their last
    installed version; read-only transactions after every writer they could
    have observed), with shared version stubs so reads reference the same
    objects the writers install — exactly what the engine hands the
    recorder at runtime.
    """
    recorder = HistoryRecorder(level=level, trace_edges=True)
    stubs = {}
    for key, order in history.version_orders.items():
        for seq, writer in order:
            stubs[(key, seq)] = SimpleNamespace(key=key, writer=writer, commit_seq=seq)

    for txn_id in history.aborted_ids:
        recorder.on_abort(SimpleNamespace(txn_id=txn_id))

    def commit_order(txn):
        seqs = [seq for _key, seq in txn.writes]
        return (max(seqs) if seqs else float("inf"), txn.txn_id)

    for txn in sorted(history.transactions.values(), key=commit_order):
        versions = [stubs[(key, seq)] for key, seq in txn.writes]
        reads = []
        for key, writer, seq in txn.reads:
            if seq is not None and (key, seq) in stubs:
                version = stubs[(key, seq)]
            else:
                version = SimpleNamespace(key=key, writer=writer, commit_seq=seq)
            reads.append(SimpleNamespace(key=key, version=version))
        recorder.on_commit(
            SimpleNamespace(
                txn_id=txn.txn_id,
                txn_type=txn.txn_type,
                begin_time=txn.begin_time,
                end_time=txn.end_time,
                reads=reads,
                scans=[
                    SimpleNamespace(key_range=key_range) for key_range in txn.scans
                ],
            ),
            versions,
        )
    return recorder


def history_from(transactions, version_orders, aborted=()):
    history = History(aborted_ids=set(aborted))
    for txn in transactions:
        history.add_transaction(txn)
    history.version_orders = version_orders
    return history


ADVERSARIAL_HISTORIES = {
    "intermediate-read": (
        [
            HistoryTransaction(1, "w", writes=[("x", 2)]),
            HistoryTransaction(2, "r", reads=[("x", 1, 1)]),
        ],
        {"x": [(1, 1), (2, 1)]},
        (),
    ),
    "g1c-wr-ww-cycle": (
        [
            HistoryTransaction(1, "w", writes=[("x", 1), ("y", 4)]),
            HistoryTransaction(2, "rw", reads=[("x", 1, 1)], writes=[("y", 3)]),
        ],
        {"x": [(1, 1)], "y": [(3, 2), (4, 1)]},
        (),
    ),
    "g2-write-skew": (
        [
            HistoryTransaction(1, "t", reads=[("y", 0, 1)], writes=[("x", 3)]),
            HistoryTransaction(2, "t", reads=[("x", 0, 2)], writes=[("y", 4)]),
        ],
        {"x": [(2, 0), (3, 1)], "y": [(1, 0), (4, 2)]},
        (),
    ),
    "read-only-anomaly": (
        [
            HistoryTransaction(1, "upd", reads=[("s", 0, 1)], writes=[("s", 3)]),
            HistoryTransaction(
                2, "pivot", reads=[("s", 0, 1), ("c", 0, 2)], writes=[("c", 4)]
            ),
            HistoryTransaction(3, "ro", reads=[("s", 1, 3), ("c", 0, 2)]),
        ],
        {"s": [(1, 0), (3, 1)], "c": [(2, 0), (4, 2)]},
        (),
    ),
    "aborted-read": (
        [HistoryTransaction(1, "r", reads=[("x", 99, None)])],
        {"x": []},
        {99},
    ),
    "phantom-scan-skew": (
        # G2 via a predicate: T1 scanned items[1..10] (saw nothing) and
        # wrote the result row; T2 inserted items.5 and read the result row
        # before T1's write.  T1 -rw-> T2 exists only through the scan.
        [
            HistoryTransaction(
                1, "scanner",
                writes=[(("result", "a"), 3)],
                scans=[bounded_range("items", 1, 10)],
            ),
            HistoryTransaction(
                2, "inserter",
                reads=[(("result", "a"), 0, 1)],
                writes=[(("items", 5), 2)],
            ),
        ],
        {("result", "a"): [(1, 0), (3, 1)], ("items", 5): [(2, 2)]},
        (),
    ),
    "phantom-observed-key-is-clean": (
        # Same shape, but the scan *read* the inserted key (it committed
        # first): the rw edge belongs to item-level derivation and no
        # phantom edge may be added — the history is serializable.
        [
            HistoryTransaction(
                1, "scanner",
                reads=[(("items", 5), 2, 2)],
                writes=[(("result", "a"), 3)],
                scans=[bounded_range("items", 1, 10)],
            ),
            HistoryTransaction(2, "inserter", writes=[(("items", 5), 2)]),
        ],
        {("result", "a"): [(1, 0), (3, 1)], ("items", 5): [(2, 2)]},
        (),
    ),
    "serializable-chain": (
        [
            HistoryTransaction(1, "w", writes=[("x", 1)]),
            HistoryTransaction(2, "r", reads=[("x", 1, 1)], writes=[("y", 2)]),
            HistoryTransaction(3, "r", reads=[("y", 2, 2)]),
        ],
        {"x": [(1, 1)], "y": [(2, 2)]},
        (),
    ),
}


class TestStreamingReplayEquivalence:
    @pytest.mark.parametrize("name", sorted(ADVERSARIAL_HISTORIES))
    @pytest.mark.parametrize("level", ["serializable", "read-committed"])
    def test_adversarial_history_verdicts_match(self, name, level):
        transactions, version_orders, aborted = ADVERSARIAL_HISTORIES[name]
        history = history_from(transactions, version_orders, aborted)
        reference = check_history(history, level=level)
        recorder = replay_history(history, level=level)
        streamed = check_recorder(recorder, level=level)
        assert streamed.serializable == reference.serializable, name
        assert bool(streamed.aborted_reads) == bool(reference.aborted_reads)
        assert bool(streamed.intermediate_reads) == bool(reference.intermediate_reads)
        assert streamed.ok == reference.ok

    @pytest.mark.parametrize("name", sorted(ADVERSARIAL_HISTORIES))
    def test_streaming_edges_match_reference_dsg(self, name):
        """The streamed edge set equals the post-hoc builder's (deduplicated)."""
        transactions, version_orders, aborted = ADVERSARIAL_HISTORIES[name]
        history = history_from(transactions, version_orders, aborted)
        recorder = replay_history(history)
        reference_edges = {
            (source, target, kind)
            for source, target, kind in build_dsg(history).edges()
            if source != target
        }
        assert recorder.streaming_checker._edge_seen == reference_edges


class TestStreamingCheckedRuns:
    def _run(self, workload, config, clients=8, duration=0.25, **kwargs):
        runner = BenchmarkRunner(
            workload, config, seed=11, check_isolation=True, **kwargs
        )
        try:
            runner.run(clients, duration=duration, warmup=0.05)
        finally:
            runner.stop()
        return runner

    @pytest.mark.parametrize(
        "workload_factory,config_cc",
        [
            (lambda: CrossGroupConflictWorkload(shared_rows=5, cold_rows=50), "2pl"),
            (lambda: CrossGroupConflictWorkload(shared_rows=5, cold_rows=50), "ssi"),
            (lambda: SmallBankWorkload(customers=50, hot_accounts=5), "ssi"),
            # Scan-bearing runs: phantom edge derivation must agree between
            # the streaming checker and the post-hoc builder end-to-end.
            (lambda: QueueWorkload(initial_messages=4, window=6), "2pl"),
            (lambda: QueueWorkload(initial_messages=4, window=6), "ssi"),
        ],
    )
    def test_streaming_verdict_matches_posthoc(self, workload_factory, config_cc):
        workload = workload_factory()
        runner = self._run(
            workload, monolithic(config_cc, workload.transaction_names())
        )
        recorder = runner.recorder
        assert recorder.streaming_checker is not None
        streamed = check_recorder(recorder, level="serializable")
        posthoc = check_history(recorder.history(), level="serializable")
        assert streamed.serializable == posthoc.serializable
        assert streamed.ok == posthoc.ok
        assert streamed.ok, streamed.describe()
        # And against the networkx reference graph itself.
        assert not build_dsg(recorder.history()).has_cycle()

    def test_streaming_survives_history_window_eviction(self):
        workload = CrossGroupConflictWorkload(shared_rows=5, cold_rows=50)
        runner = self._run(
            workload,
            monolithic("2pl", workload.transaction_names()),
            duration=0.3,
            history_window=25,
        )
        report = check_recorder(runner.recorder, level="serializable")
        assert runner.recorder._evicted
        assert report.ok, report.describe()

    def test_check_recorder_falls_back_on_level_mismatch(self):
        workload = CrossGroupConflictWorkload(shared_rows=5, cold_rows=50)
        runner = self._run(
            workload, monolithic("2pl", workload.transaction_names())
        )
        # The recorder streams at serializable; asking for read-committed
        # must fall back to the post-hoc pass, not reuse the wrong kinds.
        report = check_recorder(runner.recorder, level="read-committed")
        assert report.ok, report.describe()

    def test_recorder_rejects_unknown_stream_level(self):
        with pytest.raises(ValueError):
            HistoryRecorder(level="serialisable")


class TestStreamingCheckerUnit:
    def test_pipelined_read_resolves_wr_at_writer_commit(self):
        # Reader consumes an in-flight version, commits first; the wr edge
        # lands when the writer commits (runtime-pipelining shape).
        checker = StreamingDSGChecker(
            LEVEL_EDGE_KINDS["serializable"], trace_edges=True
        )
        version = SimpleNamespace(key="x", writer=1, commit_seq=None)
        checker.on_commit(2, [], [("x", version)])
        version.commit_seq = 5
        checker.on_commit(1, [version], [])
        assert (1, 2, "wr") in checker._edge_seen
        # A later writer then closes the reader's rw anti-dependency.
        version2 = SimpleNamespace(key="x", writer=3, commit_seq=6)
        checker.on_commit(3, [version2], [])
        assert (2, 3, "rw") in checker._edge_seen
        assert not checker.has_cycle()

    def test_pipelined_intermediate_read_flagged_at_writer_commit(self):
        # Regression: a reader that commits before its writer and observed
        # a sequenced non-final version must be flagged when the writer's
        # final version lands — the post-hoc reference flags it, and at
        # read-committed no rw cycle would mask the miss.
        checker = StreamingDSGChecker(
            LEVEL_EDGE_KINDS["read-committed"], trace_edges=True
        )
        stale = SimpleNamespace(key="x", writer=1, commit_seq=1)
        final = SimpleNamespace(key="x", writer=1, commit_seq=2)
        checker.on_commit(2, [], [("x", stale)])
        checker.on_commit(1, [final], [])
        assert checker.intermediate_reads == [(2, "x", 1)]
        assert (1, 2, "wr") in checker._edge_seen

    def test_parked_reader_of_never_committed_writer_is_aborted_read(self):
        checker = StreamingDSGChecker(LEVEL_EDGE_KINDS["serializable"])
        in_flight = SimpleNamespace(key="x", writer=9, commit_seq=None)
        checker.on_commit(2, [], [("x", in_flight)])
        assert checker.pending_aborted_reads() == [(2, "x", 9)]
        # ...but not once the writer commits.
        in_flight.commit_seq = 5
        checker.on_commit(9, [in_flight], [])
        assert checker.pending_aborted_reads() == []

    def test_write_skew_cycle_detected_streaming(self):
        checker = StreamingDSGChecker(LEVEL_EDGE_KINDS["serializable"])
        x0 = SimpleNamespace(key="x", writer=0, commit_seq=1)
        y0 = SimpleNamespace(key="y", writer=0, commit_seq=2)
        x1 = SimpleNamespace(key="x", writer=1, commit_seq=3)
        y2 = SimpleNamespace(key="y", writer=2, commit_seq=4)
        checker.on_commit(1, [x1], [("y", y0)])
        checker.on_commit(2, [y2], [("x", x0)])
        assert checker.has_cycle()
        cycle_nodes = {node for edge in checker.cycle for node in edge}
        assert cycle_nodes == {1, 2}

    def test_read_committed_kinds_ignore_rw(self):
        checker = StreamingDSGChecker(LEVEL_EDGE_KINDS["read-committed"])
        x0 = SimpleNamespace(key="x", writer=0, commit_seq=1)
        y0 = SimpleNamespace(key="y", writer=0, commit_seq=2)
        x1 = SimpleNamespace(key="x", writer=1, commit_seq=3)
        y2 = SimpleNamespace(key="y", writer=2, commit_seq=4)
        checker.on_commit(1, [x1], [("y", y0)])
        checker.on_commit(2, [y2], [("x", x0)])
        assert not checker.has_cycle()


class TestSubgraphCaching:
    def _history(self):
        transactions = [
            HistoryTransaction(1, "w", writes=[("x", 1)]),
            HistoryTransaction(2, "rw", reads=[("x", 1, 1)], writes=[("x", 2)]),
        ]
        return history_from(transactions, {"x": [(1, 1), (2, 2)]})

    def test_subgraph_is_cached_per_kind_set(self):
        dsg = build_dsg(self._history())
        first = dsg.subgraph({"ww", "wr"})
        assert dsg.subgraph({"ww", "wr"}) is first
        assert dsg.subgraph(frozenset({"wr", "ww"})) is first
        other = dsg.subgraph({"rw"})
        assert other is not first

    def test_add_edge_invalidates_cache(self):
        dsg = build_dsg(self._history())
        stale = dsg.subgraph({"ww"})
        dsg.add_edge(2, 3, "ww")
        fresh = dsg.subgraph({"ww"})
        assert fresh is not stale
        assert fresh.has_edge(2, 3)

    def test_direct_node_addition_self_heals(self):
        dsg = build_dsg(self._history())
        cached = dsg.subgraph({"ww"})
        dsg.graph.add_node(99)
        refreshed = dsg.subgraph({"ww"})
        assert refreshed is not cached
        assert 99 in refreshed

    def test_has_cycle_and_find_cycle_reuse_cache(self):
        dsg = build_dsg(self._history())
        assert not dsg.has_cycle()
        dsg.add_edge(2, 1, "ww")
        assert dsg.has_cycle()
        assert dsg.find_cycle()
