"""CC conformance fuzz suite: random histories vs every registered CC tree.

Every CC mechanism (and the hierarchical compositions the registry builds
from them) must keep randomly generated concurrent histories — point reads,
writes, read-modify-writes and *range scans* — serializable under the
streaming isolation oracle.  Three layers:

* a Hypothesis fuzzer drawing random multi-transaction schedules and a
  random tree per example;
* a deterministic seeded sweep replaying a fixed workload against *every*
  tree (marked ``slow``: the CI fast lane skips it, the full lane and the
  local tier-1 run keep it);
* a pinned regression corpus of previously-found counterexample shapes
  (scan skew, write skew, G1c, the queue enqueue/dequeue race, the
  RP-over-RP cross-group stale read), replayed against every tree on every
  run.

Everything in the registry's vocabulary is in: cross-group RP-over-RP trees
(whose stale-read corner is now closed — see ``TestRpOverRpStaleRead`` for
the pinned multi-step adversary) and the deterministic batch trees included.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.profiles import TransactionProfile, TransactionType
from repro.core.config import Configuration, leaf, monolithic, node
from repro.core.engine import EngineOptions
from repro.errors import TransactionAborted
from repro.isolation.checker import check_history, check_recorder
from repro.isolation.history import HistoryRecorder
from repro.sim.environment import Environment
from repro.storage.tables import Catalog, Table, TableSchema
from repro.workloads.base import Workload
from tests.conftest import build_engine, run_transactions

TXN_TYPES = ("alpha", "beta", "reader")
KEYSPACE = 8          # loaded keys 0..7
INSERT_SPACE = 16     # writes may create keys up to 15 (phantom sources)


def _declared_writes(args):
    """Write keys of a scripted transaction, computed from the args alone."""
    return [("rows", op[1]) for op in args["ops"] if op[0] in ("w", "u")]


def _declared_ranges(args):
    """Scan ranges of a scripted transaction, computed from the args alone."""
    return [("rows", op[1], op[2]) for op in args["ops"] if op[0] == "scan"]


class ConformanceWorkload(Workload):
    """One table, three transaction types, ops scripted through args."""

    name = "cc-conformance"

    def build_catalog(self):
        rows = Table(TableSchema("rows", ("id",), ("v",)))
        for pk in range(KEYSPACE):
            rows.insert((pk,), {"v": pk})
        return Catalog([rows])

    def _run_ops(self, ctx, ops):
        total = 0
        for op in ops:
            kind = op[0]
            if kind == "r":
                row = yield from ctx.read("rows", op[1])
                total += (row or {}).get("v", 0)
            elif kind == "w":
                yield from ctx.write("rows", op[1], row={"v": op[2]})
            elif kind == "u":
                yield from ctx.update(
                    "rows", op[1], updates={"v": lambda v: (v or 0) + 1}
                )
            elif kind == "scan":
                matches = yield from ctx.scan("rows", lo=op[1], hi=op[2])
                total += sum((row or {}).get("v", 0) for _pk, row in matches)
            else:  # pragma: no cover - strategy bug guard
                raise ValueError(f"unknown op {op!r}")
        return total

    def build_transaction_types(self):
        types = {}
        for name in TXN_TYPES:
            read_only = name == "reader"
            accesses = (
                (("rows", "r"),) if read_only else (("rows", "r"), ("rows", "w"))
            )
            types[name] = TransactionType(
                name=name,
                procedure=self._run_ops,
                profile=TransactionProfile(
                    name=name,
                    accesses=accesses,
                    read_only=read_only,
                    # The scripted ops ride in the args, so the write set and
                    # the scanned ranges are declarable — which is what lets
                    # the deterministic batch trees join the conformance
                    # sweep (their sequencer pre-assigns version slots from
                    # these declarations).
                    promise_keys=None if read_only else _declared_writes,
                    scan_ranges=_declared_ranges,
                ),
            )
        return types

    def generate_args(self, rng, txn_type):
        ops = []
        for _ in range(rng.randint(1, 5)):
            ops.append(random_op(rng, read_only=txn_type == "reader"))
        return {"ops": ops}


def random_op(rng, read_only=False):
    kinds = ("r", "scan") if read_only else ("r", "w", "u", "scan")
    kind = rng.choice(kinds)
    if kind == "r":
        return ("r", rng.randrange(KEYSPACE))
    if kind == "w":
        return ("w", rng.randrange(INSERT_SPACE), rng.randrange(100))
    if kind == "u":
        return ("u", rng.randrange(KEYSPACE))
    lo = rng.randrange(INSERT_SPACE)
    return ("scan", lo, lo + rng.randint(0, 5))


#: Every CC tree shape the conformance suite holds to the oracle — the
#: cross-group RP-over-RP trees and the deterministic batch trees included.
CONFORMANCE_TREES = {
    "mono-2pl": lambda: monolithic("2pl", TXN_TYPES, name="conf-2pl"),
    "mono-ssi": lambda: monolithic("ssi", TXN_TYPES, name="conf-ssi"),
    "mono-occ": lambda: monolithic("occ", TXN_TYPES, name="conf-occ"),
    "mono-tso": lambda: monolithic("tso", TXN_TYPES, name="conf-tso"),
    "mono-rp": lambda: monolithic("rp", TXN_TYPES, name="conf-rp"),
    "2pl/(rp,rp)": lambda: Configuration(
        node("2pl", leaf("rp", "alpha"), leaf("rp", "beta", "reader")),
        name="conf-2pl-rp-rp",
    ),
    "ssi/(none,2pl)": lambda: Configuration(
        node("ssi", leaf("none", "reader"), leaf("2pl", "alpha", "beta")),
        name="conf-ssi-none-2pl",
    ),
    "ssi/(2pl,2pl)": lambda: Configuration(
        node("ssi", leaf("2pl", "alpha", "reader"), leaf("2pl", "beta")),
        name="conf-ssi-2pl-2pl",
    ),
    "ssi/(rp,2pl)": lambda: Configuration(
        node("ssi", leaf("rp", "alpha"), leaf("2pl", "beta", "reader")),
        name="conf-ssi-rp-2pl",
    ),
    "2pl/(2pl,tso)": lambda: Configuration(
        node("2pl", leaf("2pl", "alpha", "reader"), leaf("tso", "beta")),
        name="conf-2pl-2pl-tso",
    ),
    "rp/(rp,rp)": lambda: Configuration(
        node("rp", leaf("rp", "alpha"), leaf("rp", "beta", "reader")),
        name="conf-rp-rp-rp",
    ),
    "rp/(rp,2pl)": lambda: Configuration(
        node("rp", leaf("rp", "alpha", "reader"), leaf("2pl", "beta")),
        name="conf-rp-rp-2pl",
    ),
    "mono-batch": lambda: monolithic("batch", TXN_TYPES, name="conf-batch"),
    "ssi/(none,batch)": lambda: Configuration(
        node("ssi", leaf("none", "reader"), leaf("batch", "alpha", "beta")),
        name="conf-ssi-none-batch",
    ),
    "2pl/(batch,2pl)": lambda: Configuration(
        node("2pl", leaf("batch", "alpha"), leaf("2pl", "beta", "reader")),
        name="conf-2pl-batch-2pl",
    ),
    "ssi/(batch,batch)": lambda: Configuration(
        node("ssi", leaf("batch", "alpha", "reader"), leaf("batch", "beta")),
        name="conf-ssi-batch-batch",
    ),
}


def run_conformance(tree_name, requests):
    """Run scripted transactions under a tree; return the oracle report."""
    workload = ConformanceWorkload()
    env = Environment()
    engine = build_engine(
        env,
        workload,
        CONFORMANCE_TREES[tree_name](),
        options=EngineOptions(
            charge_costs=True, lock_timeout=0.2, commit_wait_timeout=0.4
        ),
    )
    recorder = HistoryRecorder(level="serializable")
    engine.history_recorder = recorder
    outcomes, _processes = run_transactions(env, engine, requests)
    report = check_recorder(recorder, level="serializable")
    committed = sum(1 for o in outcomes if not isinstance(o, TransactionAborted))
    return report, committed, recorder


class TestConformanceFuzz:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_histories_stay_serializable(self, data):
        """Random multi-key histories (scans included) pass the oracle."""
        tree_name = data.draw(st.sampled_from(sorted(CONFORMANCE_TREES)))
        rng = random.Random(data.draw(st.integers(0, 10_000)))
        count = data.draw(st.integers(min_value=3, max_value=12))
        requests = []
        for _ in range(count):
            name = rng.choice(TXN_TYPES)
            ops = [
                random_op(rng, read_only=name == "reader")
                for _ in range(rng.randint(1, 5))
            ]
            requests.append((name, {"ops": ops}))
        report, _committed, _recorder = run_conformance(tree_name, requests)
        assert report.ok, f"{tree_name}: {report.describe()}"

    @pytest.mark.slow
    @pytest.mark.parametrize("tree_name", sorted(CONFORMANCE_TREES))
    def test_seeded_sweep_every_tree(self, tree_name):
        """A fixed seeded schedule replayed against every registered tree."""
        workload = ConformanceWorkload()
        rng = random.Random(1234)
        requests = [workload.next_transaction(rng) for _ in range(40)]
        report, committed, recorder = run_conformance(tree_name, requests)
        assert report.ok, f"{tree_name}: {report.describe()}"
        assert committed > 0
        # Streaming and post-hoc passes agree on the same recorded history.
        posthoc = check_history(recorder.history(), level="serializable")
        assert posthoc.ok == report.ok


# ---------------------------------------------------------------------------
# Pinned regression corpus: previously-found counterexample shapes
# ---------------------------------------------------------------------------

#: Each entry is a named list of (txn_type, ops).  These shapes have each
#: broken a CC implementation at some point (phantom scan skew broke SSI's
#: committed-reader retention during development); they are replayed against
#: every tree on every run so a regression cannot land silently.
REGRESSION_CORPUS = {
    "scan-skew": [
        ("alpha", [("scan", 0, 15), ("r", 0), ("r", 1), ("w", 3, 99)]),
        ("beta", [("r", 3), ("w", 12, 7)]),
    ],
    "write-skew": [
        ("alpha", [("r", 0), ("w", 1, 10)]),
        ("beta", [("r", 1), ("w", 0, 20)]),
    ],
    "g1c-exchange": [
        ("alpha", [("w", 0, 1), ("r", 1), ("w", 2, 1)]),
        ("beta", [("w", 1, 2), ("r", 0), ("w", 2, 2)]),
    ],
    "queue-race": [
        # Dequeue-shaped scan+consume racing an enqueue-shaped insert.
        ("alpha", [("u", 0), ("scan", 0, 10), ("w", 2, 0)]),
        ("beta", [("u", 1), ("w", 9, 1)]),
        ("reader", [("scan", 0, 10)]),
    ],
    "rmw-pileup": [
        ("alpha", [("u", 0), ("u", 1)]),
        ("beta", [("u", 1), ("u", 0)]),
        ("alpha", [("u", 0), ("scan", 0, 3)]),
    ],
}


class TestRegressionCorpus:
    @pytest.mark.parametrize("case", sorted(REGRESSION_CORPUS))
    @pytest.mark.parametrize("tree_name", sorted(CONFORMANCE_TREES))
    def test_corpus_case_passes_oracle(self, tree_name, case):
        requests = [
            (name, {"ops": list(ops)}) for name, ops in REGRESSION_CORPUS[case]
        ]
        report, _committed, _recorder = run_conformance(tree_name, requests)
        assert report.ok, f"{tree_name}/{case}: {report.describe()}"


# ---------------------------------------------------------------------------
# Pinned adversary: the cross-group RP-over-RP stale read
# ---------------------------------------------------------------------------


class TwoStepWorkload(Workload):
    """Two tables => two pipeline steps, so RP step-commits mid-transaction.

    The single-table :class:`ConformanceWorkload` collapses every RP group
    to one pipeline step, which is why random fuzzing never reached the
    RP-over-RP corner: the outer node's step-commit bookkeeping only fills
    when a transaction advances past a step while still active.  This
    workload's profiles access ``hot`` then ``tail``, giving every RP group
    two steps, and a ``think`` op controls the interleaving.
    """

    name = "two-step"

    def build_catalog(self):
        hot = Table(TableSchema("hot", ("id",), ("v",)))
        tail = Table(TableSchema("tail", ("id",), ("v",)))
        for pk in range(4):
            hot.insert((pk,), {"v": pk})
            tail.insert((pk,), {"v": pk})
        return Catalog([hot, tail])

    def _run_ops(self, ctx, ops):
        total = 0
        for op in ops:
            kind = op[0]
            if kind == "r":
                row = yield from ctx.read(op[1], op[2])
                total += (row or {}).get("v", 0)
            elif kind == "w":
                yield from ctx.write(op[1], op[2], row={"v": op[3]})
            elif kind == "think":
                yield from ctx.think(op[1])
            else:  # pragma: no cover - script bug guard
                raise ValueError(f"unknown op {op!r}")
        return total

    def build_transaction_types(self):
        types = {}
        for name in ("alpha", "beta"):
            types[name] = TransactionType(
                name=name,
                procedure=self._run_ops,
                profile=TransactionProfile(
                    name=name,
                    accesses=(
                        ("hot", "r"), ("hot", "w"), ("tail", "r"), ("tail", "w")
                    ),
                ),
            )
        return types

    def generate_args(self, rng, txn_type):
        return {"ops": []}


class TestRpOverRpStaleRead:
    """The closed cross-group RP-over-RP stale-read corner, pinned.

    History: T1 (group A) writes hot.0 and advances into the tail step,
    step-committing the write at both RP nodes.  T2 (group B) then writes
    hot.0 *and* hot.1 through the outer pipeline — its hot.0 supersedes
    T1's at the outer node — and advances.  T3 (group A) reads hot.1
    (T2's version: ordered after T2) and then hot.0: before the fix, the
    inner leaf proposed T1's step-committed hot.0 and the outer amend
    trusted the member candidate, so T3 observed {hot.1 from T2, hot.0
    from T1} — a cycle, since T2 is ordered after T1 on hot.0.
    """

    TREE = staticmethod(
        lambda: Configuration(
            node("rp", leaf("rp", "alpha"), leaf("rp", "beta")),
            name="rp-over-rp-adversary",
        )
    )

    REQUESTS = [
        ("alpha", {"ops": [("w", "hot", 0, 101), ("r", "tail", 0), ("think", 0.5)]}),
        ("beta", {"ops": [
            ("think", 0.1),
            ("w", "hot", 0, 202),
            ("w", "hot", 1, 202),
            ("r", "tail", 1),
            ("think", 0.3),
        ]}),
        ("alpha", {"ops": [("think", 0.2), ("r", "hot", 1), ("r", "hot", 0)]}),
    ]

    def test_pinned_adversary_stays_serializable(self):
        workload = TwoStepWorkload()
        env = Environment()
        engine = build_engine(
            env,
            workload,
            self.TREE(),
            options=EngineOptions(
                charge_costs=False, lock_timeout=2.0, commit_wait_timeout=4.0
            ),
        )
        recorder = HistoryRecorder(level="serializable")
        engine.history_recorder = recorder
        outcomes, _processes = run_transactions(env, engine, self.REQUESTS)
        report = check_recorder(recorder, level="serializable")
        assert report.ok, report.describe()
        # The reader must not mix pipeline generations: whichever writer its
        # hot.1 read observed, its hot.0 read must not come from an *earlier*
        # one (the stale proposal the outer amend used to trust).
        readers = [
            txn
            for txn in outcomes
            if not isinstance(txn, TransactionAborted)
            and txn.txn_type == "alpha"
            and any(r.key == ("hot", 1) for r in txn.reads)
        ]
        assert readers, "the adversarial reader must commit"
        for txn in readers:
            by_key = {r.key: r.version for r in txn.reads}
            hot0, hot1 = by_key.get(("hot", 0)), by_key.get(("hot", 1))
            if hot0 is not None and hot1 is not None and hot1.writer != hot0.writer:
                assert hot0.writer > hot1.writer, (
                    f"stale cross-group read: hot.0 from txn {hot0.writer} "
                    f"but hot.1 from the later txn {hot1.writer}"
                )
