"""CC conformance fuzz suite: random histories vs every registered CC tree.

Every CC mechanism (and the hierarchical compositions the registry builds
from them) must keep randomly generated concurrent histories — point reads,
writes, read-modify-writes and *range scans* — serializable under the
streaming isolation oracle.  Three layers:

* a Hypothesis fuzzer drawing random multi-transaction schedules and a
  random tree per example;
* a deterministic seeded sweep replaying a fixed workload against *every*
  tree (marked ``slow``: the CI fast lane skips it, the full lane and the
  local tier-1 run keep it);
* a pinned regression corpus of previously-found counterexample shapes
  (scan skew, write skew, G1c, the queue enqueue/dequeue race), replayed
  against every tree on every run.

Cross-group RP-over-RP trees are excluded (the known stale-read corner
documented in ROADMAP); everything else in the registry's vocabulary is in.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.profiles import TransactionProfile, TransactionType
from repro.core.config import Configuration, leaf, monolithic, node
from repro.core.engine import EngineOptions
from repro.errors import TransactionAborted
from repro.isolation.checker import check_history, check_recorder
from repro.isolation.history import HistoryRecorder
from repro.sim.environment import Environment
from repro.storage.tables import Catalog, Table, TableSchema
from repro.workloads.base import Workload
from tests.conftest import build_engine, run_transactions

TXN_TYPES = ("alpha", "beta", "reader")
KEYSPACE = 8          # loaded keys 0..7
INSERT_SPACE = 16     # writes may create keys up to 15 (phantom sources)


class ConformanceWorkload(Workload):
    """One table, three transaction types, ops scripted through args."""

    name = "cc-conformance"

    def build_catalog(self):
        rows = Table(TableSchema("rows", ("id",), ("v",)))
        for pk in range(KEYSPACE):
            rows.insert((pk,), {"v": pk})
        return Catalog([rows])

    def _run_ops(self, ctx, ops):
        total = 0
        for op in ops:
            kind = op[0]
            if kind == "r":
                row = yield from ctx.read("rows", op[1])
                total += (row or {}).get("v", 0)
            elif kind == "w":
                yield from ctx.write("rows", op[1], row={"v": op[2]})
            elif kind == "u":
                yield from ctx.update(
                    "rows", op[1], updates={"v": lambda v: (v or 0) + 1}
                )
            elif kind == "scan":
                matches = yield from ctx.scan("rows", lo=op[1], hi=op[2])
                total += sum((row or {}).get("v", 0) for _pk, row in matches)
            else:  # pragma: no cover - strategy bug guard
                raise ValueError(f"unknown op {op!r}")
        return total

    def build_transaction_types(self):
        types = {}
        for name in TXN_TYPES:
            read_only = name == "reader"
            accesses = (
                (("rows", "r"),) if read_only else (("rows", "r"), ("rows", "w"))
            )
            types[name] = TransactionType(
                name=name,
                procedure=self._run_ops,
                profile=TransactionProfile(
                    name=name, accesses=accesses, read_only=read_only
                ),
            )
        return types

    def generate_args(self, rng, txn_type):
        ops = []
        for _ in range(rng.randint(1, 5)):
            ops.append(random_op(rng, read_only=txn_type == "reader"))
        return {"ops": ops}


def random_op(rng, read_only=False):
    kinds = ("r", "scan") if read_only else ("r", "w", "u", "scan")
    kind = rng.choice(kinds)
    if kind == "r":
        return ("r", rng.randrange(KEYSPACE))
    if kind == "w":
        return ("w", rng.randrange(INSERT_SPACE), rng.randrange(100))
    if kind == "u":
        return ("u", rng.randrange(KEYSPACE))
    lo = rng.randrange(INSERT_SPACE)
    return ("scan", lo, lo + rng.randint(0, 5))


#: Every CC tree shape the conformance suite holds to the oracle.
#: (RP-over-RP cross-group trees are excluded: documented stale-read corner.)
CONFORMANCE_TREES = {
    "mono-2pl": lambda: monolithic("2pl", TXN_TYPES, name="conf-2pl"),
    "mono-ssi": lambda: monolithic("ssi", TXN_TYPES, name="conf-ssi"),
    "mono-occ": lambda: monolithic("occ", TXN_TYPES, name="conf-occ"),
    "mono-tso": lambda: monolithic("tso", TXN_TYPES, name="conf-tso"),
    "mono-rp": lambda: monolithic("rp", TXN_TYPES, name="conf-rp"),
    "2pl/(rp,rp)": lambda: Configuration(
        node("2pl", leaf("rp", "alpha"), leaf("rp", "beta", "reader")),
        name="conf-2pl-rp-rp",
    ),
    "ssi/(none,2pl)": lambda: Configuration(
        node("ssi", leaf("none", "reader"), leaf("2pl", "alpha", "beta")),
        name="conf-ssi-none-2pl",
    ),
    "ssi/(2pl,2pl)": lambda: Configuration(
        node("ssi", leaf("2pl", "alpha", "reader"), leaf("2pl", "beta")),
        name="conf-ssi-2pl-2pl",
    ),
    "ssi/(rp,2pl)": lambda: Configuration(
        node("ssi", leaf("rp", "alpha"), leaf("2pl", "beta", "reader")),
        name="conf-ssi-rp-2pl",
    ),
    "2pl/(2pl,tso)": lambda: Configuration(
        node("2pl", leaf("2pl", "alpha", "reader"), leaf("tso", "beta")),
        name="conf-2pl-2pl-tso",
    ),
}


def run_conformance(tree_name, requests):
    """Run scripted transactions under a tree; return the oracle report."""
    workload = ConformanceWorkload()
    env = Environment()
    engine = build_engine(
        env,
        workload,
        CONFORMANCE_TREES[tree_name](),
        options=EngineOptions(
            charge_costs=True, lock_timeout=0.2, commit_wait_timeout=0.4
        ),
    )
    recorder = HistoryRecorder(level="serializable")
    engine.history_recorder = recorder
    outcomes, _processes = run_transactions(env, engine, requests)
    report = check_recorder(recorder, level="serializable")
    committed = sum(1 for o in outcomes if not isinstance(o, TransactionAborted))
    return report, committed, recorder


class TestConformanceFuzz:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_histories_stay_serializable(self, data):
        """Random multi-key histories (scans included) pass the oracle."""
        tree_name = data.draw(st.sampled_from(sorted(CONFORMANCE_TREES)))
        rng = random.Random(data.draw(st.integers(0, 10_000)))
        count = data.draw(st.integers(min_value=3, max_value=12))
        requests = []
        for _ in range(count):
            name = rng.choice(TXN_TYPES)
            ops = [
                random_op(rng, read_only=name == "reader")
                for _ in range(rng.randint(1, 5))
            ]
            requests.append((name, {"ops": ops}))
        report, _committed, _recorder = run_conformance(tree_name, requests)
        assert report.ok, f"{tree_name}: {report.describe()}"

    @pytest.mark.slow
    @pytest.mark.parametrize("tree_name", sorted(CONFORMANCE_TREES))
    def test_seeded_sweep_every_tree(self, tree_name):
        """A fixed seeded schedule replayed against every registered tree."""
        workload = ConformanceWorkload()
        rng = random.Random(1234)
        requests = [workload.next_transaction(rng) for _ in range(40)]
        report, committed, recorder = run_conformance(tree_name, requests)
        assert report.ok, f"{tree_name}: {report.describe()}"
        assert committed > 0
        # Streaming and post-hoc passes agree on the same recorded history.
        posthoc = check_history(recorder.history(), level="serializable")
        assert posthoc.ok == report.ok


# ---------------------------------------------------------------------------
# Pinned regression corpus: previously-found counterexample shapes
# ---------------------------------------------------------------------------

#: Each entry is a named list of (txn_type, ops).  These shapes have each
#: broken a CC implementation at some point (phantom scan skew broke SSI's
#: committed-reader retention during development); they are replayed against
#: every tree on every run so a regression cannot land silently.
REGRESSION_CORPUS = {
    "scan-skew": [
        ("alpha", [("scan", 0, 15), ("r", 0), ("r", 1), ("w", 3, 99)]),
        ("beta", [("r", 3), ("w", 12, 7)]),
    ],
    "write-skew": [
        ("alpha", [("r", 0), ("w", 1, 10)]),
        ("beta", [("r", 1), ("w", 0, 20)]),
    ],
    "g1c-exchange": [
        ("alpha", [("w", 0, 1), ("r", 1), ("w", 2, 1)]),
        ("beta", [("w", 1, 2), ("r", 0), ("w", 2, 2)]),
    ],
    "queue-race": [
        # Dequeue-shaped scan+consume racing an enqueue-shaped insert.
        ("alpha", [("u", 0), ("scan", 0, 10), ("w", 2, 0)]),
        ("beta", [("u", 1), ("w", 9, 1)]),
        ("reader", [("scan", 0, 10)]),
    ],
    "rmw-pileup": [
        ("alpha", [("u", 0), ("u", 1)]),
        ("beta", [("u", 1), ("u", 0)]),
        ("alpha", [("u", 0), ("scan", 0, 3)]),
    ],
}


class TestRegressionCorpus:
    @pytest.mark.parametrize("case", sorted(REGRESSION_CORPUS))
    @pytest.mark.parametrize("tree_name", sorted(CONFORMANCE_TREES))
    def test_corpus_case_passes_oracle(self, tree_name, case):
        requests = [
            (name, {"ops": list(ops)}) for name, ops in REGRESSION_CORPUS[case]
        ]
        report, _committed, _recorder = run_conformance(tree_name, requests)
        assert report.ok, f"{tree_name}/{case}: {report.describe()}"
