"""Shared fixtures for the test suite."""

import os

import pytest
from hypothesis import Phase, settings

# Hypothesis profiles: "fast" keeps the default tier-1 run snappy (no
# shrinking phase), "ci" digs deeper, "ci-fast" is the CI fast lane's
# deterministic budget (fixed derivation instead of random seeding, fewer
# examples).  Select with HYPOTHESIS_PROFILE=ci / ci-fast.
settings.register_profile(
    "fast",
    max_examples=25,
    deadline=None,
    phases=[Phase.explicit, Phase.reuse, Phase.generate],
)
settings.register_profile("ci", max_examples=200, deadline=None)
settings.register_profile(
    "ci-fast",
    max_examples=15,
    deadline=None,
    derandomize=True,
    phases=[Phase.explicit, Phase.reuse, Phase.generate],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "fast"))

from repro.core.config import Configuration, leaf, monolithic, node
from repro.core.engine import EngineOptions, TebaldiEngine
from repro.sim.environment import Environment
from repro.storage.mvstore import MultiVersionStore
from repro.workloads.micro import CrossGroupConflictWorkload, NoConflictWorkload
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.tpcc.schema import TPCCScale


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def store():
    return MultiVersionStore()


@pytest.fixture
def fast_options():
    """Engine options with costs disabled (pure logic tests)."""
    return EngineOptions(charge_costs=False, lock_timeout=0.2, commit_wait_timeout=0.4)


@pytest.fixture
def micro_workload():
    return CrossGroupConflictWorkload(shared_rows=10, cold_rows=100)


@pytest.fixture
def noconflict_workload():
    return NoConflictWorkload(rows=1000, operations=4)


@pytest.fixture
def tiny_tpcc():
    """A very small TPC-C population for functional tests."""
    scale = TPCCScale(
        warehouses=1,
        districts_per_warehouse=2,
        customers_per_district=10,
        items=30,
        initial_orders_per_district=5,
    )
    return TPCCWorkload(scale=scale)


def build_engine(env, workload, configuration, options=None, profiler=None):
    """Create an engine with the workload's data loaded."""
    store = MultiVersionStore()
    workload.populate(store)
    return TebaldiEngine(
        env,
        configuration,
        workload.transaction_types(),
        store=store,
        options=options or EngineOptions(charge_costs=False),
        profiler=profiler,
    )


def run_transactions(env, engine, requests):
    """Run a list of (txn_type, args) through the engine; return transactions."""
    from repro.errors import TransactionAborted

    outcomes = []

    def _one(txn_type, args):
        try:
            txn = yield from engine.execute_transaction(txn_type, args)
            outcomes.append(txn)
        except TransactionAborted as aborted:
            outcomes.append(aborted)

    processes = [
        env.process(_one(txn_type, args), name=f"test-{index}")
        for index, (txn_type, args) in enumerate(requests)
    ]
    env.run()
    return outcomes, processes


@pytest.fixture
def micro_configs():
    """A few representative configurations for the micro workload."""
    return {
        "2pl": monolithic("2pl", ("group_a_update", "group_b_update")),
        "ssi": monolithic("ssi", ("group_a_update", "group_b_update")),
        "two-layer": Configuration(
            node(
                "2pl",
                leaf("rp", "group_a_update"),
                leaf("rp", "group_b_update"),
            ),
            name="two-layer",
        ),
        "three-layer": Configuration(
            node(
                "ssi",
                leaf("none", "group_b_read"),
                node("2pl", leaf("rp", "group_a_update")),
            ),
            name="three-layer",
        ),
    }
