"""Tests for the multi-version store, tables, WAL, durability and GC."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.transaction import Transaction
from repro.errors import StorageError
from repro.storage.backends import FileBackend, InMemoryBackend
from repro.storage.durability import DurabilityConfig, DurabilityManager
from repro.storage.gc import GarbageCollector
from repro.storage.mvstore import MultiVersionStore
from repro.storage.tables import Catalog, Table, TableSchema, composite_key
from repro.storage.wal import LogRecord, WriteAheadLog, decode_key, encode_key


def make_txn(txn_id, txn_type="t"):
    return Transaction(txn_id=txn_id, txn_type=txn_type)


class TestMultiVersionStore:
    def test_load_creates_committed_version(self, store):
        version = store.load(("t", 1), {"v": 1})
        assert version.committed
        assert store.latest_committed(("t", 1)).value == {"v": 1}

    def test_install_is_uncommitted(self, store):
        txn = make_txn(1)
        version = store.install(("t", 1), {"v": 2}, txn)
        assert not version.committed
        assert store.latest_committed(("t", 1)) is None
        assert store.uncommitted_versions(("t", 1)) == [version]

    def test_reinstall_overwrites_own_version(self, store):
        txn = make_txn(1)
        store.install(("t", 1), {"v": 1}, txn)
        store.install(("t", 1), {"v": 2}, txn)
        assert len(store.uncommitted_versions(("t", 1))) == 1
        assert store.uncommitted_versions(("t", 1))[0].value == {"v": 2}

    def test_commit_moves_versions(self, store):
        txn = make_txn(1)
        store.install(("t", 1), {"v": 1}, txn)
        committed = store.commit_transaction(txn, timestamp=5)
        assert len(committed) == 1
        assert store.latest_committed(("t", 1)).timestamp == 5
        assert store.uncommitted_versions(("t", 1)) == []

    def test_abort_discards_versions(self, store):
        txn = make_txn(1)
        store.install(("t", 1), {"v": 1}, txn)
        assert store.abort_transaction(txn) == 1
        assert store.latest_committed(("t", 1)) is None
        assert store.uncommitted_versions(("t", 1)) == []

    def test_commit_seq_is_monotonic(self, store):
        seqs = []
        for txn_id in range(1, 5):
            txn = make_txn(txn_id)
            store.install(("t", txn_id), {"v": txn_id}, txn)
            seqs.extend(v.commit_seq for v in store.commit_transaction(txn))
        assert seqs == sorted(seqs)
        assert store.last_commit_seq() == seqs[-1]

    def test_latest_committed_before_timestamp(self, store):
        for ts in (1, 5, 9):
            txn = make_txn(ts)
            store.install(("t", 1), {"v": ts}, txn)
            store.commit_transaction(txn, timestamp=ts)
        assert store.latest_committed_before(("t", 1), 6).value == {"v": 5}
        assert store.latest_committed_before(("t", 1), 1) is None
        assert store.latest_committed_before(("t", 1), 100).value == {"v": 9}

    def test_latest_committed_before_strictness(self, store):
        txn = make_txn(1)
        store.install(("t", 1), {"v": 1}, txn)
        store.commit_transaction(txn, timestamp=5)
        assert store.latest_committed_before(("t", 1), 5, strict=True) is None
        assert store.latest_committed_before(("t", 1), 5, strict=False) is not None

    def test_own_uncommitted(self, store):
        txn = make_txn(1)
        other = make_txn(2)
        store.install(("t", 1), {"v": 1}, txn)
        store.install(("t", 1), {"v": 2}, other)
        assert store.own_uncommitted(("t", 1), 1).value == {"v": 1}
        assert store.own_uncommitted(("t", 1), 3) is None

    def test_version_by_writer_finds_committed(self, store):
        txn = make_txn(1)
        store.install(("t", 1), {"v": 1}, txn)
        store.commit_transaction(txn)
        assert store.version_by_writer(("t", 1), 1).committed

    def test_prune_keeps_latest(self, store):
        for txn_id in range(1, 6):
            txn = make_txn(txn_id)
            store.install(("t", 1), {"v": txn_id}, txn)
            store.commit_transaction(txn)
        removed = store.prune(("t", 1), keep_last=2)
        assert removed == 3
        assert len(store.committed_versions(("t", 1))) == 2
        assert store.latest_committed(("t", 1)).value == {"v": 5}

    def test_prune_requires_positive_keep(self, store):
        with pytest.raises(StorageError):
            store.prune(("t", 1), keep_last=0)

    def test_prune_epochs_respects_epoch(self, store):
        for txn_id, epoch in ((1, 1), (2, 1), (3, 2)):
            txn = make_txn(txn_id)
            txn.gc_epoch = epoch
            store.install(("t", 1), {"v": txn_id}, txn)
            store.commit_transaction(txn)
        removed = store.prune_epochs(max_epoch=1)
        assert removed == 2
        assert store.latest_committed(("t", 1)).value == {"v": 3}

    def test_latest_state_snapshot(self, store):
        store.load(("t", 1), {"v": 1})
        store.load(("t", 2), {"v": 2})
        txn = make_txn(9)
        store.install(("t", 1), {"v": 10}, txn)
        store.commit_transaction(txn)
        assert store.latest_state() == {("t", 1): {"v": 10}, ("t", 2): {"v": 2}}

    @given(st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_version_chain_order_matches_commit_order(self, writer_ids):
        store = MultiVersionStore()
        expected = []
        for index, writer in enumerate(writer_ids, start=1):
            txn = make_txn(index, txn_type=f"w{writer}")
            store.install(("k",), {"v": index}, txn)
            store.commit_transaction(txn)
            expected.append(index)
        chain = store.committed_versions(("k",))
        assert [v.writer for v in chain] == expected
        assert [v.commit_seq for v in chain] == sorted(v.commit_seq for v in chain)


class TestTables:
    def test_composite_key_single_part(self):
        assert composite_key("t", 5) == ("t", 5)

    def test_composite_key_multi_part(self):
        assert composite_key("t", 1, 2) == ("t", (1, 2))

    def test_schema_key_validation(self):
        schema = TableSchema("t", ("a", "b"))
        with pytest.raises(ValueError):
            schema.key_for(1)

    def test_table_load_into_store(self, store):
        table = Table(TableSchema("t", ("id",)))
        table.insert((1,), {"v": 1})
        table.insert((2,), {"v": 2})
        assert table.load_into(store) == 2
        assert store.latest_committed(("t", 1)).value == {"v": 1}

    def test_catalog_lookup_and_load(self, store):
        table = Table(TableSchema("t", ("id",)))
        table.insert((1,), {"v": 1})
        catalog = Catalog([table])
        assert "t" in catalog
        assert catalog["t"] is table
        assert catalog.load_into(store) == 1
        assert catalog.table_names() == ["t"]


class TestBackends:
    def test_in_memory_roundtrip(self):
        backend = InMemoryBackend()
        backend.put("a", {"x": 1})
        assert backend.get("a") == {"x": 1}
        assert backend.get("missing", "default") == "default"
        assert backend.scan("a") == [("a", {"x": 1})]

    def test_file_backend_persists(self, tmp_path):
        path = str(tmp_path / "wal" / "log.jsonl")
        backend = FileBackend(path)
        backend.put("k1", {"v": 1})
        backend.put("k2", {"v": 2})
        backend.close()
        reopened = FileBackend(path)
        assert reopened.get("k1") == {"v": 1}
        assert len(reopened) == 2
        reopened.close()

    def test_file_backend_latest_value_wins(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        backend = FileBackend(path)
        backend.put("k", 1)
        backend.put("k", 2)
        backend.close()
        assert FileBackend(path).get("k") == 2


class TestWriteAheadLog:
    def test_append_assigns_lsn(self):
        wal = WriteAheadLog(0, InMemoryBackend())
        first = wal.append(LogRecord(kind="operation", txn_id=1, server_id=0))
        second = wal.append(LogRecord(kind="operation", txn_id=2, server_id=0))
        assert (first.lsn, second.lsn) == (1, 2)
        assert wal.pending == 2

    def test_flush_persists_records(self):
        wal = WriteAheadLog(0, InMemoryBackend())
        wal.append(LogRecord(kind="precommit", txn_id=1, server_id=0, gcp_epoch=1))
        assert wal.flush() == 1
        assert wal.pending == 0
        records = wal.persisted_records()
        assert len(records) == 1 and records[0].txn_id == 1

    def test_flush_up_to_epoch(self):
        wal = WriteAheadLog(0, InMemoryBackend())
        wal.append(LogRecord(kind="precommit", txn_id=1, server_id=0, gcp_epoch=1))
        wal.append(LogRecord(kind="precommit", txn_id=2, server_id=0, gcp_epoch=2))
        assert wal.flush(up_to_epoch=1) == 1
        assert wal.pending == 1

    def test_interleaved_sync_async_flushes_preserve_lsn_order(self):
        """Sync (immediate) and async (epoch-batched) flushes interleave;
        persisted_records() must still return every flushed record exactly
        once, in LSN order, with no record skipped by the epoch filter."""
        wal = WriteAheadLog(0, InMemoryBackend())
        wal.append(LogRecord(kind="precommit", txn_id=1, server_id=0, gcp_epoch=1))
        wal.append(LogRecord(kind="precommit", txn_id=2, server_id=0, gcp_epoch=2))
        wal.flush(up_to_epoch=1)  # async epoch flush, leaves txn 2 pending
        wal.append(LogRecord(kind="precommit", txn_id=3, server_id=0, gcp_epoch=0))
        wal.flush()  # sync flush: everything buffered, regardless of epoch
        wal.append(LogRecord(kind="precommit", txn_id=4, server_id=0, gcp_epoch=3))
        wal.flush(up_to_epoch=3)
        records = wal.persisted_records()
        assert [r.txn_id for r in records] == [1, 2, 3, 4]
        assert [r.lsn for r in records] == [1, 2, 3, 4]
        assert wal.pending == 0

    def test_crash_interrupted_flush_keeps_persisted_prefix(self):
        """A crash mid-run drops the volatile buffer but never the records
        already handed to the backend."""
        wal = WriteAheadLog(0, InMemoryBackend())
        wal.append(LogRecord(kind="precommit", txn_id=1, server_id=0, gcp_epoch=1))
        wal.flush()
        wal.append(LogRecord(kind="precommit", txn_id=2, server_id=0, gcp_epoch=2))
        wal.append(LogRecord(kind="precommit", txn_id=3, server_id=0, gcp_epoch=2))
        lost = wal.crash()
        assert lost == 2
        assert wal.pending == 0
        assert [r.txn_id for r in wal.persisted_records()] == [1]

    def test_reset_restarts_lsns(self):
        wal = WriteAheadLog(0, InMemoryBackend())
        wal.append(LogRecord(kind="operation", txn_id=1, server_id=0))
        wal.flush()
        wal.reset()
        record = wal.append(LogRecord(kind="operation", txn_id=2, server_id=0))
        assert record.lsn == 1

    def test_key_codec_roundtrips_through_file_backend(self, tmp_path):
        """Tuple keys survive a JSON backend: encode to lists on the way
        in, decode back to tuples on the way out."""
        key = ("accounts", ("savings", 7))
        assert decode_key(encode_key(key)) == key
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(0, FileBackend(path))
        wal.append(
            LogRecord(
                kind="precommit",
                txn_id=1,
                server_id=0,
                payload={"writes": [(encode_key(key), {"v": 1})], "participants": 1, "ticket": 1},
                gcp_epoch=0,
            )
        )
        wal.flush()
        reloaded = WriteAheadLog(0, FileBackend(path))
        records = reloaded.persisted_records()
        assert len(records) == 1
        (encoded, value), = records[0].payload["writes"]
        assert decode_key(encoded) == key
        assert value == {"v": 1}


class TestDurability:
    def _manager(self, asynchronous=True):
        return DurabilityManager(
            DurabilityConfig(enabled=True, asynchronous=asynchronous, num_servers=2)
        )

    def test_disabled_manager_is_noop(self):
        manager = DurabilityManager(DurabilityConfig(enabled=False))
        txn = make_txn(1)
        assert manager.precommit(txn, [(("t", 1), {"v": 1})]) == 0
        assert manager.flush_delay() == 0.0

    def test_precommit_writes_one_record_per_server(self):
        manager = self._manager(asynchronous=False)
        txn = make_txn(1)
        writes = [(("a", 1), {"v": 1}), (("b", 2), {"v": 2})]
        manager.precommit(txn, writes)
        total = sum(len(log.persisted_records()) for log in manager.logs)
        assert total >= 1
        assert manager.records_written >= 1

    def test_synchronous_precommit_is_durable_immediately(self):
        manager = self._manager(asynchronous=False)
        txn = make_txn(7)
        manager.precommit(txn, [(("a", 1), {"v": 7})])
        result = manager.recover()
        assert 7 in result.recovered_transactions
        assert result.state.get(("a", 1)) == {"v": 7}
        assert result.state_writers.get(("a", 1)) == 7

    def test_async_needs_gcp_flush_to_be_durable(self):
        manager = self._manager(asynchronous=True)
        txn = make_txn(8)
        manager.precommit(txn, [(("a", 1), {"v": 8})])
        assert 8 not in manager.recover().recovered_transactions
        manager.advance_gcp_epoch()
        assert 8 in manager.recover().recovered_transactions

    def test_recovery_latest_write_wins(self):
        manager = self._manager(asynchronous=False)
        for txn_id, value in ((1, 10), (2, 20)):
            manager.precommit(make_txn(txn_id), [(("a", 1), {"v": value})])
        result = manager.recover()
        assert result.state[("a", 1)] == {"v": 20}
        assert result.state_writers[("a", 1)] == 2

    def test_commit_notification_advances_lagging_epochs(self):
        manager = self._manager()
        manager._current_gcp_epoch = [1, 3]
        manager.commit_notification(make_txn(1), global_epoch=3)
        assert manager._current_gcp_epoch == [3, 3]

    def test_wait_durable(self, env):
        manager = self._manager(asynchronous=True)
        txn = make_txn(5)
        epoch = manager.precommit(txn, [(("a", 1), {"v": 5})])
        outcomes = []

        def waiter():
            value = yield from manager.wait_durable(env, epoch)
            outcomes.append(value)

        def flusher():
            yield env.timeout(1)
            manager.advance_gcp_epoch()

        env.process(waiter())
        env.process(flusher())
        env.run()
        assert outcomes and outcomes[0] >= epoch

    def test_recovery_result_require_transaction(self):
        from repro.errors import RecoveryError
        from repro.storage.durability import RecoveryResult

        result = RecoveryResult(recovered_transactions={1}, discarded_transactions=set(), state={})
        assert result.require_transaction(1)
        with pytest.raises(RecoveryError):
            result.require_transaction(2)


class TestGarbageCollector:
    def test_register_assigns_epoch(self, store):
        gc = GarbageCollector(store)
        txn = make_txn(1)
        assert gc.register_transaction(txn) == gc.current_epoch

    def test_collect_prunes_finished_epochs(self, store):
        gc = GarbageCollector(store)
        txn = make_txn(1)
        gc.register_transaction(txn)
        store.install(("k",), {"v": 1}, txn)
        store.commit_transaction(txn)
        # A newer version in a later epoch supersedes the old one.
        gc.advance_epoch()
        txn2 = make_txn(2)
        gc.register_transaction(txn2)
        store.install(("k",), {"v": 2}, txn2)
        store.commit_transaction(txn2)
        gc.finish_transaction(txn)
        gc.finish_transaction(txn2)
        gc.advance_epoch()
        removed = gc.collect(cc_nodes=())
        assert removed >= 1
        assert store.latest_committed(("k",)).value == {"v": 2}

    def test_collect_respects_cc_veto(self, store):
        class VetoCC:
            def can_garbage_collect(self, epoch):
                return False

        gc = GarbageCollector(store)
        txn = make_txn(1)
        gc.register_transaction(txn)
        store.install(("k",), {"v": 1}, txn)
        store.commit_transaction(txn)
        gc.finish_transaction(txn)
        gc.advance_epoch()
        assert gc.collect(cc_nodes=(VetoCC(),)) == 0

    def test_paused_collector_does_nothing(self, store):
        gc = GarbageCollector(store)
        gc.pause()
        assert gc.collect() == 0
        gc.resume()

    def _commit_in_epoch(self, store, gc, txn_id, value):
        txn = make_txn(txn_id)
        gc.register_transaction(txn)
        store.install(("k",), value, txn)
        store.commit_transaction(txn)
        return txn

    def test_collect_prunes_only_contiguous_confirmed_prefix(self, store):
        """Regression: an unconfirmed middle epoch must block later epochs.

        ``prune_epochs(max_epoch)`` drops everything up to ``max_epoch``, so
        collecting ``max(collectable)`` while epoch 2 is vetoed used to drop
        epoch-2 versions that a CC explicitly still needed.
        """

        class VetoEpoch2:
            def can_garbage_collect(self, epoch):
                return epoch != 2

        gc = GarbageCollector(store)
        txns = []
        for txn_id in (1, 2, 3):
            txns.append(self._commit_in_epoch(store, gc, txn_id, {"v": txn_id}))
            gc.advance_epoch()
        for txn in txns:
            gc.finish_transaction(txn)
        removed = gc.collect(cc_nodes=(VetoEpoch2(),))
        # Only epoch 1 is collectable: epoch 2 is vetoed and epoch 3 must
        # wait behind it.
        assert removed == 1
        remaining = [v.value for v in store.committed_versions(("k",))]
        assert remaining == [{"v": 2}, {"v": 3}]

    def test_collect_blocked_by_unfinished_middle_epoch(self, store):
        gc = GarbageCollector(store)
        first = self._commit_in_epoch(store, gc, 1, {"v": 1})
        gc.advance_epoch()
        straggler = self._commit_in_epoch(store, gc, 2, {"v": 2})
        gc.advance_epoch()
        third = self._commit_in_epoch(store, gc, 3, {"v": 3})
        gc.advance_epoch()
        gc.finish_transaction(first)
        gc.finish_transaction(third)  # epoch 2's transaction still running
        assert gc.collect(cc_nodes=()) == 1
        remaining = [v.value for v in store.committed_versions(("k",))]
        assert remaining == [{"v": 2}, {"v": 3}]
        # Once the straggler finishes, the prefix extends through epoch 3.
        gc.finish_transaction(straggler)
        assert gc.collect(cc_nodes=()) == 1
        assert [v.value for v in store.committed_versions(("k",))] == [{"v": 3}]

    def test_finish_transaction_is_idempotent(self, store):
        """Regression: a double finish must not retire a live epoch."""
        gc = GarbageCollector(store)
        done = make_txn(1)
        live = make_txn(2)
        gc.register_transaction(done)
        gc.register_transaction(live)
        gc.finish_transaction(done)
        gc.finish_transaction(done)  # abort-during-commit style double finish
        gc.advance_epoch()
        # The epoch still has a live transaction, so it must not be finished.
        assert 1 not in gc._finished_epochs
        gc.finish_transaction(live)
        assert 1 in gc._finished_epochs
