"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.environment import Environment
from repro.sim.events import Event, any_of
from repro.sim.network import ClusterModel, CostModel, NetworkModel
from repro.sim.resources import Condition, Resource, WaitQueue


class TestEvents:
    def test_event_starts_pending(self, env):
        event = env.event("e")
        assert not event.triggered

    def test_succeed_sets_value(self, env):
        event = env.event("e").succeed(42)
        assert event.triggered and event.ok
        assert event.value == 42

    def test_double_trigger_raises(self, env):
        event = env.event("e").succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self, env):
        event = env.event("e")
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_fail_marks_error(self, env):
        event = env.event("e").fail(ValueError("boom"))
        assert event.triggered and not event.ok

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            _ = env.event("e").value

    def test_negative_timeout_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1)


class TestProcesses:
    def test_process_advances_time(self, env):
        log = []

        def proc():
            yield env.timeout(1.5)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [1.5]

    def test_process_return_value(self, env):
        def proc():
            yield env.timeout(1)
            return "done"

        process = env.process(proc())
        assert env.run(until=process) == "done"

    def test_yield_from_composition(self, env):
        def inner():
            yield env.timeout(1)
            return 10

        def outer():
            value = yield from inner()
            yield env.timeout(1)
            return value + 1

        process = env.process(outer())
        assert env.run(until=process) == 11
        assert env.now == pytest.approx(2.0)

    def test_waiting_on_another_process(self, env):
        def child():
            yield env.timeout(2)
            return "child-result"

        def parent():
            child_process = env.process(child())
            result = yield child_process
            return result

        process = env.process(parent())
        assert env.run(until=process) == "child-result"

    def test_exception_propagates_to_waiter(self, env):
        def child():
            yield env.timeout(1)
            raise ValueError("child failed")

        def parent():
            try:
                yield env.process(child())
            except ValueError:
                return "caught"
            return "not caught"

        process = env.process(parent())
        assert env.run(until=process) == "caught"

    def test_unwaited_exception_surfaces(self, env):
        def proc():
            yield env.timeout(1)
            raise RuntimeError("unobserved")

        env.process(proc())
        with pytest.raises(RuntimeError):
            env.run()

    def test_yielding_non_event_fails_process(self, env):
        def proc():
            yield "not an event"

        def parent():
            try:
                yield env.process(proc())
            except SimulationError:
                return "rejected"

        process = env.process(parent())
        assert env.run(until=process) == "rejected"

    def test_run_until_time_horizon(self, env):
        ticks = []

        def proc():
            while True:
                yield env.timeout(1)
                ticks.append(env.now)

        env.process(proc())
        env.run(until=3.5)
        assert ticks == [1, 2, 3]
        assert env.now == 3.5

    def test_events_fire_in_time_order(self, env):
        order = []

        def make(delay, label):
            def proc():
                yield env.timeout(delay)
                order.append(label)

            return proc

        env.process(make(3, "c")())
        env.process(make(1, "a")())
        env.process(make(2, "b")())
        env.run()
        assert order == ["a", "b", "c"]

    def test_interrupt_wakes_process(self, env):
        from repro.sim.events import Interrupt

        outcome = []

        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                outcome.append(interrupt.cause)

        process = env.process(sleeper())

        def interrupter():
            yield env.timeout(1)
            process.interrupt("wake up")

        env.process(interrupter())
        env.run()
        assert outcome == ["wake up"]

    def test_any_of_returns_first(self, env):
        def proc():
            first = env.timeout(5, value="slow")
            second = env.timeout(1, value="fast")
            index, value = yield any_of(env, [first, second])
            return index, value

        process = env.process(proc())
        assert env.run(until=process) == (1, "fast")


class TestResources:
    def test_wait_queue_notify_one(self, env):
        queue = WaitQueue(env, "q")
        results = []

        def waiter(label):
            value = yield from queue.wait()
            results.append((label, value))

        env.process(waiter("a"))
        env.process(waiter("b"))

        def notifier():
            yield env.timeout(1)
            queue.notify_one("first")
            yield env.timeout(1)
            queue.notify_all("rest")

        env.process(notifier())
        env.run()
        assert ("a", "first") in results
        assert len(results) == 2

    def test_wait_queue_fail_all(self, env):
        queue = WaitQueue(env, "q")
        caught = []

        def waiter():
            try:
                yield from queue.wait()
            except RuntimeError:
                caught.append(True)

        env.process(waiter())

        def failer():
            yield env.timeout(1)
            queue.fail_all(RuntimeError("cancelled"))

        env.process(failer())
        env.run()
        assert caught == [True]

    def test_condition_broadcast(self, env):
        condition = Condition(env, "c")
        woken = []

        def waiter(label):
            yield from condition.wait()
            woken.append(label)

        for label in "abc":
            env.process(waiter(label))

        def notifier():
            yield env.timeout(1)
            condition.notify_all()

        env.process(notifier())
        env.run()
        assert sorted(woken) == ["a", "b", "c"]

    def test_resource_limits_concurrency(self, env):
        resource = Resource(env, capacity=2, name="cpu")
        finish_times = []

        def worker():
            yield from resource.use(1.0)
            finish_times.append(env.now)

        for _ in range(4):
            env.process(worker())
        env.run()
        # Two run in [0,1], the next two in [1,2].
        assert sorted(finish_times) == [1.0, 1.0, 2.0, 2.0]

    def test_resource_release_requires_use(self, env):
        resource = Resource(env, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_resource_capacity_validation(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)


class TestClusterModel:
    def test_network_round_trip_cost(self):
        network = NetworkModel(rtt=0.001)
        assert network.round_trip() == pytest.approx(0.001)

    def test_cost_model_scales_with_layers(self):
        costs = CostModel(operation_cpu=10e-6, cc_layer_cpu=2e-6)
        assert costs.operation_cost(3) == pytest.approx(16e-6)
        assert costs.operation_cost(1) < costs.operation_cost(4)

    def test_cluster_compute_consumes_time(self, env):
        cluster = ClusterModel(env, cpu_slots=1)

        def proc():
            yield from cluster.compute(0.5)
            return env.now

        process = env.process(proc())
        assert env.run(until=process) == pytest.approx(0.5)

    def test_cluster_network_delay(self, env):
        cluster = ClusterModel(env)

        def proc():
            yield from cluster.network_delay(round_trips=2)
            return env.now

        process = env.process(proc())
        assert env.run(until=process) == pytest.approx(2 * cluster.network.rtt)
