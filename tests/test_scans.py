"""Scan/predicate access: storage index, workloads, phantoms, retention.

Four layers of coverage:

* the ordered key index and :class:`KeyRange` semantics in the storage
  module (bounds, prefixes, in-flight inserts, aborted-insert cleanup);
* the scan-bearing workloads end-to-end (queue/outbox lifecycle, TPC-C
  payment-by-name, YCSB zipfian distribution);
* adversarial phantom (scan-skew) scenarios: the oracle must flag the G2
  anomaly when an unprotected tree lets it commit, and every serializable
  CC mechanism must prevent or abort it;
* the recorder-retention bound that keeps long streaming-checked runs from
  accumulating per-transaction records.
"""

import pytest

from repro.analysis.profiles import TransactionProfile, TransactionType
from repro.core.config import monolithic
from repro.core.engine import EngineOptions
from repro.core.transaction import Transaction
from repro.database import Database
from repro.errors import TransactionAborted
from repro.harness import configs
from repro.isolation.checker import check_history, check_recorder
from repro.isolation.history import History, HistoryRecorder, HistoryTransaction
from repro.sim.environment import Environment
from repro.storage.mvstore import MultiVersionStore
from repro.storage.ranges import TOP, KeyRange, bounded_range, prefix_range
from repro.storage.tables import Catalog, Table, TableSchema
from repro.storage.versions import Version
from repro.workloads.base import Workload
from repro.workloads.queue import QueueWorkload
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.tpcc.schema import TPCCScale, customer_last_name
from repro.workloads.ycsb import YCSBWorkload
from repro.workloads.ycsb.workload import ZipfianGenerator
from tests.conftest import build_engine, run_transactions


class TestKeyRange:
    def test_bounded_containment(self):
        key_range = bounded_range("t", 3, 7)
        assert key_range.contains_pk(3) and key_range.contains_pk(7)
        assert not key_range.contains_pk(2) and not key_range.contains_pk(8)
        assert key_range.contains_key(("t", 5))
        assert not key_range.contains_key(("other", 5))

    def test_unbounded_sides(self):
        assert bounded_range("t", None, 4).contains_pk(-100)
        assert bounded_range("t", 4, None).contains_pk(10**9)

    def test_prefix_range_matches_extensions_only(self):
        key_range = prefix_range("t", 1, 2, "BAR")
        assert key_range.contains_pk((1, 2, "BAR", 1))
        assert key_range.contains_pk((1, 2, "BAR", 999))
        assert not key_range.contains_pk((1, 2, "BAZ", 1))
        assert not key_range.contains_pk((1, 3, "BAR", 1))

    def test_top_sentinel_ordering(self):
        assert 5 < TOP and "zzz" < TOP and (9, 9) < TOP
        assert not TOP < 5
        assert TOP == TOP and hash(TOP) == hash(TOP)

    def test_truncated_tightens_hi(self):
        key_range = bounded_range("t", 1, 100).truncated(7)
        assert key_range.contains_pk(7) and not key_range.contains_pk(8)


class TestStoreRangeIndex:
    def test_range_keys_ordered_and_bounded(self, store):
        for pk in (5, 1, 9, 3):
            store.load(("t", pk), {"v": pk})
        assert store.range_keys("t") == [("t", 1), ("t", 3), ("t", 5), ("t", 9)]
        assert store.range_keys("t", 3, 5) == [("t", 3), ("t", 5)]
        assert store.range_keys("t", hi=3) == [("t", 1), ("t", 3)]
        assert store.range_keys("missing") == []

    def test_composite_prefix_slice(self, store):
        for pk in ((1, "A", 1), (1, "A", 2), (1, "B", 1), (2, "A", 1)):
            store.load(("idx", pk), {})
        key_range = prefix_range("idx", 1, "A")
        keys = store.range_keys("idx", key_range.lo, key_range.hi)
        assert keys == [("idx", (1, "A", 1)), ("idx", (1, "A", 2))]

    def test_uncommitted_insert_is_enumerated(self, store):
        store.load(("t", 1), {"v": 1})
        writer = Transaction(txn_id=9, txn_type="w")
        store.install(("t", 2), {"v": 2}, writer)
        assert store.range_keys("t") == [("t", 1), ("t", 2)]

    def test_aborted_insert_leaves_no_index_entry(self, store):
        writer = Transaction(txn_id=9, txn_type="w")
        store.install(("t", 2), {"v": 2}, writer)
        store.abort_transaction(writer)
        assert store.range_keys("t") == []

    def test_aborted_overwrite_keeps_committed_key(self, store):
        store.load(("t", 1), {"v": 1})
        writer = Transaction(txn_id=9, txn_type="w")
        store.install(("t", 1), {"v": 99}, writer)
        store.abort_transaction(writer)
        assert store.range_keys("t") == [("t", 1)]


class TestQueueWorkload:
    def _db(self, config=None):
        workload = QueueWorkload(initial_messages=3, window=5)
        return Database(workload, config or configs.queue_monolithic_2pl())

    def test_enqueue_assigns_tail_ids(self):
        db = self._db()
        assert db.execute("enqueue", payload=7)["m_id"] == 4
        assert db.execute("enqueue", payload=8)["m_id"] == 5
        assert db.read_row("queue_ptr", "tail")["value"] == 6

    def test_dequeue_consumes_oldest_and_advances_head(self):
        db = self._db()
        first = db.execute("dequeue")
        assert first["m_id"] == 1
        assert db.read_row("queue_ptr", "head")["value"] == 2
        assert db.read_row("messages", 1)["state"] == "consumed"
        assert db.execute("dequeue")["m_id"] == 2

    def test_dequeue_empty_queue(self):
        db = self._db()
        for _ in range(3):
            db.execute("dequeue")
        assert db.execute("dequeue")["empty"]

    def test_peek_reports_backlog(self):
        db = self._db()
        assert db.execute("peek")["backlog"] == 3
        db.execute("dequeue")
        peeked = db.execute("peek")
        assert peeked["backlog"] == 2 and peeked["next"] == 2

    def test_sweep_deletes_consumed_prefix(self):
        db = self._db()
        db.execute("dequeue")
        db.execute("dequeue")
        swept = db.execute("sweep")["swept"]
        assert swept == 2
        assert db.read_row("messages", 1) is None

    def test_lifecycle_under_hierarchical_tree(self):
        db = self._db(configs.queue_3layer())
        assert db.execute("enqueue", payload=1)["m_id"] == 4
        assert db.execute("dequeue")["m_id"] == 1
        assert db.execute("peek")["backlog"] == 3


class TestPaymentByName:
    def _db(self):
        workload = TPCCWorkload(
            scale=TPCCScale(warehouses=1, districts_per_warehouse=1,
                            customers_per_district=5, items=10,
                            initial_orders_per_district=2),
            include_payment_by_name=True,
        )
        return Database(workload, configs.tpcc_scan_monolithic_2pl())

    def test_scan_locates_midpoint_customer(self):
        db = self._db()
        # With 5 customers, names are unique; customer 3's name matches only
        # customer 3.
        c_last = customer_last_name(3)
        result = db.execute(
            "payment_by_name", w_id=1, d_id=1, c_w_id=1, c_d_id=1,
            c_last=c_last, h_amount=40.0,
        )
        assert result["matched"] == 1 and result["c_id"] == 3
        assert db.read_row("customer", 1, 1, 3)["c_balance"] == pytest.approx(-40.0)
        assert db.read_row("warehouse", 1)["w_ytd"] == pytest.approx(40.0)

    def test_unknown_name_is_a_noop(self):
        db = self._db()
        result = db.execute(
            "payment_by_name", w_id=1, d_id=1, c_w_id=1, c_d_id=1,
            c_last="NOSUCHNAME", h_amount=40.0,
        )
        assert result["matched"] == 0 and result["customer"] is None
        assert db.read_row("warehouse", 1)["w_ytd"] == pytest.approx(0.0)

    def test_midpoint_of_larger_candidate_set(self):
        # 205 customers -> ids {3, 103, 203} share customer 3's name; the
        # TPC-C midpoint (ceil(3/2) = 2nd) is customer 103.
        workload = TPCCWorkload(
            scale=TPCCScale(warehouses=1, districts_per_warehouse=1,
                            customers_per_district=205, items=10,
                            initial_orders_per_district=2),
            include_payment_by_name=True,
        )
        db = Database(workload, configs.tpcc_scan_monolithic_2pl())
        result = db.execute(
            "payment_by_name", w_id=1, d_id=1, c_w_id=1, c_d_id=1,
            c_last=customer_last_name(3), h_amount=10.0,
        )
        assert result["matched"] == 3 and result["c_id"] == 103

    def test_mix_includes_both_payment_variants(self):
        workload = TPCCWorkload(warehouses=1, include_payment_by_name=True)
        mix = workload.mix()
        assert mix["payment"] + mix["payment_by_name"] == pytest.approx(0.43)
        args = workload.generate_args(workload.make_rng(4), "payment_by_name")
        assert set(args) == {"w_id", "d_id", "c_w_id", "c_d_id", "c_last", "h_amount"}


class TestZipfianYCSB:
    def test_distribution_is_skewed_and_in_range(self):
        workload = YCSBWorkload(records=500, distribution="zipfian", zipf_theta=0.9)
        rng = workload.make_rng(11)
        draws = [workload._key(rng) for _ in range(2000)]
        assert all(0 <= key < 500 for key in draws)
        # Heavy head: the top-10 ranks should dominate a uniform share.
        head = sum(1 for key in draws if key < 10)
        assert head > len(draws) * 0.25

    def test_draws_are_deterministic_per_seed(self):
        generator = ZipfianGenerator(100, 0.9)
        workload = YCSBWorkload(records=100)
        first = [generator.draw(workload.make_rng(3)) for _ in range(1)]
        second = [generator.draw(workload.make_rng(3)) for _ in range(1)]
        assert first == second

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(100, 1.5)
        with pytest.raises(ValueError):
            YCSBWorkload(distribution="pareto")


# ---------------------------------------------------------------------------
# Adversarial phantom (scan-skew) scenarios
# ---------------------------------------------------------------------------


class PhantomScenarioWorkload(Workload):
    """Two transactions engineered into a G2 scan-skew race.

    The *scanner* scans ``items[1..10]``, thinks, then publishes the count;
    the *inserter* reads the published count, then inserts a new ``items``
    row inside the scanned range.  With the think-time stagger below, an
    unprotected interleaving commits both: scanner missed the insert
    (rw scanner->inserter via the predicate) and inserter missed the count
    (rw inserter->scanner) — a pure anti-dependency cycle.
    """

    name = "phantom-scenario"

    def build_catalog(self):
        items = Table(TableSchema("items", ("id",), ("value",)))
        for pk in (1, 2, 3):
            items.insert((pk,), {"value": pk})
        result = Table(TableSchema("result", ("name",), ("count",)))
        result.insert(("scan_count",), {"count": -1})
        return Catalog([items, result])

    def _scanner(self, ctx, delay):
        matches = yield from ctx.scan("items", lo=1, hi=10)
        yield from ctx.think(delay)
        yield from ctx.write("result", "scan_count", row={"count": len(matches)})
        return {"count": len(matches)}

    def _inserter(self, ctx, key, delay):
        yield from ctx.think(delay)
        row = yield from ctx.read("result", "scan_count")
        yield from ctx.write("items", key, row={"value": key})
        return {"observed": (row or {}).get("count")}

    def build_transaction_types(self):
        return {
            "scanner": TransactionType(
                name="scanner",
                procedure=self._scanner,
                profile=TransactionProfile(
                    name="scanner", accesses=(("items", "r"), ("result", "w"))
                ),
            ),
            "inserter": TransactionType(
                name="inserter",
                procedure=self._inserter,
                profile=TransactionProfile(
                    name="inserter", accesses=(("result", "r"), ("items", "w"))
                ),
            ),
        }

    def generate_args(self, rng, txn_type):
        if txn_type == "scanner":
            return {"delay": 0.05}
        return {"key": 5, "delay": 0.01}


def run_phantom_scenario(cc_name):
    """Run the staged race under a monolithic tree of ``cc_name``."""
    workload = PhantomScenarioWorkload()
    env = Environment()
    engine = build_engine(
        env,
        workload,
        monolithic(cc_name, ("scanner", "inserter")),
        options=EngineOptions(
            charge_costs=False, lock_timeout=0.3, commit_wait_timeout=0.5
        ),
    )
    recorder = HistoryRecorder(level="serializable")
    engine.history_recorder = recorder
    outcomes, _processes = run_transactions(
        env,
        engine,
        [("scanner", {"delay": 0.05}), ("inserter", {"key": 5, "delay": 0.01})],
    )
    report = check_recorder(recorder, level="serializable")
    aborted = [o for o in outcomes if isinstance(o, TransactionAborted)]
    return report, aborted, recorder


class TestPhantomScenarios:
    def test_oracle_catches_scan_skew_under_no_cc(self):
        """An unprotected tree commits the anomaly; the oracle must flag it."""
        report, aborted, recorder = run_phantom_scenario("none")
        assert not aborted, "no-op CC must not abort anything"
        assert not report.serializable, report.describe()
        # The post-hoc pass over the same recorded history agrees.
        posthoc = check_history(recorder.history(), level="serializable")
        assert not posthoc.serializable

    @pytest.mark.parametrize("cc_name", ["2pl", "ssi", "occ", "tso"])
    def test_serializable_mechanisms_prevent_scan_skew(self, cc_name):
        """Every serializable mechanism blocks or aborts the phantom race."""
        report, aborted, _recorder = run_phantom_scenario(cc_name)
        assert report.ok, f"{cc_name}: {report.describe()}"

    def test_hierarchical_trees_prevent_queue_phantoms(self):
        """Cross-group scan-vs-insert under the 3-layer queue tree stays clean."""
        workload = QueueWorkload(initial_messages=3, window=6)
        env = Environment()
        engine = build_engine(
            env,
            workload,
            configs.queue_3layer(),
            options=EngineOptions(
                charge_costs=True, lock_timeout=0.3, commit_wait_timeout=0.5
            ),
        )
        recorder = HistoryRecorder(level="serializable")
        engine.history_recorder = recorder
        rng = workload.make_rng(5)
        requests = [workload.next_transaction(rng) for _ in range(30)]
        run_transactions(env, engine, requests)
        report = check_recorder(recorder, level="serializable")
        assert report.ok, report.describe()

    # -- oracle unit level: hand-built scan histories ------------------------

    def _scan_skew_history(self):
        scanner = HistoryTransaction(
            1, "scanner",
            writes=[(("result", "a"), 3)],
            scans=[bounded_range("items", 1, 10)],
        )
        inserter = HistoryTransaction(
            2, "inserter",
            reads=[(("result", "a"), 0, 1)],
            writes=[(("items", 5), 2)],
        )
        history = History()
        history.add_transaction(scanner)
        history.add_transaction(inserter)
        history.version_orders = {
            ("result", "a"): [(1, 0), (3, 1)],
            ("items", 5): [(2, 2)],
        }
        return history

    def test_hand_built_scan_skew_flagged(self):
        history = self._scan_skew_history()
        report = check_history(history, level="serializable")
        assert not report.serializable
        # The cycle is pure rw: invisible at read-committed.
        assert check_history(history, level="read-committed").serializable

    def test_scan_outside_range_is_clean(self):
        history = self._scan_skew_history()
        # Narrow the predicate so the insert falls outside it: no phantom
        # edge, no cycle.
        history.transactions[1].scans = [bounded_range("items", 1, 4)]
        assert check_history(history, level="serializable").serializable

    def test_observed_key_produces_no_phantom_edge(self):
        history = self._scan_skew_history()
        # The scanner read the inserted key: item-level derivation owns the
        # edge, and with the read ordered first there is no cycle left...
        history.transactions[1].reads = [(("items", 5), 2, 2)]
        history.transactions[2].reads = []
        assert check_history(history, level="serializable").serializable


class TestRecorderRetention:
    def test_streaming_recorder_bounds_retained_records(self):
        """Streaming-checked runs must not retain one record per commit.

        Pins the ROADMAP cost center: with the streaming checker on, record
        retention defaults to a bounded ring, so a long checked run's
        recorder memory is O(window), not O(commits).
        """
        recorder = HistoryRecorder(level="serializable")
        window = HistoryRecorder.STREAMING_WINDOW_DEFAULT
        total = window + 64
        txn = Transaction(txn_id=0, txn_type="w")
        for index in range(1, total + 1):
            version = Version(key=("t", index), value=index, writer=index)
            version.mark_committed(index)
            txn.txn_id = index
            recorder.on_commit(txn, [version])
        assert recorder.recorded_commits == total
        assert len(recorder) <= window
        report = check_recorder(recorder, level="serializable")
        assert report.ok, report.describe()
        assert report.num_transactions == total

    def test_explicit_window_still_wins(self):
        recorder = HistoryRecorder(max_transactions=10, level="serializable")
        assert recorder.max_transactions == 10

    def test_record_only_mode_keeps_everything(self):
        recorder = HistoryRecorder()
        assert recorder.max_transactions is None
