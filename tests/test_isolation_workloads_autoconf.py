"""Tests for the isolation oracle, the workloads, the harness and autoconf."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.autoconf import ContentionProfiler, LatencyProfiler
from repro.autoconf.optimizer import ConfigurationOptimizer
from repro.autoconf.preprocess import apply_preprocessing
from repro.core.config import Configuration, leaf, monolithic, node
from repro.core.transaction import Transaction
from repro.database import Database
from repro.harness import configs
from repro.harness.report import format_series, format_table
from repro.harness.runner import run_benchmark
from repro.harness.sweep import client_sweep, peak_throughput, sweep_throughputs
from repro.isolation.checker import check_history
from repro.isolation.dsg import build_dsg
from repro.isolation.history import History, HistoryTransaction
from repro.workloads.micro import CrossGroupConflictWorkload
from repro.workloads.seats import SEATSWorkload
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.tpcc.schema import TPCCScale


def history_from(transactions, version_orders, aborted=()):
    history = History(aborted_ids=set(aborted))
    for txn in transactions:
        history.add_transaction(txn)
    history.version_orders = version_orders
    return history


class TestIsolationOracle:
    def test_serial_history_is_serializable(self):
        t1 = HistoryTransaction(1, "w", reads=[], writes=[("x", 1)])
        t2 = HistoryTransaction(2, "r", reads=[("x", 1, 1)], writes=[])
        history = history_from([t1, t2], {"x": [(1, 1)]})
        report = check_history(history)
        assert report.ok and report.serializable

    def test_ww_cycle_detected(self):
        t1 = HistoryTransaction(1, "w", writes=[("x", 1), ("y", 4)])
        t2 = HistoryTransaction(2, "w", writes=[("x", 2), ("y", 3)])
        history = history_from([t1, t2], {"x": [(1, 1), (2, 2)], "y": [(3, 2), (4, 1)]})
        report = check_history(history)
        assert not report.serializable

    def test_write_skew_detected_as_rw_cycle(self):
        # T1 reads y (initial) and writes x; T2 reads x (initial) and writes y.
        t1 = HistoryTransaction(1, "t", reads=[("y", 0, 1)], writes=[("x", 3)])
        t2 = HistoryTransaction(2, "t", reads=[("x", 0, 2)], writes=[("y", 4)])
        history = history_from(
            [t1, t2],
            {"x": [(2, 0), (3, 1)], "y": [(1, 0), (4, 2)]},
        )
        report = check_history(history)
        assert not report.serializable

    def test_aborted_read_detected(self):
        t1 = HistoryTransaction(1, "r", reads=[("x", 99, None)])
        history = history_from([t1], {"x": []}, aborted={99})
        report = check_history(history)
        assert report.aborted_reads
        assert not report.ok

    def test_read_committed_level_ignores_rw_cycles(self):
        t1 = HistoryTransaction(1, "t", reads=[("y", 0, 1)], writes=[("x", 3)])
        t2 = HistoryTransaction(2, "t", reads=[("x", 0, 2)], writes=[("y", 4)])
        history = history_from(
            [t1, t2], {"x": [(2, 0), (3, 1)], "y": [(1, 0), (4, 2)]}
        )
        assert check_history(history, level="read-committed").serializable
        assert not check_history(history, level="serializable").serializable

    def test_dsg_edge_kinds(self):
        t1 = HistoryTransaction(1, "w", writes=[("x", 1)])
        t2 = HistoryTransaction(2, "rw", reads=[("x", 1, 1)], writes=[("x", 2)])
        history = history_from([t1, t2], {"x": [(1, 1), (2, 2)]})
        dsg = build_dsg(history)
        kinds = {kind for _s, _t, kind in dsg.edges()}
        assert kinds == {"ww", "wr"}

    def test_report_raise_on_violation(self):
        from repro.errors import IsolationViolation

        t1 = HistoryTransaction(1, "r", reads=[("x", 99, None)])
        history = history_from([t1], {"x": []}, aborted={99})
        with pytest.raises(IsolationViolation):
            check_history(history).raise_on_violation()


class TestWorkloads:
    def test_tpcc_population_counts(self):
        scale = TPCCScale(warehouses=1, districts_per_warehouse=2,
                          customers_per_district=5, items=10,
                          initial_orders_per_district=3)
        workload = TPCCWorkload(scale=scale)
        from repro.storage.mvstore import MultiVersionStore

        store = MultiVersionStore()
        workload.populate(store)
        assert store.latest_committed(("warehouse", 1)) is not None
        assert store.latest_committed(("district", (1, 2))) is not None
        assert store.latest_committed(("customer", (1, 2, 5))) is not None
        assert store.latest_committed(("item", 10)) is not None

    def test_tpcc_argument_generation_in_range(self):
        workload = TPCCWorkload(warehouses=2)
        rng = workload.make_rng(1)
        for _ in range(50):
            name, args = workload.next_transaction(rng)
            assert name in workload.transaction_types()
            if "w_id" in args:
                assert 1 <= args["w_id"] <= 2

    def test_tpcc_disjoint_warehouses_option(self):
        workload = TPCCWorkload(warehouses=4, disjoint_warehouses=True)
        rng = workload.make_rng(2)
        stock_w = {workload.generate_args(rng, "stock_level")["w_id"] for _ in range(30)}
        order_w = {workload.generate_args(rng, "new_order")["w_id"] for _ in range(30)}
        assert stock_w.isdisjoint(order_w)

    def test_tpcc_new_order_semantics(self):
        workload = TPCCWorkload(
            scale=TPCCScale(warehouses=1, districts_per_warehouse=1,
                            customers_per_district=5, items=20,
                            initial_orders_per_district=2)
        )
        db = Database(workload, configs.tpcc_monolithic_2pl())
        before = db.read_row("district", 1, 1)["d_next_o_id"]
        result = db.execute("new_order", w_id=1, d_id=1, c_id=1, items=[(1, 1, 3)])
        after = db.read_row("district", 1, 1)["d_next_o_id"]
        assert after == before + 1
        assert result["o_id"] == before
        assert db.read_row("stock", 1, 1)["s_quantity"] == 97

    def test_tpcc_payment_updates_balances(self):
        workload = TPCCWorkload(
            scale=TPCCScale(warehouses=1, districts_per_warehouse=1,
                            customers_per_district=5, items=10,
                            initial_orders_per_district=2)
        )
        db = Database(workload, configs.tpcc_monolithic_2pl())
        db.execute("payment", w_id=1, d_id=1, c_w_id=1, c_d_id=1, c_id=2, h_amount=25.0)
        assert db.read_row("warehouse", 1)["w_ytd"] == pytest.approx(25.0)
        assert db.read_row("customer", 1, 1, 2)["c_balance"] == pytest.approx(-25.0)

    def test_tpcc_delivery_advances_pointer(self):
        workload = TPCCWorkload(
            scale=TPCCScale(warehouses=1, districts_per_warehouse=2,
                            customers_per_district=5, items=10,
                            initial_orders_per_district=2)
        )
        db = Database(workload, configs.tpcc_monolithic_2pl())
        result = db.execute("delivery", w_id=1, carrier_id=3, districts=[1, 2])
        assert len(result["delivered"]) == 2
        assert db.read_row("new_order_ptr", 1, 1)["first_undelivered"] == 2

    def test_seats_reservation_lifecycle(self):
        workload = SEATSWorkload(flights=3, seats_per_flight=50, customers=20)
        db = Database(workload, configs.seats_monolithic_2pl())
        outcome = db.execute("new_reservation", f_id=1, c_id=1, seat=7, price=100.0)
        assert outcome["reserved"]
        assert db.read_row("flight", 1)["seats_left"] == 49
        taken = db.execute("new_reservation", f_id=1, c_id=2, seat=7, price=100.0)
        assert not taken["reserved"]
        deleted = db.execute("delete_reservation", f_id=1, c_id=1)
        assert deleted["deleted"]
        assert db.read_row("flight", 1)["seats_left"] == 50

    def test_seats_find_open_seats_excludes_taken(self):
        workload = SEATSWorkload(flights=2, seats_per_flight=20, customers=10)
        db = Database(workload, configs.seats_monolithic_2pl())
        db.execute("new_reservation", f_id=1, c_id=1, seat=5, price=10.0)
        result = db.execute("find_open_seats", f_id=1, seats=[4, 5, 6])
        assert 5 not in result["open_seats"]
        assert 4 in result["open_seats"]

    def test_micro_workload_mix_and_args(self):
        workload = CrossGroupConflictWorkload(shared_rows=4, cold_rows=10)
        rng = workload.make_rng(0)
        name, args = workload.next_transaction(rng)
        assert name in workload.transaction_types()
        assert 0 <= args["shared_id"] < 4
        assert len(args["cold_ids"]) == len(workload.cold_tables)


class TestHarness:
    def test_run_benchmark_returns_result(self):
        workload = CrossGroupConflictWorkload(shared_rows=10, cold_rows=100)
        result = run_benchmark(
            workload,
            monolithic("2pl", workload.transaction_names()),
            clients=10,
            duration=0.2,
            warmup=0.05,
        )
        assert result.commits > 0
        assert result.throughput > 0
        assert result.clients == 10

    def test_client_sweep_and_peak(self):
        def workload_factory():
            return CrossGroupConflictWorkload(shared_rows=10, cold_rows=100)

        def config_factory():
            return monolithic("2pl", ("group_a_update", "group_b_update"))

        series = client_sweep(
            workload_factory, config_factory, client_counts=(5, 15), duration=0.2, warmup=0.05
        )
        assert len(series) == 2
        best = peak_throughput(series)
        assert best.throughput == max(r.throughput for _c, r in series)
        assert len(sweep_throughputs(series)) == 2

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "xx"}], headers=["a", "b"])
        assert "a" in text and "xx" in text

    def test_format_series(self):
        text = format_series([(10, 100.0), (20, 200.0)])
        assert "10" in text and "200.0" in text

    def test_named_configurations_are_valid(self):
        for factory in configs.TPCC_CONFIGURATIONS.values():
            config = factory()
            assert config.transaction_types
        for factory in configs.SEATS_CONFIGURATIONS.values():
            assert factory().transaction_types


class TestProfilerAnalysis:
    def _txn(self, txn_id, txn_type):
        return Transaction(txn_id=txn_id, txn_type=txn_type)

    def test_edge_scores_accumulate(self):
        profiler = ContentionProfiler()
        a, b = self._txn(1, "A"), self._txn(2, "B")
        profiler.record_wait(a, b, 0.0, 1.0)
        profiler.record_wait(b, a, 2.0, 2.5)
        edges = profiler.edge_scores()
        assert edges[("A", "B")] == pytest.approx(1.5)

    def test_nested_wait_attribution(self):
        """Figure 5.6: time the blocker itself spent blocked is re-attributed."""
        profiler = ContentionProfiler()
        t1, t2, t3 = self._txn(1, "T1"), self._txn(2, "T2"), self._txn(3, "T3")
        # t1 waits for t2 during [0, 8]; t2 itself waits for t3 during [2, 8].
        profiler.record_wait(t1, t2, 0.0, 8.0)
        profiler.record_wait(t2, t3, 2.0, 8.0)
        scores = profiler.scores()
        assert scores[("T2", "T1")] == pytest.approx(2.0)
        assert scores[("T3", "T2")] == pytest.approx(6.0)

    def test_bottleneck_edge_selection(self):
        profiler = ContentionProfiler()
        a, b, c = self._txn(1, "A"), self._txn(2, "B"), self._txn(3, "C")
        profiler.record_wait(a, b, 0, 1)
        profiler.record_wait(c, b, 0, 5)
        edge, score = profiler.bottleneck_edge()
        assert edge == ("B", "C")
        assert score == pytest.approx(5.0)

    def test_disabled_profiler_records_nothing(self):
        profiler = ContentionProfiler(enabled=False)
        profiler.record_wait(self._txn(1, "A"), self._txn(2, "B"), 0, 1)
        assert not profiler.events

    def test_latency_profiler_inflation(self):
        profiler = LatencyProfiler()
        profiler.record("low", {"per_type": {"pay": {"mean_latency": 0.01, "commits": 5}}})
        profiler.record("high", {"per_type": {"pay": {"mean_latency": 0.05, "commits": 5}}})
        assert profiler.latency_inflation("low", "high")["pay"] == pytest.approx(5.0)
        assert profiler.suspected_bottlenecks("low", "high", threshold=2.0) == ["pay"]

    def test_reset_clears_events(self):
        profiler = ContentionProfiler()
        profiler.record_wait(self._txn(1, "A"), self._txn(2, "B"), 0, 1)
        profiler.reset()
        assert not profiler.events and not profiler.aborts


class TestOptimizer:
    def _optimizer(self):
        workload = TPCCWorkload(warehouses=1)
        return ConfigurationOptimizer(workload.transaction_types()), workload

    def test_single_type_candidates_split_leaf(self):
        optimizer, workload = self._optimizer()
        config = configs.initial_configuration(
            set(workload.transaction_types()), {"order_status", "stock_level"}
        )
        candidates = optimizer.propose(config, ("new_order", "new_order"))
        assert candidates
        for candidate in candidates:
            new_leaf = candidate.configuration.leaf_for("new_order")
            assert new_leaf.transactions == ("new_order",)
            # Every other type is still assigned somewhere.
            assert candidate.configuration.transaction_types == config.transaction_types

    def test_same_group_candidates_add_cross_cc(self):
        optimizer, workload = self._optimizer()
        config = configs.initial_configuration(
            set(workload.transaction_types()), {"order_status", "stock_level"}
        )
        candidates = optimizer.propose(config, ("new_order", "payment"))
        assert candidates
        depths = {candidate.configuration.depth() for candidate in candidates}
        assert max(depths) >= 3

    def test_cross_group_candidates(self):
        optimizer, workload = self._optimizer()
        config = configs.tpcc_callas_1()
        candidates = optimizer.propose(config, ("new_order", "stock_level"))
        assert candidates
        for candidate in candidates:
            assert candidate.configuration.transaction_types == config.transaction_types

    def test_candidates_are_deduplicated(self):
        optimizer, workload = self._optimizer()
        config = configs.initial_configuration(
            set(workload.transaction_types()), {"order_status", "stock_level"}
        )
        candidates = optimizer.propose(config, ("payment", "payment"))
        signatures = [c.configuration.signature() for c in candidates]
        assert len(signatures) == len(set(signatures))

    def test_preprocessing_records_pipeline(self):
        _optimizer, workload = self._optimizer()
        config = configs.tpcc_tebaldi_3layer()
        profiles = {n: t.profile for n, t in workload.transaction_types().items()}
        notes = apply_preprocessing(config.clone(), profiles)
        assert any("steps" in note for note in notes)

    def test_preprocessing_partition_by_instance(self):
        workload = SEATSWorkload(flights=2, seats_per_flight=10, customers=10)
        profiles = {n: t.profile for n, t in workload.transaction_types().items()}
        config = Configuration(
            node(
                "ssi",
                leaf("none", "find_flights", "find_open_seats"),
                node(
                    "2pl",
                    leaf("tso", "new_reservation", "delete_reservation", "update_reservation"),
                    leaf("2pl", "update_customer"),
                ),
            ),
            name="seats",
        )
        keys = {
            name: (lambda args: args.get("f_id"))
            for name in ("new_reservation", "delete_reservation", "update_reservation")
        }
        apply_preprocessing(config, profiles, instance_keys=keys)
        assert config.leaf_for("new_reservation").instance_key is not None


class TestHypothesisProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["A", "B", "C"]), st.integers(0, 4)),
            min_size=2,
            max_size=25,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_profiler_scores_are_non_negative_and_bounded(self, waits):
        profiler = ContentionProfiler()
        txns = {}
        for index, (txn_type, duration) in enumerate(waits):
            blocked = txns.setdefault(index, Transaction(txn_id=index + 1, txn_type=txn_type))
            blocker = Transaction(txn_id=1000 + index, txn_type="X")
            profiler.record_wait(blocked, blocker, float(index), float(index + duration))
        total_wait = sum(duration for _t, duration in waits)
        scores = profiler.edge_scores()
        assert all(score >= 0 for score in scores.values())
        assert sum(scores.values()) <= total_wait + 1e-6

    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_random_micro_schedules_are_serializable(self, data):
        """Random concurrent schedules under random CC trees stay serializable."""
        from repro.core.engine import EngineOptions
        from repro.isolation import check_engine
        from repro.sim.environment import Environment
        from tests.conftest import build_engine, run_transactions

        cc_choices = ["2pl", "ssi", "rp", "tso"]
        # Cross-group RP is excluded here: RP-over-RP trees have a known rare
        # stale-read corner case under concurrent read-modify-writes of the
        # same hot row (documented in DESIGN.md, "Known limitations").
        cross = data.draw(st.sampled_from(["2pl", "ssi"]))
        leaf_a = data.draw(st.sampled_from(cc_choices))
        leaf_b = data.draw(st.sampled_from(cc_choices))
        config = Configuration(
            node(cross, leaf(leaf_a, "group_a_update"), leaf(leaf_b, "group_b_update")),
            name="random",
        )
        workload = CrossGroupConflictWorkload(shared_rows=3, local_rows=3, cold_rows=20)
        env = Environment()
        engine = build_engine(
            env,
            workload,
            config,
            options=EngineOptions(charge_costs=True, lock_timeout=0.2, commit_wait_timeout=0.4),
        )
        count = data.draw(st.integers(min_value=4, max_value=20))
        rng = workload.make_rng(data.draw(st.integers(0, 1000)))
        requests = [workload.next_transaction(rng) for _ in range(count)]
        run_transactions(env, engine, requests)
        report = check_engine(engine)
        assert report.ok, report.describe()
