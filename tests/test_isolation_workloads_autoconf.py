"""Tests for the isolation oracle, the workloads, the harness and autoconf."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.autoconf import ContentionProfiler, LatencyProfiler
from repro.autoconf.optimizer import ConfigurationOptimizer
from repro.autoconf.preprocess import apply_preprocessing
from repro.core.config import Configuration, leaf, monolithic, node
from repro.core.transaction import Transaction
from repro.database import Database
from repro.harness import configs
from repro.harness.report import format_run_results, format_series, format_table
from repro.harness.runner import BenchmarkRunner, run_benchmark
from repro.harness.sweep import client_sweep, peak_throughput, sweep_throughputs
from repro.isolation.checker import check_history
from repro.isolation.dsg import build_dsg
from repro.isolation.history import History, HistoryRecorder, HistoryTransaction
from repro.workloads.micro import CrossGroupConflictWorkload
from repro.workloads.queue import QueueWorkload
from repro.workloads.seats import SEATSWorkload
from repro.workloads.smallbank import SmallBankWorkload
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.tpcc.schema import TPCCScale
from repro.workloads.ycsb import YCSBWorkload


def history_from(transactions, version_orders, aborted=()):
    history = History(aborted_ids=set(aborted))
    for txn in transactions:
        history.add_transaction(txn)
    history.version_orders = version_orders
    return history


class TestIsolationOracle:
    def test_serial_history_is_serializable(self):
        t1 = HistoryTransaction(1, "w", reads=[], writes=[("x", 1)])
        t2 = HistoryTransaction(2, "r", reads=[("x", 1, 1)], writes=[])
        history = history_from([t1, t2], {"x": [(1, 1)]})
        report = check_history(history)
        assert report.ok and report.serializable

    def test_ww_cycle_detected(self):
        t1 = HistoryTransaction(1, "w", writes=[("x", 1), ("y", 4)])
        t2 = HistoryTransaction(2, "w", writes=[("x", 2), ("y", 3)])
        history = history_from([t1, t2], {"x": [(1, 1), (2, 2)], "y": [(3, 2), (4, 1)]})
        report = check_history(history)
        assert not report.serializable

    def test_write_skew_detected_as_rw_cycle(self):
        # T1 reads y (initial) and writes x; T2 reads x (initial) and writes y.
        t1 = HistoryTransaction(1, "t", reads=[("y", 0, 1)], writes=[("x", 3)])
        t2 = HistoryTransaction(2, "t", reads=[("x", 0, 2)], writes=[("y", 4)])
        history = history_from(
            [t1, t2],
            {"x": [(2, 0), (3, 1)], "y": [(1, 0), (4, 2)]},
        )
        report = check_history(history)
        assert not report.serializable

    def test_aborted_read_detected(self):
        t1 = HistoryTransaction(1, "r", reads=[("x", 99, None)])
        history = history_from([t1], {"x": []}, aborted={99})
        report = check_history(history)
        assert report.aborted_reads
        assert not report.ok

    def test_read_committed_level_ignores_rw_cycles(self):
        t1 = HistoryTransaction(1, "t", reads=[("y", 0, 1)], writes=[("x", 3)])
        t2 = HistoryTransaction(2, "t", reads=[("x", 0, 2)], writes=[("y", 4)])
        history = history_from(
            [t1, t2], {"x": [(2, 0), (3, 1)], "y": [(1, 0), (4, 2)]}
        )
        assert check_history(history, level="read-committed").serializable
        assert not check_history(history, level="serializable").serializable

    def test_dsg_edge_kinds(self):
        t1 = HistoryTransaction(1, "w", writes=[("x", 1)])
        t2 = HistoryTransaction(2, "rw", reads=[("x", 1, 1)], writes=[("x", 2)])
        history = history_from([t1, t2], {"x": [(1, 1), (2, 2)]})
        dsg = build_dsg(history)
        kinds = {kind for _s, _t, kind in dsg.edges()}
        assert kinds == {"ww", "wr"}

    def test_report_raise_on_violation(self):
        from repro.errors import IsolationViolation

        t1 = HistoryTransaction(1, "r", reads=[("x", 99, None)])
        history = history_from([t1], {"x": []}, aborted={99})
        with pytest.raises(IsolationViolation):
            check_history(history).raise_on_violation()

    # -- adversarial hand-built histories (the oracle must flag each) --------

    def test_intermediate_read_detected(self):
        # T1 installed two versions of x; seq 1 was intermediate (its final
        # committed version is seq 2), yet T2 read seq 1.
        t1 = HistoryTransaction(1, "w", writes=[("x", 2)])
        t2 = HistoryTransaction(2, "r", reads=[("x", 1, 1)])
        history = history_from([t1, t2], {"x": [(1, 1), (2, 1)]})
        report = check_history(history)
        assert report.intermediate_reads == [(2, "x", 1)]
        assert not report.ok

    def test_g1c_wr_ww_cycle_detected(self):
        # G1c: circular information flow mixing wr and ww edges.
        # T1 writes x (seq 1); T2 reads it (wr T1->T2) and writes y over T1's
        # version (ww T1->T2)... build the reverse: T2's y is overwritten by
        # T1 (ww T2->T1) closing the cycle T1 -wr-> T2 -ww-> T1.
        t1 = HistoryTransaction(1, "w", writes=[("x", 1), ("y", 4)])
        t2 = HistoryTransaction(2, "rw", reads=[("x", 1, 1)], writes=[("y", 3)])
        history = history_from(
            [t1, t2], {"x": [(1, 1)], "y": [(3, 2), (4, 1)]}
        )
        report = check_history(history)
        assert not report.serializable
        # The cycle survives at read-committed (wr+ww only) too: it is G1,
        # not a mere write-skew artefact.
        assert not check_history(history, level="read-committed").serializable

    def test_g2_pure_antidependency_cycle_detected(self):
        # G2: cycle with only rw anti-dependencies (classic write skew),
        # flagged at serializable but tolerated at read-committed.
        t1 = HistoryTransaction(1, "t", reads=[("y", 0, 1)], writes=[("x", 3)])
        t2 = HistoryTransaction(2, "t", reads=[("x", 0, 2)], writes=[("y", 4)])
        history = history_from(
            [t1, t2], {"x": [(2, 0), (3, 1)], "y": [(1, 0), (4, 2)]}
        )
        report = check_history(history)
        assert not report.serializable
        cycle_kinds = {
            kind
            for source, target in report.cycles[0]
            for s, t, kind in build_dsg(history).edges()
            if (s, t) == (source, target)
        }
        assert cycle_kinds == {"rw"}
        assert check_history(history, level="read-committed").serializable

    def test_three_transaction_read_only_anomaly_detected(self):
        # The SmallBank read-only anomaly shape: pivot T2 with an outgoing
        # rw to T1 and an incoming rw from read-only T3.
        t1 = HistoryTransaction(1, "upd", reads=[("s", 0, 1)], writes=[("s", 3)])
        t2 = HistoryTransaction(2, "pivot", reads=[("s", 0, 1), ("c", 0, 2)], writes=[("c", 4)])
        t3 = HistoryTransaction(3, "ro", reads=[("s", 1, 3), ("c", 0, 2)])
        history = history_from(
            [t1, t2, t3], {"s": [(1, 0), (3, 1)], "c": [(2, 0), (4, 2)]}
        )
        assert not check_history(history).serializable

    def test_unknown_isolation_level_rejected(self):
        t1 = HistoryTransaction(1, "w", writes=[("x", 1)])
        history = history_from([t1], {"x": [(1, 1)]})
        with pytest.raises(ValueError):
            check_history(history, level="read_committed")
        workload = CrossGroupConflictWorkload(shared_rows=4, cold_rows=20)
        with pytest.raises(ValueError):
            BenchmarkRunner(
                workload,
                monolithic("2pl", workload.transaction_names()),
                check_isolation=True,
                isolation_level="serialisable",
            )

    def test_extra_committed_ids_are_not_aborted_reads(self):
        # A reader of an evicted-but-committed writer must not be flagged.
        t2 = HistoryTransaction(2, "r", reads=[("x", 1, 5)])
        history = history_from([t2], {"x": [(5, 1)]})
        history.extra_committed = {1}
        report = check_history(history)
        assert report.ok, report.describe()


class TestHistoryRecorder:
    def _checked_runner(self, **kwargs):
        workload = CrossGroupConflictWorkload(shared_rows=5, cold_rows=50)
        return BenchmarkRunner(
            workload,
            monolithic("2pl", workload.transaction_names()),
            seed=11,
            check_isolation=True,
            **kwargs,
        )

    def test_recorder_streams_full_version_order(self):
        runner = self._checked_runner()
        try:
            result = runner.run(6, duration=0.2, warmup=0.05)
        finally:
            runner.stop()
        report = result.extra["isolation"]
        assert report.ok, report.describe()
        history = runner.recorder.history()
        assert len(history) == runner.recorder.recorded_commits
        # Version orders are in commit-sequence order per key.
        for order in history.version_orders.values():
            seqs = [seq for seq, _writer in order]
            assert seqs == sorted(seqs)

    def test_recorder_survives_gc_pruning(self):
        # With an aggressive GC epoch the store prunes superseded versions
        # mid-run; the streamed history must still check out (the post-hoc
        # extractor would see holes in the version order).
        from repro.core.engine import EngineOptions

        runner = self._checked_runner(options=EngineOptions(gc_epoch_length=0.02))
        try:
            result = runner.run(6, duration=0.3, warmup=0.05)
        finally:
            runner.stop()
        assert runner.engine.gc.collected_versions > 0
        assert result.extra["isolation"].ok

    def test_recorder_ring_eviction_keeps_checks_sound(self):
        runner = self._checked_runner(history_window=25)
        try:
            result = runner.run(6, duration=0.3, warmup=0.05)
        finally:
            runner.stop()
        history = runner.recorder.history()
        assert len(history) <= 25
        assert history.extra_committed  # something was evicted
        assert result.extra["isolation"].ok

    def test_checked_run_raises_without_recorder(self):
        workload = CrossGroupConflictWorkload(shared_rows=5, cold_rows=50)
        runner = BenchmarkRunner(workload, monolithic("2pl", workload.transaction_names()))
        try:
            with pytest.raises(ValueError):
                runner.check_isolation()
        finally:
            runner.stop()

    def test_recorder_read_of_later_committed_writer_resolves(self):
        # A read of a then-uncommitted version must pick up the writer's
        # final commit_seq when the history is materialised.
        from repro.storage.mvstore import MultiVersionStore

        store = MultiVersionStore()
        recorder = HistoryRecorder()
        writer = Transaction(txn_id=1, txn_type="w")
        version = store.install(("x",), {"v": 1}, writer)
        reader = Transaction(txn_id=2, txn_type="r")
        from repro.core.transaction import ReadRecord

        reader.reads.append(ReadRecord(("x",), version))
        recorder.on_commit(reader, [])          # reader commits first
        versions = store.commit_transaction(writer)
        recorder.on_commit(writer, versions)    # writer commits later
        history = recorder.history()
        (key, writer_id, commit_seq), = history.transactions[2].reads
        assert (key, writer_id) == (("x",), 1)
        assert commit_seq == version.commit_seq is not None


class TestWorkloads:
    def test_tpcc_population_counts(self):
        scale = TPCCScale(warehouses=1, districts_per_warehouse=2,
                          customers_per_district=5, items=10,
                          initial_orders_per_district=3)
        workload = TPCCWorkload(scale=scale)
        from repro.storage.mvstore import MultiVersionStore

        store = MultiVersionStore()
        workload.populate(store)
        assert store.latest_committed(("warehouse", 1)) is not None
        assert store.latest_committed(("district", (1, 2))) is not None
        assert store.latest_committed(("customer", (1, 2, 5))) is not None
        assert store.latest_committed(("item", 10)) is not None

    def test_tpcc_argument_generation_in_range(self):
        workload = TPCCWorkload(warehouses=2)
        rng = workload.make_rng(1)
        for _ in range(50):
            name, args = workload.next_transaction(rng)
            assert name in workload.transaction_types()
            if "w_id" in args:
                assert 1 <= args["w_id"] <= 2

    def test_tpcc_disjoint_warehouses_option(self):
        workload = TPCCWorkload(warehouses=4, disjoint_warehouses=True)
        rng = workload.make_rng(2)
        stock_w = {workload.generate_args(rng, "stock_level")["w_id"] for _ in range(30)}
        order_w = {workload.generate_args(rng, "new_order")["w_id"] for _ in range(30)}
        assert stock_w.isdisjoint(order_w)

    def test_tpcc_new_order_semantics(self):
        workload = TPCCWorkload(
            scale=TPCCScale(warehouses=1, districts_per_warehouse=1,
                            customers_per_district=5, items=20,
                            initial_orders_per_district=2)
        )
        db = Database(workload, configs.tpcc_monolithic_2pl())
        before = db.read_row("district", 1, 1)["d_next_o_id"]
        result = db.execute("new_order", w_id=1, d_id=1, c_id=1, items=[(1, 1, 3)])
        after = db.read_row("district", 1, 1)["d_next_o_id"]
        assert after == before + 1
        assert result["o_id"] == before
        assert db.read_row("stock", 1, 1)["s_quantity"] == 97

    def test_tpcc_payment_updates_balances(self):
        workload = TPCCWorkload(
            scale=TPCCScale(warehouses=1, districts_per_warehouse=1,
                            customers_per_district=5, items=10,
                            initial_orders_per_district=2)
        )
        db = Database(workload, configs.tpcc_monolithic_2pl())
        db.execute("payment", w_id=1, d_id=1, c_w_id=1, c_d_id=1, c_id=2, h_amount=25.0)
        assert db.read_row("warehouse", 1)["w_ytd"] == pytest.approx(25.0)
        assert db.read_row("customer", 1, 1, 2)["c_balance"] == pytest.approx(-25.0)

    def test_tpcc_delivery_advances_pointer(self):
        workload = TPCCWorkload(
            scale=TPCCScale(warehouses=1, districts_per_warehouse=2,
                            customers_per_district=5, items=10,
                            initial_orders_per_district=2)
        )
        db = Database(workload, configs.tpcc_monolithic_2pl())
        result = db.execute("delivery", w_id=1, carrier_id=3, districts=[1, 2])
        assert len(result["delivered"]) == 2
        assert db.read_row("new_order_ptr", 1, 1)["first_undelivered"] == 2

    def test_seats_reservation_lifecycle(self):
        workload = SEATSWorkload(flights=3, seats_per_flight=50, customers=20)
        db = Database(workload, configs.seats_monolithic_2pl())
        outcome = db.execute("new_reservation", f_id=1, c_id=1, seat=7, price=100.0)
        assert outcome["reserved"]
        assert db.read_row("flight", 1)["seats_left"] == 49
        taken = db.execute("new_reservation", f_id=1, c_id=2, seat=7, price=100.0)
        assert not taken["reserved"]
        deleted = db.execute("delete_reservation", f_id=1, c_id=1)
        assert deleted["deleted"]
        assert db.read_row("flight", 1)["seats_left"] == 50

    def test_seats_find_open_seats_excludes_taken(self):
        workload = SEATSWorkload(flights=2, seats_per_flight=20, customers=10)
        db = Database(workload, configs.seats_monolithic_2pl())
        db.execute("new_reservation", f_id=1, c_id=1, seat=5, price=10.0)
        result = db.execute("find_open_seats", f_id=1, seats=[4, 5, 6])
        assert 5 not in result["open_seats"]
        assert 4 in result["open_seats"]

    def test_micro_workload_mix_and_args(self):
        workload = CrossGroupConflictWorkload(shared_rows=4, cold_rows=10)
        rng = workload.make_rng(0)
        name, args = workload.next_transaction(rng)
        assert name in workload.transaction_types()
        assert 0 <= args["shared_id"] < 4
        assert len(args["cold_ids"]) == len(workload.cold_tables)

    def test_smallbank_balance_and_deposit(self):
        workload = SmallBankWorkload(customers=10, hot_accounts=2)
        db = Database(workload, configs.smallbank_monolithic_2pl())
        before = db.execute("balance", c_id=3)["balance"]
        db.execute("deposit_checking", c_id=3, amount=50.0)
        after = db.execute("balance", c_id=3)["balance"]
        assert after == pytest.approx(before + 50.0)

    def test_smallbank_send_payment_conserves_money(self):
        workload = SmallBankWorkload(customers=10)
        db = Database(workload, configs.smallbank_monolithic_2pl())
        total_before = sum(
            db.execute("balance", c_id=c)["balance"] for c in (1, 2)
        )
        outcome = db.execute("send_payment", from_c_id=1, to_c_id=2, amount=75.0)
        assert outcome["ok"]
        total_after = sum(
            db.execute("balance", c_id=c)["balance"] for c in (1, 2)
        )
        assert total_after == pytest.approx(total_before)

    def test_smallbank_amalgamate_zeroes_source(self):
        workload = SmallBankWorkload(customers=10)
        db = Database(workload, configs.smallbank_monolithic_2pl())
        moved = db.execute("amalgamate", from_c_id=4, to_c_id=5)["moved"]
        assert moved == pytest.approx(20_000.0)
        assert db.execute("balance", c_id=4)["balance"] == pytest.approx(0.0)

    def test_smallbank_transact_savings_rejects_overdraft(self):
        workload = SmallBankWorkload(customers=5, initial_balance=10.0)
        db = Database(workload, configs.smallbank_monolithic_2pl())
        outcome = db.execute("transact_savings", c_id=1, amount=-100.0)
        assert not outcome["ok"]
        assert db.read_row("savings", 1)["balance"] == pytest.approx(10.0)

    def test_smallbank_hot_account_knob_skews_args(self):
        workload = SmallBankWorkload(customers=1000, hot_accounts=5, hot_probability=1.0)
        rng = workload.make_rng(3)
        customers = {workload.generate_args(rng, "balance")["c_id"] for _ in range(50)}
        assert customers <= set(range(1, 6))

    def test_smallbank_degenerate_hot_set_terminates(self):
        # Regression: a single-account hot set at probability 1.0 must still
        # produce distinct payment endpoints (used to loop forever).
        workload = SmallBankWorkload(customers=100, hot_accounts=1, hot_probability=1.0)
        rng = workload.make_rng(0)
        args = workload.generate_args(rng, "send_payment")
        assert args["from_c_id"] != args["to_c_id"]
        solo = SmallBankWorkload(customers=1)
        args = solo.generate_args(solo.make_rng(0), "amalgamate")
        assert args["from_c_id"] == args["to_c_id"] == 1

    def test_ycsb_profiles_select_mix(self):
        for profile, expected in (("a", {"read_record", "update_record"}),
                                  ("e", {"scan_records", "insert_record"})):
            workload = YCSBWorkload(records=50, profile=profile)
            assert set(workload.mix()) == expected
        with pytest.raises(ValueError):
            YCSBWorkload(profile="z")

    def test_ycsb_operations(self):
        workload = YCSBWorkload(records=50, profile="a")
        db = Database(workload, configs.ycsb_monolithic_2pl())
        assert db.execute("read_record", key=7)["row"]["field0"] == 49
        db.execute("update_record", key=7, value=123)
        assert db.execute("read_record", key=7)["row"]["field0"] == 123
        rows = db.execute("scan_records", start=5, count=4)["rows"]
        assert len(rows) == 4
        db.execute("insert_record", key=1000, value=9)
        assert db.execute("read_record", key=1000)["row"]["field0"] == 9
        result = db.execute("read_modify_write", key=7, delta=2)
        assert result["field0"] == 125

    def test_ycsb_scan_stays_in_range(self):
        workload = YCSBWorkload(records=30, max_scan_length=10)
        rng = workload.make_rng(5)
        for _ in range(40):
            args = workload.generate_args(rng, "scan_records")
            assert 0 <= args["start"] <= 30 - 1
            assert args["start"] + args["count"] <= 30 + workload.max_scan_length


class TestHarness:
    def test_run_benchmark_returns_result(self):
        workload = CrossGroupConflictWorkload(shared_rows=10, cold_rows=100)
        result = run_benchmark(
            workload,
            monolithic("2pl", workload.transaction_names()),
            clients=10,
            duration=0.2,
            warmup=0.05,
        )
        assert result.commits > 0
        assert result.throughput > 0
        assert result.clients == 10

    def test_client_sweep_and_peak(self):
        def workload_factory():
            return CrossGroupConflictWorkload(shared_rows=10, cold_rows=100)

        def config_factory():
            return monolithic("2pl", ("group_a_update", "group_b_update"))

        series = client_sweep(
            workload_factory, config_factory, client_counts=(5, 15), duration=0.2, warmup=0.05
        )
        assert len(series) == 2
        best = peak_throughput(series)
        assert best.throughput == max(r.throughput for _c, r in series)
        assert len(sweep_throughputs(series)) == 2

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "xx"}], headers=["a", "b"])
        assert "a" in text and "xx" in text

    def test_format_series(self):
        text = format_series([(10, 100.0), (20, 200.0)])
        assert "10" in text and "200.0" in text

    def test_named_configurations_are_valid(self):
        for configurations in configs.WORKLOAD_CONFIGURATIONS.values():
            for factory in configurations.values():
                assert factory().transaction_types

    def test_registry_covers_all_workloads(self):
        assert set(configs.WORKLOAD_CONFIGURATIONS) == {
            "tpcc", "tpcc-scan", "seats", "micro", "smallbank",
            "ycsb", "ycsb-zipf", "ycsb-scan", "queue",
        }
        for configurations in configs.WORKLOAD_CONFIGURATIONS.values():
            assert len(configurations) >= 3
        # The zipfian preset shares the YCSB trees (same transaction types).
        assert (
            configs.WORKLOAD_CONFIGURATIONS["ycsb-zipf"]
            is configs.WORKLOAD_CONFIGURATIONS["ycsb"]
        )

    # -- empty-input edge cases (sweep.py / report.py) -----------------------

    def test_peak_throughput_empty_returns_default(self):
        assert peak_throughput([]) is None
        assert peak_throughput(None) is None
        sentinel = object()
        assert peak_throughput([], default=sentinel) is sentinel
        assert sweep_throughputs(None) == []
        assert sweep_throughputs([]) == []

    def test_format_series_empty_and_none_values(self):
        text = format_series([])
        assert "clients" in text and "(no data)" in text
        assert format_series(None).endswith("(no data)")
        assert "-" in format_series([(10, None)])

    def test_format_run_results_empty(self):
        text = format_run_results([])
        assert "configuration" in text and "(no data)" in text
        assert "(no data)" in format_run_results(None)

    def test_format_table_accepts_generator(self):
        text = format_table((row for row in [(1, 2)]), headers=["a", "b"])
        assert "1" in text and "2" in text


@pytest.mark.slow
class TestCheckedWorkloadRuns:
    """Fixed-seed checked runs: the isolation oracle gates every workload.

    Each registered workload runs under at least three hierarchical CC
    configurations with a deterministic seed; the run fails if the recorded
    history has an aborted read, an intermediate read or a DSG cycle.  The
    scan-bearing workloads (tpcc-scan, queue, scan-heavy ycsb) hold range
    access to the same standard: the oracle derives phantom
    anti-dependencies from the recorded scan predicates.
    """

    SCENARIOS = {
        "tpcc": (
            lambda: TPCCWorkload(
                scale=TPCCScale(warehouses=1, districts_per_warehouse=4,
                                customers_per_district=30, items=100,
                                initial_orders_per_district=10)
            ),
            ("2pl", "tebaldi-2layer", "tebaldi-3layer"),
        ),
        "tpcc-scan": (
            lambda: TPCCWorkload(
                scale=TPCCScale(warehouses=1, districts_per_warehouse=4,
                                customers_per_district=30, items=100,
                                initial_orders_per_district=10),
                include_payment_by_name=True,
            ),
            ("2pl", "ssi", "2layer", "3layer"),
        ),
        "seats": (
            lambda: SEATSWorkload(flights=4, seats_per_flight=100, customers=50),
            ("2pl", "2layer", "3layer"),
        ),
        "micro": (
            lambda: CrossGroupConflictWorkload(shared_rows=5, cold_rows=100),
            ("ssi", "2layer", "ssi-2layer"),
        ),
        "smallbank": (
            lambda: SmallBankWorkload(customers=50, hot_accounts=5),
            ("ssi", "2layer", "3layer"),
        ),
        "ycsb": (
            lambda: YCSBWorkload(records=200, profile="a"),
            ("ssi", "2layer", "3layer"),
        ),
        "ycsb-zipf": (
            lambda: YCSBWorkload(records=400, profile="a",
                                 distribution="zipfian", zipf_theta=0.9),
            ("ssi", "2layer", "3layer", "batch", "batch-2layer", "batch-3layer"),
        ),
        "ycsb-scan": (
            # Scan-heavy profile E: the deterministic batch cells must hold
            # their declared-range phantom story against 95% range scans.
            lambda: YCSBWorkload(records=200, profile="e"),
            ("ssi", "batch", "batch-2layer"),
        ),
        "queue": (
            lambda: QueueWorkload(initial_messages=4, window=6),
            ("2pl", "ssi", "2layer", "3layer"),
        ),
    }

    @pytest.mark.parametrize(
        "workload_name,config_name",
        [
            (workload, config)
            for workload, (_factory, names) in sorted(SCENARIOS.items())
            for config in names
        ],
    )
    def test_checked_run_is_serializable(self, workload_name, config_name):
        factory, _names = self.SCENARIOS[workload_name]
        result = run_benchmark(
            factory(),
            configs.WORKLOAD_CONFIGURATIONS[workload_name][config_name](),
            clients=8,
            duration=0.25,
            warmup=0.05,
            seed=7,
            check_isolation=True,
        )
        report = result.extra["isolation"]
        assert report.ok, report.describe()
        assert result.commits > 0

    def test_rp_step_commit_antidependency_regression(self):
        """Regression: passed RP step locks must keep ordering later writers.

        TPC-C under the 2-layer tree (all updates in one RP group) used to
        lose the rw anti-dependency of a step-committed *reader*, closing
        new_order/payment ordering cycles undetected.
        """
        result = run_benchmark(
            TPCCWorkload(warehouses=2),
            configs.tpcc_tebaldi_2layer(),
            clients=8,
            duration=0.3,
            warmup=0.1,
            seed=7,
            check_isolation=True,
        )
        assert result.extra["isolation"].ok

    def test_ssi_committed_pivot_regression(self):
        """Regression: the SmallBank read-only anomaly under monolithic SSI.

        A read-only transaction discovering an rw edge into an already
        committed pivot must abort (committed-pivot rule); it used to slip
        through and publish a non-serializable read.
        """
        result = run_benchmark(
            SmallBankWorkload(customers=100, hot_accounts=5),
            configs.smallbank_monolithic_ssi(),
            clients=16,
            duration=0.3,
            warmup=0.05,
            seed=7,
            check_isolation=True,
        )
        assert result.extra["isolation"].ok


class TestHarnessCLI:
    def test_list_registry(self, capsys):
        from repro.harness.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "smallbank" in out and "ycsb" in out

    def test_checked_cli_run(self, capsys):
        from repro.harness.cli import main

        code = main([
            "--workload", "micro", "--config", "2pl",
            "--clients", "4", "--duration", "0.1", "--warmup", "0.0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "isolation OK" in out

    def test_cli_rejects_unknown_config(self):
        from repro.harness.cli import main

        with pytest.raises(SystemExit):
            main(["--workload", "micro", "--config", "nope"])

    # -- argument edge cases: clean parser errors, never tracebacks ----------

    def test_cli_rejects_unknown_workload(self, capsys):
        from repro.harness.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--workload", "no-such-workload"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_cli_rejects_non_positive_workers(self, capsys):
        from repro.harness.cli import main

        for workers in ("0", "-3"):
            with pytest.raises(SystemExit) as excinfo:
                main(["--workload", "micro", "--workers", workers])
            assert excinfo.value.code == 2
            assert "--workers" in capsys.readouterr().err

    def test_cli_rejects_non_positive_clients(self, capsys):
        from repro.harness.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--workload", "micro", "--clients", "0", "8"])
        assert excinfo.value.code == 2
        assert "--clients" in capsys.readouterr().err

    def test_cli_rejects_bad_durations(self, capsys):
        from repro.harness.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--workload", "micro", "--duration", "0"])
        assert excinfo.value.code == 2
        assert "--duration" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            main(["--workload", "micro", "--warmup", "-1"])
        assert excinfo.value.code == 2
        assert "--warmup" in capsys.readouterr().err

    def test_cli_all_rejects_workload_filter(self, capsys):
        from repro.harness.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--all", "--workload", "micro"])
        assert excinfo.value.code == 2
        assert "--all" in capsys.readouterr().err

    def test_cli_registry_lists_new_workloads(self, capsys):
        from repro.harness.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("tpcc-scan", "queue", "ycsb-zipf"):
            assert name in out


class TestProfilerAnalysis:
    def _txn(self, txn_id, txn_type):
        return Transaction(txn_id=txn_id, txn_type=txn_type)

    def test_edge_scores_accumulate(self):
        profiler = ContentionProfiler()
        a, b = self._txn(1, "A"), self._txn(2, "B")
        profiler.record_wait(a, b, 0.0, 1.0)
        profiler.record_wait(b, a, 2.0, 2.5)
        edges = profiler.edge_scores()
        assert edges[("A", "B")] == pytest.approx(1.5)

    def test_nested_wait_attribution(self):
        """Figure 5.6: time the blocker itself spent blocked is re-attributed."""
        profiler = ContentionProfiler()
        t1, t2, t3 = self._txn(1, "T1"), self._txn(2, "T2"), self._txn(3, "T3")
        # t1 waits for t2 during [0, 8]; t2 itself waits for t3 during [2, 8].
        profiler.record_wait(t1, t2, 0.0, 8.0)
        profiler.record_wait(t2, t3, 2.0, 8.0)
        scores = profiler.scores()
        assert scores[("T2", "T1")] == pytest.approx(2.0)
        assert scores[("T3", "T2")] == pytest.approx(6.0)

    def test_bottleneck_edge_selection(self):
        profiler = ContentionProfiler()
        a, b, c = self._txn(1, "A"), self._txn(2, "B"), self._txn(3, "C")
        profiler.record_wait(a, b, 0, 1)
        profiler.record_wait(c, b, 0, 5)
        edge, score = profiler.bottleneck_edge()
        assert edge == ("B", "C")
        assert score == pytest.approx(5.0)

    def test_disabled_profiler_records_nothing(self):
        profiler = ContentionProfiler(enabled=False)
        profiler.record_wait(self._txn(1, "A"), self._txn(2, "B"), 0, 1)
        assert not profiler.events

    def test_latency_profiler_inflation(self):
        profiler = LatencyProfiler()
        profiler.record("low", {"per_type": {"pay": {"mean_latency": 0.01, "commits": 5}}})
        profiler.record("high", {"per_type": {"pay": {"mean_latency": 0.05, "commits": 5}}})
        assert profiler.latency_inflation("low", "high")["pay"] == pytest.approx(5.0)
        assert profiler.suspected_bottlenecks("low", "high", threshold=2.0) == ["pay"]

    def test_reset_clears_events(self):
        profiler = ContentionProfiler()
        profiler.record_wait(self._txn(1, "A"), self._txn(2, "B"), 0, 1)
        profiler.reset()
        assert not profiler.events and not profiler.aborts


class TestOptimizer:
    def _optimizer(self):
        workload = TPCCWorkload(warehouses=1)
        return ConfigurationOptimizer(workload.transaction_types()), workload

    def test_single_type_candidates_split_leaf(self):
        optimizer, workload = self._optimizer()
        config = configs.initial_configuration(
            set(workload.transaction_types()), {"order_status", "stock_level"}
        )
        candidates = optimizer.propose(config, ("new_order", "new_order"))
        assert candidates
        for candidate in candidates:
            new_leaf = candidate.configuration.leaf_for("new_order")
            assert new_leaf.transactions == ("new_order",)
            # Every other type is still assigned somewhere.
            assert candidate.configuration.transaction_types == config.transaction_types

    def test_same_group_candidates_add_cross_cc(self):
        optimizer, workload = self._optimizer()
        config = configs.initial_configuration(
            set(workload.transaction_types()), {"order_status", "stock_level"}
        )
        candidates = optimizer.propose(config, ("new_order", "payment"))
        assert candidates
        depths = {candidate.configuration.depth() for candidate in candidates}
        assert max(depths) >= 3

    def test_cross_group_candidates(self):
        optimizer, workload = self._optimizer()
        config = configs.tpcc_callas_1()
        candidates = optimizer.propose(config, ("new_order", "stock_level"))
        assert candidates
        for candidate in candidates:
            assert candidate.configuration.transaction_types == config.transaction_types

    def test_candidates_are_deduplicated(self):
        optimizer, workload = self._optimizer()
        config = configs.initial_configuration(
            set(workload.transaction_types()), {"order_status", "stock_level"}
        )
        candidates = optimizer.propose(config, ("payment", "payment"))
        signatures = [c.configuration.signature() for c in candidates]
        assert len(signatures) == len(set(signatures))

    def test_preprocessing_records_pipeline(self):
        _optimizer, workload = self._optimizer()
        config = configs.tpcc_tebaldi_3layer()
        profiles = {n: t.profile for n, t in workload.transaction_types().items()}
        notes = apply_preprocessing(config.clone(), profiles)
        assert any("steps" in note for note in notes)

    def test_preprocessing_partition_by_instance(self):
        workload = SEATSWorkload(flights=2, seats_per_flight=10, customers=10)
        profiles = {n: t.profile for n, t in workload.transaction_types().items()}
        config = Configuration(
            node(
                "ssi",
                leaf("none", "find_flights", "find_open_seats"),
                node(
                    "2pl",
                    leaf("tso", "new_reservation", "delete_reservation", "update_reservation"),
                    leaf("2pl", "update_customer"),
                ),
            ),
            name="seats",
        )
        keys = {
            name: (lambda args: args.get("f_id"))
            for name in ("new_reservation", "delete_reservation", "update_reservation")
        }
        apply_preprocessing(config, profiles, instance_keys=keys)
        assert config.leaf_for("new_reservation").instance_key is not None


class TestHypothesisProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["A", "B", "C"]), st.integers(0, 4)),
            min_size=2,
            max_size=25,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_profiler_scores_are_non_negative_and_bounded(self, waits):
        profiler = ContentionProfiler()
        txns = {}
        for index, (txn_type, duration) in enumerate(waits):
            blocked = txns.setdefault(index, Transaction(txn_id=index + 1, txn_type=txn_type))
            blocker = Transaction(txn_id=1000 + index, txn_type="X")
            profiler.record_wait(blocked, blocker, float(index), float(index + duration))
        total_wait = sum(duration for _t, duration in waits)
        scores = profiler.edge_scores()
        assert all(score >= 0 for score in scores.values())
        assert sum(scores.values()) <= total_wait + 1e-6

    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_random_micro_schedules_are_serializable(self, data):
        """Random concurrent schedules under random CC trees stay serializable."""
        from repro.core.engine import EngineOptions
        from repro.isolation import check_engine
        from repro.sim.environment import Environment
        from tests.conftest import build_engine, run_transactions

        cc_choices = ["2pl", "ssi", "rp", "tso"]
        cross = data.draw(st.sampled_from(["2pl", "ssi", "rp"]))
        leaf_a = data.draw(st.sampled_from(cc_choices))
        leaf_b = data.draw(st.sampled_from(cc_choices))
        config = Configuration(
            node(cross, leaf(leaf_a, "group_a_update"), leaf(leaf_b, "group_b_update")),
            name="random",
        )
        workload = CrossGroupConflictWorkload(shared_rows=3, local_rows=3, cold_rows=20)
        env = Environment()
        engine = build_engine(
            env,
            workload,
            config,
            options=EngineOptions(charge_costs=True, lock_timeout=0.2, commit_wait_timeout=0.4),
        )
        count = data.draw(st.integers(min_value=4, max_value=20))
        rng = workload.make_rng(data.draw(st.integers(0, 1000)))
        requests = [workload.next_transaction(rng) for _ in range(count)]
        run_transactions(env, engine, requests)
        report = check_engine(engine)
        assert report.ok, report.describe()
