"""Property tests for :class:`MultiVersionStore` invariants.

The store's hot-path lookups are index-backed (per-key writer maps, bisect
over the timestamp-ordered committed chain).  These tests drive random
operation sequences against the store while mirroring them in a naive
list-based model with the pre-index semantics, and assert the two always
agree — in particular that install/commit/abort/prune never lose the newest
committed version and that ``latest_committed_before`` matches a naive
backward scan (including non-monotone chains, where the bisect fast path
must fall back).
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.transaction import Transaction
from repro.storage.mvstore import MultiVersionStore

KEYS = ("a", "b", "c")
PROBE_TIMESTAMPS = (0.0, 1.0, 5.0, 10.5, 21.0)


def _naive_latest_before(chain, timestamp, strict):
    for version in reversed(chain):
        ts = version.timestamp if version.timestamp is not None else 0.0
        if ts < timestamp if strict else ts <= timestamp:
            return version
    return None


def _naive_version_by_writer(uncommitted, committed, txn_id):
    for version in reversed(uncommitted):
        if version.writer == txn_id:
            return version
    for version in reversed(committed):
        if version.writer == txn_id:
            return version
    return None


_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("install"),
            st.sampled_from(KEYS),
            st.integers(0, 3),
            st.integers(0, 5),
        ),
        st.tuples(
            st.just("commit"),
            st.integers(0, 3),
            st.one_of(st.none(), st.integers(0, 20)),
        ),
        st.tuples(st.just("abort"), st.integers(0, 3)),
        st.tuples(st.just("load"), st.sampled_from(KEYS), st.integers(0, 5)),
        st.tuples(st.just("prune"), st.sampled_from(KEYS), st.integers(1, 3)),
        st.tuples(st.just("prune_epochs"), st.integers(0, 3)),
    ),
    max_size=50,
)


@given(ops=_OPS)
def test_store_agrees_with_naive_model(ops):
    store = MultiVersionStore()
    committed = {key: [] for key in KEYS}
    uncommitted = {key: [] for key in KEYS}
    open_txns = []
    writes = {}
    seen_writers = {0}
    next_txn_id = 1

    for op in ops:
        kind = op[0]
        if kind == "install":
            _, key, slot, value = op
            index = slot % (len(open_txns) + 1)
            if index == len(open_txns):
                txn = Transaction(txn_id=next_txn_id, txn_type="t")
                txn.gc_epoch = next_txn_id % 3
                next_txn_id += 1
                open_txns.append(txn)
                writes[txn.txn_id] = []
                seen_writers.add(txn.txn_id)
            txn = open_txns[index]
            version = store.install(key, {"v": value}, txn)
            existing = [v for v in uncommitted[key] if v.writer == txn.txn_id]
            if existing:
                assert version is existing[0]
            else:
                uncommitted[key].append(version)
                writes[txn.txn_id].append(version)
        elif kind == "commit":
            _, slot, timestamp = op
            if not open_txns:
                continue
            txn = open_txns.pop(slot % len(open_txns))
            ts = float(timestamp) if timestamp is not None else None
            store.commit_transaction(txn, timestamp=ts)
            for version in writes.pop(txn.txn_id):
                uncommitted[version.key].remove(version)
                committed[version.key].append(version)
        elif kind == "abort":
            _, slot = op
            if not open_txns:
                continue
            txn = open_txns.pop(slot % len(open_txns))
            store.abort_transaction(txn)
            for version in writes.pop(txn.txn_id):
                uncommitted[version.key].remove(version)
        elif kind == "load":
            _, key, value = op
            version = store.load(key, {"v": value})
            committed[key].append(version)
        elif kind == "prune":
            _, key, keep_last = op
            if not committed[key]:
                continue
            store.prune(key, keep_last=keep_last)
            committed[key] = committed[key][-keep_last:]
        elif kind == "prune_epochs":
            (_, max_epoch) = op
            store.prune_epochs(max_epoch)
            for key, chain in committed.items():
                if len(chain) <= 1:
                    continue
                committed[key] = [
                    v for v in chain[:-1] if v.epoch > max_epoch
                ] + chain[-1:]

        # -- invariants after every operation ------------------------------
        for key in KEYS:
            chain = committed[key]
            got_chain = store.committed_versions(key)
            assert len(got_chain) == len(chain)
            assert all(a is b for a, b in zip(got_chain, chain))
            latest = store.latest_committed(key)
            assert latest is (chain[-1] if chain else None)
            got_uncommitted = store.uncommitted_versions(key)
            assert len(got_uncommitted) == len(uncommitted[key])
            assert all(a is b for a, b in zip(got_uncommitted, uncommitted[key]))
            for timestamp in PROBE_TIMESTAMPS:
                for strict in (True, False):
                    assert store.latest_committed_before(
                        key, timestamp, strict=strict
                    ) is _naive_latest_before(chain, timestamp, strict)
            for writer in seen_writers:
                assert store.version_by_writer(key, writer) is _naive_version_by_writer(
                    uncommitted[key], chain, writer
                )
                own = store.own_uncommitted(key, writer)
                naive_own = next(
                    (v for v in reversed(uncommitted[key]) if v.writer == writer),
                    None,
                )
                assert own is naive_own


@given(
    timestamps=st.lists(st.integers(0, 8), min_size=1, max_size=12),
    probe=st.integers(0, 9),
)
def test_bisect_matches_naive_on_sorted_chains(timestamps, probe):
    """Monotone chains (the bisect fast path) with duplicate timestamps."""
    store = MultiVersionStore()
    chain = []
    for index, ts in enumerate(sorted(timestamps)):
        txn = Transaction(txn_id=index + 1, txn_type="t")
        store.install(("k",), {"v": index}, txn)
        store.commit_transaction(txn, timestamp=float(ts))
        chain.append(store.latest_committed(("k",)))
    for strict in (True, False):
        assert store.latest_committed_before(
            ("k",), float(probe), strict=strict
        ) is _naive_latest_before(chain, float(probe), strict)


def test_newest_committed_survives_prune_cycles():
    """Explicit regression: prune/prune_epochs always keep the newest version."""
    store = MultiVersionStore()
    for index in range(6):
        txn = Transaction(txn_id=index + 1, txn_type="t")
        txn.gc_epoch = index
        store.install(("k",), {"v": index}, txn)
        store.commit_transaction(txn, timestamp=float(index))
    assert store.prune(("k",), keep_last=3) == 3
    assert store.latest_committed(("k",)).value == {"v": 5}
    assert store.prune_epochs(max_epoch=10) == 2
    assert store.latest_committed(("k",)).value == {"v": 5}
    assert store.latest_committed_before(("k",), 100.0).value == {"v": 5}
