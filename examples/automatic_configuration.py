"""Automatic configuration demo (Chapter 5).

Run with::

    python examples/automatic_configuration.py

Starting from the paper's initial configuration (SSI separating a read-only
group from a single 2PL update group, Figure 5.2), the iterative algorithm
profiles the workload, finds the bottleneck conflict edge, proposes localized
CC-tree rewrites and keeps the best-performing one.
"""

from repro.autoconf import AutoConfigurator, initial_configuration
from repro.workloads.tpcc import TPCCWorkload


def main():
    workload = TPCCWorkload(warehouses=2)
    start = initial_configuration(workload)
    print("initial configuration (Figure 5.2):")
    print(start.describe())
    print()

    configurator = AutoConfigurator(
        workload,
        clients=50,
        duration=0.8,
        warmup=0.3,
        max_iterations=3,
    )
    result = configurator.run(starting_configuration=start)
    print(result.describe())


if __name__ == "__main__":
    main()
