"""Quickstart: build a hierarchical MCC database and run a few transactions.

Run with::

    python examples/quickstart.py

The example builds the paper's three-layer TPC-C tree (SSI over a read-only
group and a 2PL-federated pair of runtime-pipelining groups), executes a few
transactions directly, and checks that the committed history is serializable.
"""

from repro import Database
from repro.harness import configs
from repro.workloads.tpcc import TPCCWorkload


def main():
    workload = TPCCWorkload(warehouses=2)
    configuration = configs.tpcc_tebaldi_3layer()
    db = Database(workload, configuration)

    print("CC tree in use:")
    print(db.describe_configuration())
    print()

    # Place an order for customer 7 of district 3 in warehouse 1.
    order = db.execute(
        "new_order",
        w_id=1,
        d_id=3,
        c_id=7,
        items=[(10, 1, 2), (25, 1, 1), (99, 1, 5)],
    )
    print(f"new_order committed: o_id={order['o_id']} total=${order['total']}")

    # Pay against the same district, then check the order status.
    db.execute("payment", w_id=1, d_id=3, c_w_id=1, c_d_id=3, c_id=7, h_amount=42.0)
    status = db.execute("order_status", w_id=1, d_id=3, c_id=7)
    print(
        "order_status sees the order:",
        status["order"] is not None,
        f"({len(status['lines'])} order lines)",
    )

    # Run the read-only analytics transaction.
    low_stock = db.execute("stock_level", w_id=1, d_id=3, threshold=80)
    print("stock_level low-stock items:", low_stock["low_stock"])

    report = db.check_serializability()
    print()
    print("isolation check:", report.describe())


if __name__ == "__main__":
    main()
