"""SEATS with per-flight TSO instances (Section 4.6.2 / Table 5.1).

Run with::

    python examples/seats_per_flight.py

The example compares three CC trees for the SEATS airline workload: monolithic
2PL, the two-layer SSI+2PL tree, and the three-layer tree whose reservation
group runs one timestamp-ordering instance per flight (partition-by-instance).
"""

from repro.harness import configs
from repro.harness.report import format_run_results
from repro.harness.runner import run_benchmark
from repro.workloads.seats import SEATSWorkload


def main(clients=80, duration=1.0, warmup=0.3):
    candidates = {
        "monolithic 2PL": configs.seats_monolithic_2pl(),
        "2-layer (SSI + 2PL)": configs.seats_2layer(),
        "3-layer (SSI + 2PL + per-flight TSO)": configs.seats_3layer(per_flight=True),
    }
    results = []
    for label, configuration in candidates.items():
        workload = SEATSWorkload(flights=10)
        result = run_benchmark(
            workload, configuration, clients=clients, duration=duration, warmup=warmup
        )
        print(f"{label:40s} {result.throughput:8.0f} txn/s")
        results.append(result)
    print()
    print(format_run_results(results))


if __name__ == "__main__":
    main()
