"""Compare CC configurations on TPC-C (a miniature version of Figure 4.7).

Run with::

    python examples/tpcc_comparison.py [clients]

For every configuration of the paper's TPC-C evaluation (monolithic 2PL and
SSI, the two Callas groupings and Tebaldi's two- and three-layer trees) the
script measures closed-loop throughput on the simulated cluster and prints a
comparison table.
"""

import sys

from repro.harness import configs
from repro.harness.report import format_run_results
from repro.harness.runner import run_benchmark
from repro.workloads.tpcc import TPCCWorkload


def main(clients=80, duration=1.0, warmup=0.3):
    results = []
    for name, factory in configs.TPCC_CONFIGURATIONS.items():
        workload = TPCCWorkload(warehouses=2)
        result = run_benchmark(
            workload, factory(), clients=clients, duration=duration, warmup=warmup
        )
        print(f"measured {name}: {result.throughput:.0f} txn/s")
        results.append(result)
    print()
    print(format_run_results(results))
    best = max(results, key=lambda r: r.throughput)
    print(f"\nbest configuration: {best.configuration}")


if __name__ == "__main__":
    main(clients=int(sys.argv[1]) if len(sys.argv) > 1 else 80)
