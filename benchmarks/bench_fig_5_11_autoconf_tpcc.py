"""Figures 5.11-5.13 — automatic configuration on TPC-C.

Paper: starting from the initial configuration (Figure 5.2), the iterative
algorithm reaches a configuration that retains most of the manually tuned
tree's benefit, well above the starting point.
"""

from common import print_rows, tpcc_workload
from repro.autoconf import AutoConfigurator, initial_configuration
from repro.harness import configs
from repro.harness.runner import run_benchmark

CLIENTS = 50


def run_experiment():
    workload = tpcc_workload()
    manual = run_benchmark(
        tpcc_workload(), configs.tpcc_tebaldi_3layer(), clients=CLIENTS, duration=0.8, warmup=0.3
    )
    configurator = AutoConfigurator(
        workload, clients=CLIENTS, duration=0.5, warmup=0.2, max_iterations=1
    )
    outcome = configurator.run()
    rows = [
        {"configuration": "initial (Figure 5.2)", "throughput (txn/s)": f"{outcome.initial_throughput:.0f}"},
        {"configuration": "automatic (final)", "throughput (txn/s)": f"{outcome.final_throughput:.0f}"},
        {"configuration": "manual 3-layer (Figure 5.12)", "throughput (txn/s)": f"{manual.throughput:.0f}"},
    ]
    print_rows("Figure 5.11: automatic configuration on TPC-C", rows,
               ["configuration", "throughput (txn/s)"])
    print(outcome.describe())
    return outcome, manual


def test_fig_5_11(benchmark):
    outcome, manual = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # The automatic configuration never loses to the configuration it started
    # from, and stays within reach of the manual tree.
    assert outcome.final_throughput >= outcome.initial_throughput * 0.9
    assert outcome.final_throughput > 0.3 * manual.throughput
