"""Figure 5.5 — the latency-based profiling baseline misses the bottleneck.

Paper: under the RP/2PL tree of Figure 5.4, only payment's latency inflates
as load grows, so Callas' latency-based technique blames payment<->payment,
while the true bottleneck is the payment/stock_level conflict — which the
blocking-time profiler (Section 5.3.2) identifies correctly.
"""

from common import print_rows, tpcc_workload
from repro.autoconf.profiler import ContentionProfiler, LatencyProfiler
from repro.core.config import Configuration, leaf, node
from repro.harness.runner import run_benchmark

MIX = {"payment": 0.48, "stock_level": 0.48, "new_order": 0.02, "delivery": 0.01, "order_status": 0.01}


def figure_5_4_configuration():
    return Configuration(
        node(
            "2pl",
            leaf("rp", "payment", "new_order", "delivery"),
            leaf("none", "stock_level", "order_status"),
        ),
        name="figure-5.4",
    )


def run_experiment():
    latency_profiler = LatencyProfiler()
    contention = None
    for label, clients in (("low", 10), ("high", 90)):
        profiler = ContentionProfiler()
        result = run_benchmark(
            tpcc_workload(),
            figure_5_4_configuration(),
            clients=clients,
            duration=0.8,
            warmup=0.3,
            mix=MIX,
            profiler=profiler,
        )
        latency_profiler.record(label, {
            "per_type": result.per_type,
        })
        if label == "high":
            contention = profiler
    suspected = latency_profiler.suspected_bottlenecks("low", "high", threshold=1.5)
    bottleneck = contention.bottleneck_edge()
    rows = [
        {"technique": "latency-based (Callas)", "verdict": ", ".join(suspected) or "(none)"},
        {
            "technique": "blocking-time profiler (Tebaldi)",
            "verdict": " <-> ".join(bottleneck[0]) if bottleneck else "(none)",
        },
    ]
    print_rows("Figure 5.5: profiling techniques compared", rows, ["technique", "verdict"])
    return suspected, bottleneck


def test_fig_5_5(benchmark):
    suspected, bottleneck = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # The blocking-time profiler must identify a conflict edge that involves
    # stock_level (the true culprit the latency technique tends to miss).
    assert bottleneck is not None
    assert "stock_level" in bottleneck[0] or "payment" in bottleneck[0]
