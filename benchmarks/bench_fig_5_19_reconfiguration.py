"""Figures 5.18-5.19 — cost of the two reconfiguration protocols.

Paper: the partial restart drains the whole database and causes a visible
throughput dip, while the online update only pauses the transaction types
whose subtree changes and barely disturbs the rest of the workload.
"""

from common import print_rows, tpcc_workload
from repro.autoconf.reconfigure import ReconfigurationDriver
from repro.harness import configs
from repro.harness.runner import BenchmarkRunner

CLIENTS = 50


def run_protocol(protocol):
    runner = BenchmarkRunner(tpcc_workload(), configs.tpcc_tebaldi_2layer())
    runner.add_clients(CLIENTS)
    runner.env.run(until=0.6)
    runner.engine.stats.reset()
    driver = ReconfigurationDriver(runner.engine)
    outcomes = []

    def scenario():
        yield runner.env.timeout(0.3)
        outcome = yield from driver.switch(configs.tpcc_tebaldi_3layer(), protocol=protocol)
        outcomes.append(outcome)

    runner.env.process(scenario())
    runner.env.run(until=runner.env.now + 1.0)
    result = runner.result(CLIENTS, 1.0)
    runner.stop()
    return outcomes[0], result


def run_experiment():
    rows = []
    data = {}
    for protocol in ("partial-restart", "online"):
        outcome, result = run_protocol(protocol)
        data[protocol] = (outcome, result)
        rows.append(
            {
                "protocol": protocol,
                "switch duration (ms)": f"{outcome.duration * 1000:.1f}",
                "throughput during run (txn/s)": f"{result.throughput:.0f}",
            }
        )
    print_rows(
        "Figure 5.19: reconfiguration protocols",
        rows,
        ["protocol", "switch duration (ms)", "throughput during run (txn/s)"],
    )
    return data


def test_fig_5_19(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for protocol, (outcome, result) in data.items():
        # Both protocols finish and the system keeps committing afterwards.
        assert outcome.duration >= 0.0
        assert result.throughput > 0
