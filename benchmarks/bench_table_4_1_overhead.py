"""Table 4.1 — latency and throughput cost of additional CC layers.

Paper (conflict-free writes): adding a 2PL layer over stand-alone RP costs
+3.3% latency / -21% peak throughput, an SSI layer +9.8% / -25%, and another
RP layer +36.3% / -40%.
"""

from common import measure, print_rows
from repro.core.config import Configuration, leaf, monolithic, node
from repro.workloads.micro import NoConflictWorkload

LATENCY_CLIENTS = 5
THROUGHPUT_CLIENTS = 60


def configurations():
    return {
        "stand-alone RP": monolithic("rp", ("write_only",)),
        "2PL - RP": Configuration(node("2pl", leaf("rp", "write_only")), name="2pl-rp"),
        "SSI - RP": Configuration(node("ssi", leaf("rp", "write_only")), name="ssi-rp"),
        "RP - RP": Configuration(node("rp", leaf("rp", "write_only")), name="rp-rp"),
    }


def run_table():
    results = {}
    rows = []
    for label, config in configurations().items():
        latency_run = measure(
            NoConflictWorkload(), config, clients=LATENCY_CLIENTS, duration=0.4, warmup=0.1
        )
        throughput_run = measure(
            NoConflictWorkload(), config, clients=THROUGHPUT_CLIENTS, duration=0.25, warmup=0.1
        )
        results[label] = (latency_run, throughput_run)
        rows.append(
            {
                "setting": label,
                "latency (ms)": f"{latency_run.mean_latency * 1000:.3f}",
                "throughput (txn/s)": f"{throughput_run.throughput:.0f}",
            }
        )
    print_rows(
        "Table 4.1: cost of additional CC layers",
        rows,
        ["setting", "latency (ms)", "throughput (txn/s)"],
    )
    return results


def test_table_4_1(benchmark):
    results = benchmark.pedantic(run_table, rounds=1, iterations=1)
    baseline_latency = results["stand-alone RP"][0].mean_latency
    # Every additional layer adds latency; the cheap 2PL layer adds the least
    # and the RP layer (one extra round-trip per operation) adds the most.
    assert results["2PL - RP"][0].mean_latency >= baseline_latency * 0.95
    assert results["RP - RP"][0].mean_latency > results["2PL - RP"][0].mean_latency
    assert results["SSI - RP"][0].mean_latency >= results["2PL - RP"][0].mean_latency * 0.98
