"""Figure 5.17 — overhead of the contention profiler.

Paper: collecting and analysing blocking events costs only a few percent of
throughput, so the profiler can stay on in production.
"""

from common import RESULT_HEADERS, TPCC_CLIENTS, measure, print_rows, result_row, tpcc_workload
from repro.autoconf.profiler import ContentionProfiler
from repro.harness import configs


def run_experiment():
    results = {}
    rows = []
    for label, profiler in (("profiling OFF", None), ("profiling ON", ContentionProfiler())):
        result = measure(
            tpcc_workload(),
            configs.tpcc_tebaldi_3layer(),
            clients=TPCC_CLIENTS,
            profiler=profiler,
        )
        results[label] = result
        rows.append(result_row(label, result))
    print_rows("Figure 5.17: profiler overhead", rows, RESULT_HEADERS)
    return results


def test_fig_5_17(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert results["profiling ON"].throughput > 0.7 * results["profiling OFF"].throughput
