"""Section 4.6.3 — extensibility: adding the hot_item transaction.

Paper: keeping hot_item inside the new_order/payment RP group yields
16,417 txn/s; giving it its own group under a cross-group RP node (four
layers) yields 23,232 txn/s (+42%).
"""

from common import RESULT_HEADERS, TPCC_CLIENTS, measure, print_rows, result_row, tpcc_workload
from repro.harness import configs
from repro.workloads.tpcc import TPCC_HOT_ITEM_MIX


def run_experiment():
    results = {}
    rows = []
    for label, factory in (
        ("3-layer (hot_item with new_order/payment)", configs.tpcc_hot_item_3layer),
        ("4-layer (hot_item in its own group)", configs.tpcc_hot_item_4layer),
    ):
        workload = tpcc_workload(include_hot_item=True)
        result = measure(
            workload, factory(), clients=TPCC_CLIENTS, mix=TPCC_HOT_ITEM_MIX
        )
        results[label] = result
        rows.append(result_row(label, result))
    print_rows("Section 4.6.3: extensibility with hot_item", rows, RESULT_HEADERS)
    return results


def test_extensibility(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Both configurations must sustain the extended workload.
    for result in results.values():
        assert result.throughput > 0
