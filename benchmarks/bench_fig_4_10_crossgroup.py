"""Figure 4.10 — which cross-group CC suits which conflict pattern.

Paper: SSI wins for read-write cross-group conflicts, runtime pipelining wins
for medium/high write-write contention (ww-5, ww-10), plain 2PL wins when
write-write conflicts are rare (ww-1); no single cross-group CC wins
everywhere.
"""

from functools import partial

from common import deferred_measure, measure_keyed, print_rows
from repro.core.config import Configuration, leaf, node
from repro.workloads.micro import CrossGroupConflictWorkload

CLIENTS = 80
CROSS_CCS = ("2pl", "ssi", "rp")
WORKLOADS = {
    "rw-1": dict(shared_rows=100, read_only_second_group=True),
    "rw-10": dict(shared_rows=10, read_only_second_group=True),
    "ww-1": dict(shared_rows=100, read_only_second_group=False),
    "ww-10": dict(shared_rows=10, read_only_second_group=False),
}


def build_config(cross_cc, read_only):
    second = leaf("none", "group_b_read") if read_only else leaf("rp", "group_b_update")
    return Configuration(
        node(cross_cc, leaf("rp", "group_a_update"), second),
        name=f"crossgroup-{cross_cc}",
    )


def run_figure():
    results = measure_keyed(
        (
            (workload_name, cross_cc),
            deferred_measure(
                partial(CrossGroupConflictWorkload, **params),
                partial(build_config, cross_cc, params["read_only_second_group"]),
                CLIENTS,
                duration=0.6,
                warmup=0.2,
            ),
        )
        for workload_name, params in WORKLOADS.items()
        for cross_cc in CROSS_CCS
    )
    rows = []
    for workload_name in WORKLOADS:
        row = {"workload": workload_name}
        for cross_cc in CROSS_CCS:
            row[cross_cc] = f"{results[(workload_name, cross_cc)].throughput:.0f}"
        rows.append(row)
    print_rows(
        "Figure 4.10: cross-group CC throughput (txn/s)",
        rows,
        ["workload"] + list(CROSS_CCS),
    )
    return results


def test_fig_4_10(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    # SSI handles cross-group read-write conflicts best.
    assert results[("rw-10", "ssi")].throughput > results[("rw-10", "2pl")].throughput
    # RP handles heavy cross-group write-write contention better than SSI.
    assert results[("ww-10", "rp")].throughput > results[("ww-10", "ssi")].throughput
    # No single winner: the ww-10 winner is not the rw-10 winner.
    ww_winner = max(CROSS_CCS, key=lambda cc: results[("ww-10", cc)].throughput)
    rw_winner = max(CROSS_CCS, key=lambda cc: results[("rw-10", cc)].throughput)
    assert ww_winner != rw_winner
