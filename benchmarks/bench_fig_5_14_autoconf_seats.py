"""Figures 5.14-5.16 — automatic configuration on SEATS.

Paper: the algorithm separates the reservation transactions from the rest and
(with partition-by-instance preprocessing) approaches the manually designed
per-flight TSO configuration.
"""

from common import print_rows, seats_workload
from repro.autoconf import AutoConfigurator
from repro.harness import configs
from repro.harness.runner import run_benchmark

CLIENTS = 50


def run_experiment():
    workload = seats_workload()
    manual = run_benchmark(
        seats_workload(), configs.seats_3layer(), clients=CLIENTS, duration=0.8, warmup=0.3
    )
    instance_keys = {
        name: (lambda args: args.get("f_id"))
        for name in ("new_reservation", "delete_reservation", "update_reservation")
    }
    configurator = AutoConfigurator(
        workload,
        clients=CLIENTS,
        duration=0.6,
        warmup=0.2,
        max_iterations=1,
        instance_keys=instance_keys,
    )
    outcome = configurator.run()
    rows = [
        {"configuration": "initial (Figure 5.2)", "throughput (txn/s)": f"{outcome.initial_throughput:.0f}"},
        {"configuration": "automatic (final)", "throughput (txn/s)": f"{outcome.final_throughput:.0f}"},
        {"configuration": "manual 3-layer (Figure 5.15)", "throughput (txn/s)": f"{manual.throughput:.0f}"},
    ]
    print_rows("Figure 5.14: automatic configuration on SEATS", rows,
               ["configuration", "throughput (txn/s)"])
    print(outcome.describe())
    return outcome, manual


def test_fig_5_14(benchmark):
    outcome, manual = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert outcome.final_throughput >= outcome.initial_throughput * 0.9
    assert outcome.final_throughput > 0.3 * manual.throughput
