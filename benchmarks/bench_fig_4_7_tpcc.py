"""Figure 4.7 — TPC-C throughput for every CC configuration.

Paper (10 warehouses, up to 10k clients): 2PL is the weakest baseline, SSI
peaks ~7x higher but degrades under write-write contention, Callas-1 <
Callas-2 < Tebaldi 2-layer < Tebaldi 3-layer, with the 3-layer tree the best
overall.
"""

from common import (
    RESULT_HEADERS,
    deferred_measure,
    measure_keyed,
    print_rows,
    result_row,
    tpcc_workload,
)
from repro.harness import configs

CLIENT_COUNTS = (40, 100)


def run_figure():
    results = measure_keyed(
        ((name, clients), deferred_measure(tpcc_workload, factory, clients))
        for clients in CLIENT_COUNTS
        for name, factory in configs.TPCC_CONFIGURATIONS.items()
    )
    rows = [
        result_row(f"{name} @ {clients} clients", result)
        for (name, clients), result in results.items()
    ]
    print_rows("Figure 4.7: TPC-C throughput by configuration", rows, RESULT_HEADERS)
    return results


def test_fig_4_7(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    high = CLIENT_COUNTS[-1]
    best_mcc = max(
        results[(name, high)].throughput
        for name in ("callas-1", "callas-2", "tebaldi-2layer", "tebaldi-3layer")
    )
    # Shape: hierarchical MCC beats the monolithic 2PL baseline at high
    # contention, and the 3-layer tree beats 2PL by a clear margin.
    assert best_mcc > results[("2pl", high)].throughput
    assert results[("tebaldi-3layer", high)].throughput > results[("2pl", high)].throughput
