"""Deterministic batch execution under zipfian contention (extensibility).

The deterministic batch mechanism (BOHM/DGCC-style: sequence, pre-declare
version slots, execute over the dependency graph) is a post-paper member of
the CC tree; this sweep shows the niche it fills.  On the YCSB update mix
with a zipfian key distribution, lock- and timestamp-based trees degrade as
skew grows — 2PL convoys on the hot keys, SSI/OCC burn work on aborts, TSO
serialises commits — while the batch group keeps a zero abort rate and
commits independent members concurrently, so at aggressive theta it wins
outright.
"""

from functools import partial

from common import deferred_measure, measure_keyed, print_rows
from repro.core.config import Configuration, leaf, monolithic
from repro.harness.configs import YCSB_TRANSACTIONS
from repro.workloads.ycsb import YCSBWorkload

CLIENTS = 64
RECORDS = 100
THETAS = (0.6, 0.9, 0.99)
BASELINES = ("2pl", "ssi", "occ", "tso")


def batch_config():
    # Small window / medium batches: at these arrival rates batches fill by
    # size, so the window only bounds the tail latency of a straggler seal.
    return Configuration(
        leaf(
            "batch",
            *YCSB_TRANSACTIONS,
            params={"batch_size": 16, "batch_window": 0.002},
        ),
        name="ycsb-batch-tuned",
    )


def configurations():
    configs = {cc: partial(monolithic, cc, YCSB_TRANSACTIONS) for cc in BASELINES}
    configs["batch"] = batch_config
    return configs


def run_figure():
    configs = configurations()
    results = measure_keyed(
        (
            (theta, label),
            deferred_measure(
                partial(
                    YCSBWorkload,
                    records=RECORDS,
                    profile="a",
                    distribution="zipfian",
                    zipf_theta=theta,
                ),
                config_factory,
                CLIENTS,
                duration=0.6,
                warmup=0.2,
            ),
        )
        for theta in THETAS
        for label, config_factory in configs.items()
    )
    labels = list(configs)
    rows = []
    for theta in THETAS:
        row = {"zipf theta": f"{theta:.2f}"}
        for label in labels:
            point = results[(theta, label)]
            row[label] = f"{point.throughput:.0f} ({point.abort_rate:.0%})"
        rows.append(row)
    print_rows(
        "Deterministic batch vs baselines, YCSB-A zipfian (txn/s, abort rate)",
        rows,
        ["zipf theta"] + labels,
    )
    return results


def test_batch_zipf_contention(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    hot = max(THETAS)
    # At aggressive skew the batch group beats the pessimistic trees: the
    # sequencer replaces the hot-key lock queue (2PL) and the serial
    # timestamp commit order (TSO).
    assert results[(hot, "batch")].throughput > results[(hot, "2pl")].throughput
    assert results[(hot, "batch")].throughput > results[(hot, "tso")].throughput
    # Determinism means contention never turns into aborts, at any skew.
    for theta in THETAS:
        assert results[(theta, "batch")].abort_rate == 0.0
