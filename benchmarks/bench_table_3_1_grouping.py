"""Table 3.1 — impact of grouping new_order and stock_level on throughput.

Paper: same group 3,207 txn/s; separate groups with RP's deadlock-prone
ordering 158 txn/s; separate groups without deadlocks 3,598 txn/s; separate
groups with artificially disjoint warehouses 23,834 txn/s.
"""

from common import (
    DURATION,
    RESULT_HEADERS,
    TPCC_CLIENTS,
    WARMUP,
    measure,
    print_rows,
    result_row,
    tpcc_workload,
)
from repro.harness import configs


SETTINGS = [
    ("same group (RP)", configs.grouping_same_group, {}),
    ("separate - deadlock-prone order", configs.grouping_separate, {"deadlock_prone_new_order": True}),
    ("separate - no deadlock", configs.grouping_separate, {}),
    ("separate - no conflict (disjoint warehouses)", configs.grouping_separate, {"disjoint_warehouses": True}),
]

MIX = {"new_order": 0.48, "stock_level": 0.48, "payment": 0.02, "delivery": 0.01, "order_status": 0.01}


def run_table():
    rows = []
    results = {}
    for label, config_factory, workload_kwargs in SETTINGS:
        workload = tpcc_workload(warehouses=4, **workload_kwargs)
        result = measure(workload, config_factory(), clients=TPCC_CLIENTS, mix=MIX)
        rows.append(result_row(label, result))
        results[label] = result
    print_rows("Table 3.1: impact of grouping on throughput", rows, RESULT_HEADERS)
    return results


def test_table_3_1(benchmark):
    results = benchmark.pedantic(run_table, rounds=1, iterations=1)
    # Shape: the deadlock-prone separation is the worst option and the
    # artificially conflict-free separation is the best one.
    deadlock = results["separate - deadlock-prone order"].throughput
    no_conflict = results["separate - no conflict (disjoint warehouses)"].throughput
    no_deadlock = results["separate - no deadlock"].throughput
    assert deadlock <= no_deadlock
    assert no_conflict >= no_deadlock
