"""Wall-clock speed benchmark: simulated transactions per wall-second.

Unlike the `bench_fig_*` / `bench_table_*` scripts, which reproduce the
*shape* of the paper's results in virtual time, this benchmark measures how
fast the simulator itself runs on real hardware.  It is the baseline every
perf-oriented PR is measured against (ROADMAP: "as fast as the hardware
allows").

Three representative scenarios are timed:

* ``tpcc-3layer``   — TPC-C under the Tebaldi 3-layer tree (Figure 4.6d),
* ``seats-3layer``  — SEATS under the 3-layer per-flight tree (Figure 4.8),
* ``micro-2layer``  — the cross-group micro workload under a 2-layer tree.

For each scenario the benchmark runs a closed-loop simulation for a fixed
span of *virtual* time and reports ``commits / wall_seconds`` (simulated
committed transactions per wall-clock second, best of ``--repeat`` runs).

The script maintains ``BENCH_speed.json`` at the repository root:

* ``--record-baseline`` stores the measurements *and* a fixed-seed behavior
  fingerprint as the baseline (run this once before an optimisation lands);
* a plain run stores the measurements as ``current``, computes the
  ``speedup`` ratio per scenario against the recorded baseline, and **fails**
  if the behavior fingerprint (commit/abort counts and final store state of
  deterministic micro runs) differs from the baseline — a speedup that
  changes simulation outcomes is a bug, not an optimisation;
* ``--quick`` is a fast CI smoke: tiny runs plus the fingerprint check
  against the stored baseline, with no JSON rewrite;
* ``--profile [SCENARIO]`` runs one scenario (default ``tpcc-3layer``)
  under cProfile and dumps the stats to ``--profile-out`` (default
  ``bench_speed.prof``), so perf work starts from data instead of guesses
  (inspect with ``python -m pstats bench_speed.prof`` or snakeviz).

Usage::

    PYTHONPATH=src python benchmarks/bench_speed.py --record-baseline
    PYTHONPATH=src python benchmarks/bench_speed.py
    PYTHONPATH=src python benchmarks/bench_speed.py --quick
    PYTHONPATH=src python benchmarks/bench_speed.py --profile micro-2layer
"""

import argparse
import cProfile
import hashlib
import json
import pstats
import sys
import time
from pathlib import Path

from repro.core.config import Configuration, leaf, monolithic, node
from repro.core.engine import EngineOptions
from repro.harness.configs import seats_3layer, tpcc_tebaldi_3layer
from repro.harness.runner import BenchmarkRunner
from repro.workloads.micro import CrossGroupConflictWorkload
from repro.workloads.seats import SEATSWorkload
from repro.workloads.tpcc import TPCCWorkload

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_speed.json"

FINGERPRINT_SEED = 1234
FINGERPRINT_DURATION = 2.0
QUICK_FINGERPRINT_DURATION = 0.5


def micro_2layer_config():
    return Configuration(
        node(
            "2pl",
            leaf("rp", "group_a_update"),
            leaf("rp", "group_b_update"),
        ),
        name="micro-2layer",
    )


def micro_ssi_config():
    return monolithic("ssi", ("group_a_update", "group_b_update"), name="micro-ssi")


def _scenarios(quick=False):
    """name -> (workload factory, configuration factory, clients, duration, warmup)."""
    scale = 0.25 if quick else 1.0
    return {
        "tpcc-3layer": (
            lambda: TPCCWorkload(warehouses=2),
            tpcc_tebaldi_3layer,
            40,
            1.0 * scale,
            0.2 * scale,
        ),
        "seats-3layer": (
            lambda: SEATSWorkload(flights=10),
            seats_3layer,
            40,
            1.0 * scale,
            0.2 * scale,
        ),
        "micro-2layer": (
            lambda: CrossGroupConflictWorkload(shared_rows=20, cold_rows=1000, operations=5),
            micro_2layer_config,
            40,
            1.0 * scale,
            0.2 * scale,
        ),
    }


def measure_scenario(name, spec, repeat=3):
    """Best-of-``repeat`` wall-clock measurement of one scenario."""
    workload_factory, config_factory, clients, duration, warmup = spec
    best = None
    for _ in range(repeat):
        runner = BenchmarkRunner(
            workload_factory(), config_factory(), options=EngineOptions(), seed=7
        )
        try:
            start = time.perf_counter()
            result = runner.run(clients, duration=duration, warmup=warmup)
            wall = time.perf_counter() - start
        finally:
            runner.stop()
        sample = {
            "clients": clients,
            "sim_duration": duration,
            "commits": result.commits,
            "aborts": result.aborts,
            "wall_seconds": round(wall, 4),
            "sim_tps_wall": round(result.commits / wall, 1) if wall > 0 else 0.0,
        }
        if best is None or sample["sim_tps_wall"] > best["sim_tps_wall"]:
            best = sample
    return best


def behavior_fingerprint(seed=FINGERPRINT_SEED, duration=FINGERPRINT_DURATION):
    """Deterministic outcome digest of fixed-seed micro workload runs.

    The simulation is fully deterministic for a fixed seed, so the committed
    and aborted counts and the final store state must be bit-identical across
    pure performance optimisations.  Two configurations are fingerprinted:
    the 2-layer 2PL/RP tree (lock waits, pipelining) and monolithic SSI
    (write-write and pivot aborts), so both commit and abort paths are pinned.
    """
    runs = {}
    for label, config_factory in (
        ("2layer", micro_2layer_config),
        ("ssi", micro_ssi_config),
    ):
        workload = CrossGroupConflictWorkload(
            shared_rows=10, cold_rows=200, operations=5
        )
        runner = BenchmarkRunner(
            workload, config_factory(), options=EngineOptions(), seed=seed
        )
        try:
            runner.run(20, duration=duration, warmup=0.0)
        finally:
            runner.stop()
        state = runner.store.latest_state()
        canonical = json.dumps(
            sorted((repr(key), repr(value)) for key, value in state.items())
        ).encode()
        runs[label] = {
            "commits": runner.engine.stats.commits,
            "aborts": runner.engine.stats.aborts,
            "state_sha256": hashlib.sha256(canonical).hexdigest(),
        }
    return {"seed": seed, "sim_duration": duration, "runs": runs}


def profile_scenario(name, spec, output_path):
    """Run one scenario under cProfile and dump the stats to a file."""
    workload_factory, config_factory, clients, duration, warmup = spec
    runner = BenchmarkRunner(
        workload_factory(), config_factory(), options=EngineOptions(), seed=7
    )
    profiler = cProfile.Profile()
    try:
        profiler.enable()
        result = runner.run(clients, duration=duration, warmup=warmup)
        profiler.disable()
    finally:
        runner.stop()
    profiler.dump_stats(output_path)
    print(f"{name}: {result.commits} commits; profile written to {output_path}")
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(15)
    return result


def load_report():
    if OUTPUT_PATH.exists():
        with OUTPUT_PATH.open() as handle:
            return json.load(handle)
    return {}


def _check_fingerprint(stored, current, label):
    if stored is None:
        print(f"no stored {label} fingerprint; record a baseline first")
        return True
    if stored != current:
        print("FAIL: behavior fingerprint drifted from the recorded baseline", file=sys.stderr)
        print(f"  baseline: {stored}", file=sys.stderr)
        print(f"  current:  {current}", file=sys.stderr)
        return False
    print("behavior fingerprint OK (identical to baseline)")
    return True


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="store this run's measurements + fingerprint as the baseline",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fast CI smoke: tiny runs + fingerprint check, no JSON rewrite",
    )
    parser.add_argument("--repeat", type=int, default=3, help="runs per scenario (best-of)")
    parser.add_argument(
        "--profile",
        nargs="?",
        const="tpcc-3layer",
        choices=sorted(_scenarios()),
        metavar="SCENARIO",
        help="cProfile one scenario (default tpcc-3layer) and dump the stats",
    )
    parser.add_argument(
        "--profile-out",
        default=str(REPO_ROOT / "bench_speed.prof"),
        help="where --profile writes its stats file",
    )
    args = parser.parse_args(argv)

    if args.profile:
        profile_scenario(args.profile, _scenarios()[args.profile], args.profile_out)
        return 0

    quick = args.quick
    repeat = 1 if quick else args.repeat
    scenarios = _scenarios(quick=quick)

    results = {}
    for name, spec in scenarios.items():
        results[name] = measure_scenario(name, spec, repeat=repeat)
        print(
            f"{name:>14}: {results[name]['sim_tps_wall']:>9.1f} sim-txn/s (wall) "
            f"[{results[name]['commits']} commits in {results[name]['wall_seconds']:.2f}s]"
        )

    report = load_report()

    if quick:
        fingerprint = behavior_fingerprint(duration=QUICK_FINGERPRINT_DURATION)
        stored = report.get("baseline", {}).get("behavior_fingerprint_quick")
        return 0 if _check_fingerprint(stored, fingerprint, "quick") else 1

    fingerprint = behavior_fingerprint(duration=FINGERPRINT_DURATION)
    fingerprint_quick = behavior_fingerprint(duration=QUICK_FINGERPRINT_DURATION)
    for label, run in fingerprint["runs"].items():
        print(
            f"   fingerprint[{label}]: commits={run['commits']} aborts={run['aborts']} "
            f"state={run['state_sha256'][:12]}..."
        )

    entry = {
        "scenarios": results,
        "behavior_fingerprint": fingerprint,
        "behavior_fingerprint_quick": fingerprint_quick,
    }
    report["benchmark"] = "bench_speed"
    report["unit"] = "simulated committed transactions per wall-clock second"
    if args.record_baseline or "baseline" not in report:
        report["baseline"] = entry
    report["current"] = entry
    baseline = report["baseline"]["scenarios"]
    report["speedup"] = {
        name: round(results[name]["sim_tps_wall"] / baseline[name]["sim_tps_wall"], 2)
        for name in results
        if name in baseline and baseline[name]["sim_tps_wall"] > 0
    }
    with OUTPUT_PATH.open("w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {OUTPUT_PATH}")
    for name, ratio in report["speedup"].items():
        print(f"{name:>14}: {ratio:.2f}x vs baseline")
    ok = _check_fingerprint(
        report["baseline"]["behavior_fingerprint"], fingerprint, "full"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
