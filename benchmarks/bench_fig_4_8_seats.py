"""Figure 4.8 — SEATS throughput: monolithic 2PL vs 2-layer vs 3-layer.

Paper: the 2-layer (SSI + 2PL) tree peaks ~2.6x above monolithic 2PL; adding
per-flight TSO instances (3-layer) yields a further ~2x.
"""

from common import (
    RESULT_HEADERS,
    SEATS_CLIENTS,
    deferred_measure,
    measure_keyed,
    print_rows,
    result_row,
    seats_workload,
)
from repro.harness import configs

SETTINGS = [
    ("monolithic 2PL", configs.seats_monolithic_2pl),
    ("2-layer (SSI + 2PL)", configs.seats_2layer),
    ("3-layer (SSI + 2PL + per-flight TSO)", configs.seats_3layer),
]


def run_figure():
    results = measure_keyed(
        (label, deferred_measure(seats_workload, factory, SEATS_CLIENTS))
        for label, factory in SETTINGS
    )
    rows = [result_row(label, result) for label, result in results.items()]
    print_rows("Figure 4.8: SEATS throughput by configuration", rows, RESULT_HEADERS)
    return results


def test_fig_4_8(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    assert results["2-layer (SSI + 2PL)"].throughput > results["monolithic 2PL"].throughput
    assert (
        results["3-layer (SSI + 2PL + per-flight TSO)"].throughput
        > results["monolithic 2PL"].throughput
    )
