"""Table 4.2 — overhead of the durability protocol on TPC-C.

Paper: with asynchronous (GCP-epoch) flushing, durability costs about 5% of
throughput (23,415 -> 22,390 txn/s) under the three-layer configuration.
"""

from common import RESULT_HEADERS, TPCC_CLIENTS, measure, print_rows, result_row, tpcc_workload
from repro.core.engine import EngineOptions
from repro.harness import configs
from repro.storage.durability import DurabilityConfig


def run_table():
    results = {}
    rows = []
    for label, enabled in (("durability OFF", False), ("durability ON (async GCP)", True)):
        options = EngineOptions(
            durability=DurabilityConfig(enabled=enabled, asynchronous=True)
        )
        result = measure(
            tpcc_workload(),
            configs.tpcc_tebaldi_3layer(),
            clients=TPCC_CLIENTS,
            options=options,
        )
        results[label] = result
        rows.append(result_row(label, result))
    print_rows("Table 4.2: durability protocol overhead", rows, RESULT_HEADERS)
    return results


def test_table_4_2(benchmark):
    results = benchmark.pedantic(run_table, rounds=1, iterations=1)
    on = results["durability ON (async GCP)"].throughput
    off = results["durability OFF"].throughput
    # Asynchronous flushing keeps the overhead small (paper: ~5%).
    assert on > 0.75 * off
