"""Table 5.2 — MCC against single-machine monolithic databases.

Paper: compared against MySQL-style single-machine engines, a well-configured
MCC federation sustains substantially higher TPC-C throughput under
contention.  The substitute comparators here are monolithic 2PL and SSI
engines built from the same substrate, run on a single "server".
"""

from common import RESULT_HEADERS, TPCC_CLIENTS, measure, print_rows, result_row, tpcc_workload
from repro.harness import configs


def run_table():
    results = {}
    rows = []
    for label, factory in (
        ("single-machine 2PL (MySQL-like)", configs.tpcc_monolithic_2pl),
        ("single-machine SSI (Postgres-like)", configs.tpcc_monolithic_ssi),
        ("Tebaldi 3-layer MCC", configs.tpcc_tebaldi_3layer),
    ):
        result = measure(tpcc_workload(), factory(), clients=TPCC_CLIENTS)
        results[label] = result
        rows.append(result_row(label, result))
    print_rows("Table 5.2: MCC vs single-machine monolithic engines", rows, RESULT_HEADERS)
    return results


def test_table_5_2(benchmark):
    results = benchmark.pedantic(run_table, rounds=1, iterations=1)
    assert (
        results["Tebaldi 3-layer MCC"].throughput
        > results["single-machine 2PL (MySQL-like)"].throughput * 0.8
    )
