"""Table 5.1 — benefit of partition-by-instance for the SEATS TSO group.

Paper: running one TSO instance per flight removes the spurious commit-order
dependencies of a single TSO group and significantly raises throughput.
"""

from common import RESULT_HEADERS, SEATS_CLIENTS, measure, print_rows, result_row, seats_workload
from repro.harness import configs


def run_table():
    results = {}
    rows = []
    for label, per_flight in (
        ("single TSO group", False),
        ("per-flight TSO instances", True),
    ):
        result = measure(
            seats_workload(), configs.seats_3layer(per_flight=per_flight), clients=SEATS_CLIENTS
        )
        results[label] = result
        rows.append(result_row(label, result))
    print_rows("Table 5.1: partition-by-instance on SEATS", rows, RESULT_HEADERS)
    return results


def test_table_5_1(benchmark):
    results = benchmark.pedantic(run_table, rounds=1, iterations=1)
    assert (
        results["per-flight TSO instances"].throughput
        >= results["single TSO group"].throughput * 0.9
    )
