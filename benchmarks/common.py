"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at laptop scale:
the client counts, run durations and data sizes are much smaller than the
paper's CloudLab runs, so absolute txn/sec numbers differ; the *shape* (who
wins, roughly by how much) is what EXPERIMENTS.md tracks.
"""

import os
from functools import partial

from repro.harness.parallel import available_workers, run_tasks
from repro.harness.report import format_table
from repro.harness.runner import run_benchmark
from repro.workloads.seats import SEATSWorkload
from repro.workloads.tpcc import TPCCWorkload

# Laptop-scale defaults shared by all benchmarks.
TPCC_WAREHOUSES = 2
TPCC_CLIENTS = 60
SEATS_CLIENTS = 60
DURATION = 0.8
WARMUP = 0.3


def bench_workers():
    """Worker processes for benchmark sweeps (REPRO_BENCH_WORKERS overrides)."""
    override = os.environ.get("REPRO_BENCH_WORKERS")
    if override:
        return max(1, int(override))
    return available_workers()


def measure_keyed(keyed_tasks, workers=None):
    """Run ``(key, zero-arg task)`` pairs in parallel; return ``{key: result}``.

    Every figure sweep is a family of independent fresh-database points, so
    they fan out across worker processes; results come back keyed and in
    input order regardless of completion order.
    """
    keyed_tasks = list(keyed_tasks)
    results = run_tasks(
        [task for _key, task in keyed_tasks],
        workers=bench_workers() if workers is None else workers,
    )
    return {key: result for (key, _task), result in zip(keyed_tasks, results)}


def deferred_measure(workload_factory, configuration_factory, clients, **kwargs):
    """A zero-argument measurement task (workload/config built in the worker)."""
    return partial(_measure_point, workload_factory, configuration_factory, clients, kwargs)


def _measure_point(workload_factory, configuration_factory, clients, kwargs):
    return measure(workload_factory(), configuration_factory(), clients, **kwargs)


def tpcc_workload(**kwargs):
    kwargs.setdefault("warehouses", TPCC_WAREHOUSES)
    return TPCCWorkload(**kwargs)


def seats_workload(**kwargs):
    kwargs.setdefault("flights", 10)
    return SEATSWorkload(**kwargs)


def measure(workload, configuration, clients, duration=DURATION, warmup=WARMUP, **kwargs):
    """One closed-loop measurement; returns the RunResult."""
    return run_benchmark(
        workload, configuration, clients=clients, duration=duration, warmup=warmup, **kwargs
    )


def print_rows(title, rows, headers):
    print()
    print(f"=== {title} ===")
    print(format_table(rows, headers))


def result_row(label, result):
    return {
        "configuration": label,
        "throughput (txn/s)": f"{result.throughput:.0f}",
        "abort rate": f"{result.abort_rate:.1%}",
        "mean latency (ms)": f"{result.mean_latency * 1000:.2f}",
    }


RESULT_HEADERS = ["configuration", "throughput (txn/s)", "abort rate", "mean latency (ms)"]
