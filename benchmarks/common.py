"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at laptop scale:
the client counts, run durations and data sizes are much smaller than the
paper's CloudLab runs, so absolute txn/sec numbers differ; the *shape* (who
wins, roughly by how much) is what EXPERIMENTS.md tracks.
"""

from repro.harness.report import format_table
from repro.harness.runner import run_benchmark
from repro.workloads.seats import SEATSWorkload
from repro.workloads.tpcc import TPCCWorkload

# Laptop-scale defaults shared by all benchmarks.
TPCC_WAREHOUSES = 2
TPCC_CLIENTS = 60
SEATS_CLIENTS = 60
DURATION = 0.8
WARMUP = 0.3


def tpcc_workload(**kwargs):
    kwargs.setdefault("warehouses", TPCC_WAREHOUSES)
    return TPCCWorkload(**kwargs)


def seats_workload(**kwargs):
    kwargs.setdefault("flights", 10)
    return SEATSWorkload(**kwargs)


def measure(workload, configuration, clients, duration=DURATION, warmup=WARMUP, **kwargs):
    """One closed-loop measurement; returns the RunResult."""
    return run_benchmark(
        workload, configuration, clients=clients, duration=duration, warmup=warmup, **kwargs
    )


def print_rows(title, rows, headers):
    print()
    print(f"=== {title} ===")
    print(format_table(rows, headers))


def result_row(label, result):
    return {
        "configuration": label,
        "throughput (txn/s)": f"{result.throughput:.0f}",
        "abort rate": f"{result.abort_rate:.1%}",
        "mean latency (ms)": f"{result.mean_latency * 1000:.2f}",
    }


RESULT_HEADERS = ["configuration", "throughput (txn/s)", "abort rate", "mean latency (ms)"]
