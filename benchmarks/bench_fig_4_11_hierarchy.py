"""Figure 4.11 — two-layer vs three-layer hierarchies on the microbenchmark.

Paper: the three-layer tree (SSI over {read-only, 2PL over {RP(T2), 2PL(T3)}})
peaks 63% above the best two-layer grouping, because no single cross-group CC
handles both the T1/T2 read-write conflict and the T2/T3 interaction well.
"""

from functools import partial

from common import RESULT_HEADERS, deferred_measure, measure_keyed, print_rows, result_row
from repro.core.config import Configuration, leaf, node
from repro.workloads.micro import HierarchyMicroWorkload

CLIENTS = 100


def configurations():
    return {
        "three-layer": Configuration(
            node(
                "ssi",
                leaf("none", "t1_read"),
                node("2pl", leaf("rp", "t2_update"), leaf("2pl", "t3_update")),
            ),
            name="three-layer",
        ),
        "two-layer 1 (SSI, T2/T3 separate)": Configuration(
            node("ssi", leaf("none", "t1_read"), leaf("rp", "t2_update"), leaf("2pl", "t3_update")),
            name="two-layer-1",
        ),
        "two-layer 2 (SSI, T2/T3 together)": Configuration(
            node("ssi", leaf("none", "t1_read"), leaf("rp", "t2_update", "t3_update")),
            name="two-layer-2",
        ),
        "two-layer 3 (2PL, T1/T2 together)": Configuration(
            node("2pl", leaf("rp", "t1_read", "t2_update"), leaf("2pl", "t3_update")),
            name="two-layer-3",
        ),
        "two-layer 4 (2PL, all separate)": Configuration(
            node("2pl", leaf("none", "t1_read"), leaf("rp", "t2_update"), leaf("2pl", "t3_update")),
            name="two-layer-4",
        ),
    }


def run_figure():
    workload_factory = partial(HierarchyMicroWorkload, hot_rows=10, cold_rows=2000)
    results = measure_keyed(
        (
            label,
            deferred_measure(
                workload_factory, lambda config=config: config, CLIENTS,
                duration=0.6, warmup=0.2,
            ),
        )
        for label, config in configurations().items()
    )
    rows = [result_row(label, result) for label, result in results.items()]
    print_rows("Figure 4.11: two-layer vs three-layer", rows, RESULT_HEADERS)
    return results


def test_fig_4_11(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    three_layer = results["three-layer"].throughput
    two_layer_best = max(
        result.throughput for label, result in results.items() if label != "three-layer"
    )
    # Shape: the three-layer hierarchy is competitive with (paper: better
    # than) every two-layer grouping.
    assert three_layer > 0.7 * two_layer_best
